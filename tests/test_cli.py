"""Tests for the seance command-line interface."""

import pytest

from repro.cli import main


class TestSynth:
    def test_synth_benchmark(self, capsys):
        assert main(["synth", "lion"]) == 0
        out = capsys.readouterr().out
        assert "SEANCE synthesis of 'lion'" in out
        assert "fsv=" in out

    def test_synth_kiss_file(self, tmp_path, capsys):
        from repro.bench import kiss_source

        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        assert main(["synth", str(path)]) == 0
        assert "machine" in capsys.readouterr().out

    def test_synth_with_flags(self, capsys):
        assert main(["synth", "lion", "--hazards", "--encoding"]) == 0
        out = capsys.readouterr().out
        assert "hazard point" in out
        assert "states on" in out

    def test_synth_no_fsv(self, capsys):
        assert main(["synth", "hazard_demo", "--no-fsv"]) == 0
        out = capsys.readouterr().out
        assert "fsv = 0" in out

    def test_unknown_spec(self, capsys):
        assert main(["synth", "no_such_benchmark"]) == 2
        assert "error" in capsys.readouterr().err


class TestTable1:
    def test_table1_lists_all_benchmarks(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("test_example", "traffic", "lion", "lion9", "train11"):
            assert name in out


class TestValidate:
    def test_validate_clean_machine(self, capsys):
        assert main(["validate", "hazard_demo", "--steps", "8",
                     "--seeds", "1"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_validate_ablated_machine_fails(self, capsys):
        code = main([
            "validate", "hazard_demo", "--no-fsv", "--skewed",
            "--steps", "20", "--seeds", "2",
        ])
        out = capsys.readouterr().out
        # the unprotected machine must either fail outright or
        # demonstrate errors; both exit non-zero.
        assert code == 1
        assert "FAILED" in out


class TestBatch:
    def test_batch_default_runs_whole_suite(self, capsys):
        from repro.bench import benchmark_names

        assert main(["batch"]) == 0
        out = capsys.readouterr().out
        for name in benchmark_names():
            assert name in out
        assert "0 failed" in out

    def test_batch_named_subset_in_order(self, capsys):
        assert main(["batch", "traffic", "lion"]) == 0
        out = capsys.readouterr().out
        assert out.index("traffic") < out.index("lion")

    def test_batch_parallel_jobs(self, capsys):
        assert main(["batch", "lion", "traffic", "-j", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_batch_json_reports(self, capsys):
        import json

        assert main(["batch", "lion", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "lion"
        assert payload[0]["ok"] is True
        assert payload[0]["result"]["depths"]["total"] == 9

    def test_batch_cache_dir_warms_across_invocations(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "stages")
        assert main(["batch", "lion", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "lion", "--cache-dir", cache]) == 0
        assert "7/7" in capsys.readouterr().out

    def test_batch_kiss_file_and_options(self, tmp_path, capsys):
        from repro.bench import kiss_source

        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        assert main(["batch", str(path), "--no-fsv"]) == 0
        assert "machine" in capsys.readouterr().out

    def test_batch_unknown_spec_is_a_cli_error(self, capsys):
        assert main(["batch", "no_such_benchmark"]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_zero_jobs_is_a_cli_error(self, capsys):
        assert main(["batch", "lion", "-j", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_batch_cache_dir_on_a_file_is_a_cli_error(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "not_a_dir"
        blocker.write_text("")
        assert main(["batch", "lion", "--cache-dir", str(blocker)]) == 2
        assert "cache-dir" in capsys.readouterr().err


class TestListing:
    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "lion" in out
        assert "Table 1" in out

    def test_show(self, capsys):
        assert main(["show", "lion"]) == 0
        assert ".i 2" in capsys.readouterr().out

    def test_show_unknown(self, capsys):
        assert main(["show", "zzz"]) == 2


class TestExport:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "lion"]) == 0
        out = capsys.readouterr().out
        assert "module fantom_lion (" in out
        assert "endmodule" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "lion.v"
        assert main(["export", "lion", "-o", str(target)]) == 0
        assert "FANTOM_DFF" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_export_no_fsv(self, capsys):
        assert main(["export", "hazard_demo", "--no-fsv"]) == 0
        out = capsys.readouterr().out
        assert "assign fsv = 1'b0;" in out
