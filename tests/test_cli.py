"""Tests for the seance command-line interface."""

import pytest

from repro.cli import main


class TestSynth:
    def test_synth_benchmark(self, capsys):
        assert main(["synth", "lion"]) == 0
        out = capsys.readouterr().out
        assert "SEANCE synthesis of 'lion'" in out
        assert "fsv=" in out

    def test_synth_kiss_file(self, tmp_path, capsys):
        from repro.bench import kiss_source

        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        assert main(["synth", str(path)]) == 0
        assert "machine" in capsys.readouterr().out

    def test_synth_with_flags(self, capsys):
        assert main(["synth", "lion", "--hazards", "--encoding"]) == 0
        out = capsys.readouterr().out
        assert "hazard point" in out
        assert "states on" in out

    def test_synth_no_fsv(self, capsys):
        assert main(["synth", "hazard_demo", "--no-fsv"]) == 0
        out = capsys.readouterr().out
        assert "fsv = 0" in out

    def test_unknown_spec(self, capsys):
        assert main(["synth", "no_such_benchmark"]) == 2
        assert "error" in capsys.readouterr().err


class TestTable1:
    def test_table1_lists_all_benchmarks(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for name in ("test_example", "traffic", "lion", "lion9", "train11"):
            assert name in out


class TestValidate:
    def test_validate_clean_machine(self, capsys):
        assert main(["validate", "hazard_demo", "--steps", "8",
                     "--seeds", "1"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_validate_ablated_machine_fails(self, capsys):
        code = main([
            "validate", "hazard_demo", "--no-fsv", "--skewed",
            "--steps", "20", "--seeds", "2",
        ])
        out = capsys.readouterr().out
        # the unprotected machine must either fail outright or
        # demonstrate errors; both exit non-zero.
        assert code == 1
        assert "FAILED" in out


class TestBatch:
    def test_batch_default_runs_whole_suite(self, capsys):
        from repro.bench import benchmark_names

        assert main(["batch"]) == 0
        out = capsys.readouterr().out
        for name in benchmark_names():
            assert name in out
        assert "0 failed" in out

    def test_batch_named_subset_in_order(self, capsys):
        assert main(["batch", "traffic", "lion"]) == 0
        out = capsys.readouterr().out
        assert out.index("traffic") < out.index("lion")

    def test_batch_parallel_jobs(self, capsys):
        assert main(["batch", "lion", "traffic", "-j", "2"]) == 0
        assert "2 worker(s)" in capsys.readouterr().out

    def test_batch_json_reports(self, capsys):
        import json

        assert main(["batch", "lion", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["name"] == "lion"
        assert payload[0]["ok"] is True
        assert payload[0]["result"]["depths"]["total"] == 9

    def test_batch_cache_dir_warms_across_invocations(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "stages")
        assert main(["batch", "lion", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "lion", "--cache-dir", cache]) == 0
        assert "7/7" in capsys.readouterr().out

    def test_batch_kiss_file_and_options(self, tmp_path, capsys):
        from repro.bench import kiss_source

        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        assert main(["batch", str(path), "--no-fsv"]) == 0
        assert "machine" in capsys.readouterr().out

    def test_batch_unknown_spec_is_a_cli_error(self, capsys):
        assert main(["batch", "no_such_benchmark"]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_zero_jobs_is_a_cli_error(self, capsys):
        assert main(["batch", "lion", "-j", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_batch_cache_dir_on_a_file_is_a_cli_error(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "not_a_dir"
        blocker.write_text("")
        assert main(["batch", "lion", "--cache-dir", str(blocker)]) == 2
        assert "cache-dir" in capsys.readouterr().err


class TestSpecWorkflow:
    """`--spec` / `--pass` / `--emit-spec`: declarative pipeline runs."""

    def test_emit_spec_prints_default_spec(self, capsys):
        import json

        assert main(["synth", "lion", "--emit-spec"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passes"][-1] == "factor"
        assert payload["options"]["minimize"] is True

    def test_emit_spec_reflects_flags_and_substitutions(self, capsys):
        import json

        assert main([
            "synth", "lion", "--emit-spec", "--no-minimize",
            "--pass", "factor:joint",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["options"]["minimize"] is False
        assert payload["passes"][-1] == "factor:joint"

    def test_spec_file_reproduces_an_ablation_run(self, tmp_path, capsys):
        """The acceptance criterion: an ablation run is reproducible
        from a PipelineSpec JSON file alone."""
        import json

        assert main([
            "synth", "hazard_demo", "--emit-spec",
            "--pass", "fsv:unprotected",
        ]) == 0
        spec_path = tmp_path / "unprotected.json"
        spec_path.write_text(capsys.readouterr().out)

        assert main([
            "synth", "hazard_demo", "--spec", str(spec_path), "--json",
        ]) == 0
        from_spec = json.loads(capsys.readouterr().out)
        assert main([
            "synth", "hazard_demo", "--pass", "fsv:unprotected", "--json",
        ]) == 0
        from_flags = json.loads(capsys.readouterr().out)
        from_spec.pop("stage_seconds")
        from_flags.pop("stage_seconds")
        assert from_spec == from_flags
        # the unprotected machine really has no fsv
        assert from_spec["equations"]["fsv"] == "0"

    def test_unknown_pass_substitution_is_a_cli_error(self, capsys):
        assert main(["synth", "lion", "--pass", "factor:typo"]) == 2
        assert "registered passes" in capsys.readouterr().err

    def test_unreadable_spec_is_a_cli_error(self, capsys):
        assert main(["synth", "lion", "--spec", "/no/such/file.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_passes_subcommand_lists_registry(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "factor:joint" in out
        assert "fsv:unprotected" in out

    def test_batch_json_emits_per_pass_telemetry(self, capsys):
        import json

        assert main(["batch", "lion", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        events = payload[0]["passes"]
        assert [e["name"] for e in events] == [
            "validate", "reduce", "assign", "outputs", "hazards", "fsv",
            "factor",
        ]
        for event in events:
            assert event["seconds"] >= 0.0
            assert event["cached"] is False

    def test_batch_json_telemetry_marks_cache_hits(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "stages")
        assert main(["batch", "lion", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "lion", "--cache-dir", cache, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(e["cached"] for e in payload[0]["passes"])

    def test_batch_with_substitution(self, capsys):
        assert main(["batch", "lion", "--pass", "factor:joint"]) == 0
        assert "lion" in capsys.readouterr().out

    def test_synth_json_round_trips(self, capsys):
        import json

        from repro.core.result import SynthesisResult

        assert main(["synth", "lion", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rebuilt = SynthesisResult.from_dict(payload)
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
            payload, sort_keys=True
        )


class TestListing:
    def test_bench_list(self, capsys):
        assert main(["bench-list"]) == 0
        out = capsys.readouterr().out
        assert "lion" in out
        assert "Table 1" in out

    def test_show(self, capsys):
        assert main(["show", "lion"]) == 0
        assert ".i 2" in capsys.readouterr().out

    def test_show_unknown(self, capsys):
        assert main(["show", "zzz"]) == 2


class TestExport:
    def test_export_to_stdout(self, capsys):
        assert main(["export", "lion"]) == 0
        out = capsys.readouterr().out
        assert "module fantom_lion (" in out
        assert "endmodule" in out

    def test_export_to_file(self, tmp_path, capsys):
        target = tmp_path / "lion.v"
        assert main(["export", "lion", "-o", str(target)]) == 0
        assert "FANTOM_DFF" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_export_no_fsv(self, capsys):
        assert main(["export", "hazard_demo", "--no-fsv"]) == 0
        out = capsys.readouterr().out
        assert "assign fsv = 1'b0;" in out


class TestStoreFlags:
    def test_batch_store_hit_in_json_telemetry(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "rs")
        assert main(["batch", "lion", "--store", store, "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert [item["store_hit"] for item in cold] == [False]
        assert cold[0]["passes"]
        assert main(["batch", "lion", "--store", store, "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert [item["store_hit"] for item in warm] == [True]
        # zero synthesis passes on the warm run (PassEvent telemetry)
        assert warm[0]["passes"] == []

    def test_batch_canonical_is_run_independent(self, tmp_path, capsys):
        assert main(["batch", "lion", "traffic", "--canonical"]) == 0
        first = capsys.readouterr().out
        assert main(["batch", "lion", "traffic", "--canonical"]) == 0
        assert capsys.readouterr().out == first
        assert "seconds" not in first

    def test_synth_store_short_circuit_note(self, tmp_path, capsys):
        store = str(tmp_path / "rs")
        assert main(["synth", "lion", "--store", store]) == 0
        assert "result store" not in capsys.readouterr().out
        assert main(["synth", "lion", "--store", store]) == 0
        assert "served whole from the result store" in (
            capsys.readouterr().out
        )

    def test_validate_store_and_json(self, tmp_path, capsys):
        import json

        store = str(tmp_path / "rs")
        args = [
            "validate", "hazard_demo", "--sweep", "1", "--steps", "5",
            "--delay-model", "unit", "--store", store, "--json",
        ]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["all_clean"] and cold["store_hits"] == 0
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store_hits"] == len(warm["cells"]) == 1
        assert warm["cells"] == cold["cells"]


class TestShard:
    def test_plan_partitions_the_suite(self, capsys):
        assert main(["shard", "plan", "lion", "traffic", "-n", "2",
                     "-v"]) == 0
        out = capsys.readouterr().out
        assert "2 work units over 2 shard(s)" in out
        assert "lion" in out and "traffic" in out

    def test_run_and_merge_match_single_process_batch(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "rs")
        names = ["lion", "traffic", "hazard_demo"]
        for shard in ("0/2", "1/2"):
            assert main(
                ["shard", "run", "--shard", shard, "--store", store]
                + names
            ) == 0
            capsys.readouterr()
        assert main(
            ["shard", "merge", "--store", store, "-n", "2", "--json"]
            + names
        ) == 0
        merged = capsys.readouterr().out
        assert main(["batch", "--json", "--canonical"] + names) == 0
        assert merged == capsys.readouterr().out

    def test_merge_with_missing_units_fails_loudly(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "rs")
        assert main(
            ["shard", "run", "--shard", "0/2", "--store", store, "lion",
             "traffic"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["shard", "merge", "--store", store, "-n", "2", "lion",
             "traffic"]
        ) == 2
        err = capsys.readouterr().err
        assert "missing" in err and "shard 1/2" in err

    def test_campaign_mode_run_merge(self, tmp_path, capsys):
        store = str(tmp_path / "rs")
        args = ["--campaign", "--store", store, "hazard_demo",
                "--sweep", "1", "--steps", "5", "--delay-model", "unit"]
        assert main(["shard", "run", "--shard", "0/1"] + args) == 0
        capsys.readouterr()
        assert main(["shard", "merge", "-n", "1"] + args) == 0
        out = capsys.readouterr().out
        assert "validation campaign" in out

    def test_bad_shard_spec_rejected(self, tmp_path, capsys):
        store = str(tmp_path / "rs")
        assert main(["shard", "run", "--shard", "2/2", "--store", store,
                     "lion"]) == 2
        assert "out of range" in capsys.readouterr().err
        assert main(["shard", "run", "--shard", "nope", "--store", store,
                     "lion"]) == 2

    def test_shard_run_exits_nonzero_on_failed_units(
        self, tmp_path, capsys
    ):
        import json

        from repro.flowtable.table import FlowTable

        bad = tmp_path / "bad.json"
        # A structurally valid flow-table JSON that fails pipeline
        # validation (state b unreachable: not strongly connected).
        bad.write_text(json.dumps({
            "inputs": ["x"], "outputs": ["z"], "states": ["a", "b"],
            "reset": "a", "name": "broken",
            "entries": [["a", 0, "a", [0]], ["b", 1, "b", [1]]],
        }))
        store = str(tmp_path / "rs")
        code = main(["shard", "run", "--shard", "0/1", "--store", store,
                     "lion", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out
