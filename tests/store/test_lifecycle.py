"""Store lifecycle sweeps: ``seance store verify`` and ``seance store gc``.

verify re-checks every envelope offline exactly the way an online read
would; gc evicts debris — aged-out results, orphaned artifacts,
drained-queue scaffolding, verified-rejected blobs — and never touches
a sound, current envelope.
"""

import json

import pytest

from repro.bench import benchmark
from repro.pipeline.spec import PipelineSpec
from repro.service import WorkQueue
from repro.store import (
    ResultStore,
    gc_store,
    synthesis_key,
    verify_store,
)
from repro.store.backend import MemoryBackend
from tests.strategies import cached_synthesize


@pytest.fixture
def store():
    return ResultStore(MemoryBackend())


def seed_results(store, names=("lion", "traffic")):
    spec = PipelineSpec()
    keys = {}
    for name in names:
        table = benchmark(name)
        store.put_synthesis(table, spec, cached_synthesize(table))
        keys[name] = synthesis_key(table, spec)
    return keys


class TestVerify:
    def test_clean_store_verifies_clean(self, store):
        seed_results(store)
        report = verify_store(store)
        assert report.clean
        assert report.checked == report.ok == 2

    def test_truncated_blob_is_rejected(self, store):
        keys = seed_results(store)
        name = keys["lion"].blob_name
        blob = store.backend.read(name)
        store.backend.write(name, blob[: len(blob) // 2])
        report = verify_store(store)
        assert not report.clean
        assert [entry[0] for entry in report.rejected] == [name]
        assert "JSON" in report.rejected[0][1]

    def test_cross_filed_blob_is_rejected(self, store):
        """A sound envelope under the wrong name fails the recorded-key
        check — same guarantee the online read makes."""
        keys = seed_results(store)
        blob = store.backend.read(keys["lion"].blob_name)
        wrong = keys["traffic"].blob_name
        store.backend.write(wrong, blob)
        report = verify_store(store)
        names = {entry[0] for entry in report.rejected}
        assert wrong in names

    def test_wrong_format_version_is_rejected(self, store):
        keys = seed_results(store, names=("lion",))
        name = keys["lion"].blob_name
        envelope = json.loads(store.backend.read(name))
        envelope["format"] = 999
        store.backend.write(name, json.dumps(envelope).encode())
        report = verify_store(store)
        assert not report.clean
        assert "format version" in report.rejected[0][1]

    def test_artifacts_are_skipped_not_rejected(self, store):
        keys = seed_results(store, names=("lion",))
        store.put_artifact(keys["lion"], "vcd", b"$var wire 1 a a $end")
        report = verify_store(store)
        assert report.clean and report.artifacts == 1


class TestGc:
    def test_gc_of_a_sound_store_deletes_nothing(self, store):
        seed_results(store)
        report = gc_store(store)
        assert report.deleted == 0

    def test_age_out_respects_max_age(self, store):
        keys = seed_results(store)
        mtime = store.backend.stat(keys["lion"].blob_name).mtime
        report = gc_store(
            store, max_age_seconds=3600, now=mtime + 7200
        )
        assert report.aged_out == 2
        assert store.backend.read(keys["lion"].blob_name) is None

    def test_young_results_survive_age_out(self, store):
        keys = seed_results(store)
        mtime = store.backend.stat(keys["lion"].blob_name).mtime
        report = gc_store(store, max_age_seconds=3600, now=mtime + 60)
        assert report.aged_out == 0

    def test_orphaned_artifact_is_collected(self, store):
        keys = seed_results(store, names=("lion",))
        key = keys["lion"]
        store.put_artifact(key, "vcd", b"trace")
        # Artifact next to a live envelope survives...
        assert gc_store(store).orphans == 0
        # ...but becomes an orphan once the envelope is gone.
        store.backend.delete(key.blob_name)
        report = gc_store(store)
        assert report.orphans == 1
        assert store.get_artifact(key, "vcd") is None

    def test_drop_rejected_deletes_what_verify_flags(self, store):
        keys = seed_results(store)
        name = keys["lion"].blob_name
        store.backend.write(name, b"corrupt")
        kept = gc_store(store)  # without the flag: report only
        assert kept.rejected_dropped == 0
        assert store.backend.read(name) is not None
        report = gc_store(store, drop_rejected=True)
        assert report.rejected_dropped == 1
        assert store.backend.read(name) is None
        # The sound sibling is untouched.
        assert store.backend.read(keys["traffic"].blob_name) is not None

    def test_drained_queue_scaffolding_is_removed(self, store):
        queue = WorkQueue(store, "old")
        queue.publish_batch([benchmark("lion")], spec=PipelineSpec())
        [(digest, _)] = queue.pending()
        queue.mark_done(digest, "w1")
        report = gc_store(store)
        assert report.queue_blobs == 2  # unit + done marker
        assert list(store.backend.names("queue/")) == []

    def test_undrained_queue_is_left_alone(self, store):
        queue = WorkQueue(store, "live")
        queue.publish_batch(
            [benchmark("lion"), benchmark("traffic")], spec=PipelineSpec()
        )
        (digest, _), *_ = queue.pending()
        queue.mark_done(digest, "w1")
        report = gc_store(store)
        assert report.queue_blobs == 0
        assert len(list(store.backend.names("queue/"))) == 3

    def test_ttl_backend_purge_hook_is_invoked(self, store):
        class PurgingBackend(MemoryBackend):
            def purge(self):
                return 7

        report = gc_store(ResultStore(PurgingBackend()))
        assert report.ttl_purged == 7
