"""ResultStore: verified envelopes, golden round-trips, fail-safety.

The fail-safe contract under test: **no state of the store may ever
change a result** — a truncated blob, a blob whose content belongs to a
different key, an incompatible format version, or two writers racing on
one key can cost a recomputation but must never return a poisoned
result.
"""

import json
import threading

import pytest

from repro import api
from repro.bench import benchmark, benchmark_names
from repro.pipeline.spec import PipelineSpec
from repro.store import (
    STORE_FORMAT_VERSION,
    ResultStore,
    synthesis_key,
    validation_key,
)
from tests.strategies import cached_synthesize


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def blob_path(store, key):
    return store.backend.path / key.blob_name


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestGoldenRoundTrip:
    """Satellite pin: a store round-trip of every golden-suite result
    is byte-identical to ``to_dict()`` — including ``stage_seconds``,
    because the store archives the *full* wire form."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_roundtrip_byte_identical_to_to_dict(self, name, store):
        table = benchmark(name)
        result = cached_synthesize(table)
        spec = PipelineSpec()
        store.put_synthesis(table, spec, result)
        stored = store.get_synthesis(table, spec)
        assert stored is not None and stored.ok
        assert json.dumps(
            stored.result.to_dict(), sort_keys=True
        ) == json.dumps(result.to_dict(), sort_keys=True)

    def test_synthesis_error_roundtrip(self, store):
        table = benchmark("lion")
        spec = PipelineSpec()
        store.put_synthesis_error(table, spec, "no USTT assignment")
        stored = store.get_synthesis(table, spec)
        assert stored is not None and not stored.ok
        assert stored.error == "no USTT assignment"

    def test_validation_roundtrip(self, store):
        report = api.load("hazard_demo").validate(
            sweep=1, steps=5, delay_models=("unit",)
        )
        summary = report.cells[0].summary
        key = validation_key(
            benchmark("hazard_demo"),
            PipelineSpec(),
            model="unit",
            seed=0,
            steps=5,
            engine="compiled",
            use_fsv=True,
        )
        store.put_validation(key, summary)
        replayed = store.get_validation(key)
        assert replayed is not None
        assert replayed.cycles == summary.cycles


# ----------------------------------------------------------------------
# Key discrimination
# ----------------------------------------------------------------------
class TestKeys:
    def test_different_tables_different_keys(self):
        spec = PipelineSpec()
        keys = {
            synthesis_key(benchmark(name), spec).digest
            for name in benchmark_names()
        }
        assert len(keys) == len(benchmark_names())

    def test_spec_options_and_passes_change_the_key(self):
        table = benchmark("lion")
        base = synthesis_key(table, PipelineSpec())
        ablated = synthesis_key(
            table, PipelineSpec().with_options(hazard_correction=False)
        )
        substituted = synthesis_key(
            table, PipelineSpec().substitute("factor:joint")
        )
        assert len({base.digest, ablated.digest, substituted.digest}) == 3

    def test_cache_config_does_not_change_the_key(self, tmp_path):
        table = benchmark("lion")
        assert (
            synthesis_key(table, PipelineSpec()).digest
            == synthesis_key(
                table, PipelineSpec().with_cache(tmp_path)
            ).digest
        )

    def test_validation_workload_parameters_discriminate(self):
        table = benchmark("lion")
        spec = PipelineSpec()

        def key(**overrides):
            params = dict(
                model="unit", seed=0, steps=10,
                engine="compiled", use_fsv=True,
            )
            params.update(overrides)
            return validation_key(table, spec, **params).digest

        digests = [
            key(),
            key(model="loop-safe"),
            key(seed=1),
            key(steps=11),
            key(engine="reference"),
            key(use_fsv=False),
        ]
        assert len(set(digests)) == len(digests)


# ----------------------------------------------------------------------
# Corruption and poisoning (satellite: fail safe, never poisoned)
# ----------------------------------------------------------------------
class TestFailSafety:
    def seeded(self, store):
        table = benchmark("lion")
        spec = PipelineSpec()
        result = cached_synthesize(table)
        store.put_synthesis(table, spec, result)
        return table, spec, result

    def test_truncated_blob_is_a_miss(self, store):
        table, spec, _ = self.seeded(store)
        path = blob_path(store, synthesis_key(table, spec))
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.get_synthesis(table, spec) is None
        assert store.rejected == 1

    def test_empty_blob_is_a_miss(self, store):
        table, spec, _ = self.seeded(store)
        blob_path(store, synthesis_key(table, spec)).write_bytes(b"")
        assert store.get_synthesis(table, spec) is None
        assert store.rejected == 1

    def test_wrong_fingerprint_blob_is_a_miss(self, store):
        """A blob whose *content* belongs to another key — a mis-filed
        upload, a colliding copy — must be rejected, not returned."""
        table, spec, _ = self.seeded(store)
        other = benchmark("traffic")
        store.put_synthesis(other, spec, cached_synthesize(other))
        lion_key = synthesis_key(table, spec)
        traffic_key = synthesis_key(other, spec)
        # File traffic's (valid, complete) blob under lion's digest.
        blob_path(store, lion_key).write_bytes(
            blob_path(store, traffic_key).read_bytes()
        )
        assert store.get_synthesis(table, spec) is None
        assert store.rejected == 1
        # The mis-filed copy did not damage the original.
        stored = store.get_synthesis(other, spec)
        assert stored is not None and stored.ok

    def test_wrong_format_version_is_a_miss(self, store):
        table, spec, _ = self.seeded(store)
        path = blob_path(store, synthesis_key(table, spec))
        envelope = json.loads(path.read_bytes())
        envelope["format"] = STORE_FORMAT_VERSION + 1
        path.write_bytes(json.dumps(envelope).encode())
        assert store.get_synthesis(table, spec) is None
        assert store.rejected == 1

    def test_valid_envelope_garbage_payload_is_a_miss(self, store):
        table, spec, _ = self.seeded(store)
        key = synthesis_key(table, spec)
        store.put(key, {"ok": True, "result": {"artifacts": "nonsense"}})
        assert store.get_synthesis(table, spec) is None
        assert store.rejected == 1

    def test_corrupt_store_recomputes_through_batch(self, store):
        """End to end: a poisoned store costs a recompute, silently."""
        from repro.pipeline.batch import BatchRunner

        table, spec, result = self.seeded(store)
        path = blob_path(store, synthesis_key(table, spec))
        path.write_bytes(b'{"not": "an envelope"}')
        items = BatchRunner(store=store).run([table])
        assert items[0].ok and not items[0].store_hit
        assert json.dumps(
            items[0].result.to_dict()["artifacts"], sort_keys=True
        ) == json.dumps(result.to_dict()["artifacts"], sort_keys=True)
        # ... and the recompute healed the blob.
        items = BatchRunner(store=store).run([table])
        assert items[0].store_hit


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_two_writers_racing_on_one_key(self, tmp_path):
        """N threads × M puts on the same key over one directory: every
        interleaving must leave a complete, verifiable blob."""
        table = benchmark("lion")
        spec = PipelineSpec()
        result = cached_synthesize(table)
        stores = [ResultStore(tmp_path / "race") for _ in range(4)]
        barrier = threading.Barrier(len(stores))
        errors = []

        def writer(store):
            try:
                barrier.wait()
                for _ in range(10):
                    store.put_synthesis(table, spec, result)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in stores
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        reader = ResultStore(tmp_path / "race")
        stored = reader.get_synthesis(table, spec)
        assert stored is not None and stored.ok
        assert reader.rejected == 0
        assert json.dumps(
            stored.result.to_dict(), sort_keys=True
        ) == json.dumps(result.to_dict(), sort_keys=True)

    def test_concurrent_readers_and_writers(self, tmp_path):
        table = benchmark("traffic")
        spec = PipelineSpec()
        result = cached_synthesize(table)
        writer_store = ResultStore(tmp_path / "rw")
        reader_store = ResultStore(tmp_path / "rw")
        stop = threading.Event()
        poisoned = []

        def reader():
            while not stop.is_set():
                stored = reader_store.get_synthesis(table, spec)
                # Misses are legal mid-race; a poisoned hit is not.
                if stored is not None and stored.ok:
                    if stored.result.table1_row() != result.table1_row():
                        poisoned.append(stored)

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(20):
            writer_store.put_synthesis(table, spec, result)
        stop.set()
        thread.join()
        assert not poisoned
