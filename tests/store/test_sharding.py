"""Differential suite: any shard split merges byte-identically.

The acceptance property (ISSUE 5): for any shard count N — including
the degenerate N=1 and N greater than the number of work units — running
every shard of a batch matrix or campaign cell grid into a store and
merging reproduces the single-process
:class:`~repro.pipeline.batch.BatchRunner` /
:class:`~repro.sim.campaign.ValidationCampaign` stream **byte for
byte** (canonical projection: the deterministic stream minus wall-clock
telemetry).  Hypothesis drives the shard count and workload choice; the
single-process baselines are computed once per workload and reused
across examples.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import benchmark
from repro.errors import StoreError
from repro.flowtable.table import Entry, FlowTable
from repro.pipeline.batch import BatchRunner
from repro.pipeline.options import SynthesisOptions
from repro.pipeline.spec import PipelineSpec
from repro.sim.campaign import ValidationCampaign
from repro.store import (
    ResultStore,
    ShardedBatch,
    ShardedCampaign,
    canonical_batch_payload,
    canonical_campaign_payload,
    canonical_json,
    shard_of,
)

#: Batch workloads: (name, table names, option sets or None).
BATCH_WORKLOADS = {
    "plain": (("lion", "traffic", "hazard_demo"), None),
    "matrix": (
        ("lion", "traffic"),
        (SynthesisOptions(), SynthesisOptions(hazard_correction=False)),
    ),
    "single": (("hazard_demo",), None),
}

#: Campaign workloads: (table names, models, sweep, steps).
CAMPAIGN_WORKLOADS = {
    "two-model": (("lion", "hazard_demo"), ("unit", "loop-safe"), 2, 5),
    "corner": (("traffic",), ("corner",), 3, 5),
}

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def broken_table():
    """Fails pipeline validation (not strongly connected)."""
    return FlowTable(
        inputs=["x"],
        outputs=["z"],
        states=["a", "b"],
        entries={
            ("a", 0): Entry("a", (0,)),
            ("b", 1): Entry("b", (1,)),
        },
        reset_state="a",
        name="broken",
    )


@pytest.fixture(scope="module")
def batch_baselines():
    """Single-process canonical streams, one per workload."""
    baselines = {}
    for key, (names, options_list) in BATCH_WORKLOADS.items():
        tables = [benchmark(name) for name in names]
        runner = BatchRunner()
        items = (
            runner.run_matrix(tables, options_list)
            if options_list is not None
            else runner.run(tables)
        )
        baselines[key] = canonical_json(canonical_batch_payload(items))
    return baselines


@pytest.fixture(scope="module")
def campaign_baselines():
    baselines = {}
    for key, (names, models, sweep, steps) in CAMPAIGN_WORKLOADS.items():
        campaign = ValidationCampaign(
            sweep=sweep, steps=steps, delay_models=models
        )
        report = campaign.run([benchmark(name) for name in names])
        baselines[key] = canonical_json(canonical_campaign_payload(report))
    return baselines


def _sharded_batch(workload):
    names, options_list = BATCH_WORKLOADS[workload]
    return ShardedBatch(
        [benchmark(name) for name in names], options_list=options_list
    )


def _sharded_campaign(workload):
    names, models, sweep, steps = CAMPAIGN_WORKLOADS[workload]
    campaign = ValidationCampaign(
        sweep=sweep, steps=steps, delay_models=models
    )
    return ShardedCampaign([benchmark(name) for name in names], campaign)


# ----------------------------------------------------------------------
# The differential property
# ----------------------------------------------------------------------
class TestBatchDifferential:
    @_SETTINGS
    @given(
        shards=st.integers(min_value=1, max_value=40),
        workload=st.sampled_from(sorted(BATCH_WORKLOADS)),
    )
    def test_any_split_merges_byte_identically(
        self, shards, workload, batch_baselines
    ):
        sharded = _sharded_batch(workload)
        store = ResultStore()
        for shard in range(shards):
            sharded.run_shard(shard, shards, store)
        merged = canonical_json(
            canonical_batch_payload(sharded.merge(store, shards))
        )
        assert merged == batch_baselines[workload]

    def test_degenerate_single_shard(self, batch_baselines):
        sharded = _sharded_batch("plain")
        store = ResultStore()
        sharded.run_shard(0, 1, store)
        merged = canonical_json(
            canonical_batch_payload(sharded.merge(store))
        )
        assert merged == batch_baselines["plain"]

    def test_more_shards_than_units(self, batch_baselines):
        sharded = _sharded_batch("single")  # 1 unit
        store = ResultStore()
        for shard in range(16):
            sharded.run_shard(shard, 16, store)
        merged = canonical_json(
            canonical_batch_payload(sharded.merge(store, 16))
        )
        assert merged == batch_baselines["single"]

    def test_failed_synthesis_merges_in_place(self):
        tables = [benchmark("lion"), broken_table(), benchmark("traffic")]
        single = canonical_json(
            canonical_batch_payload(BatchRunner().run(tables))
        )
        sharded = ShardedBatch(tables)
        store = ResultStore()
        for shard in range(3):
            sharded.run_shard(shard, 3, store)
        merged = canonical_json(
            canonical_batch_payload(sharded.merge(store, 3))
        )
        assert merged == single
        assert json.loads(merged)[1]["ok"] is False


class TestCampaignDifferential:
    @_SETTINGS
    @given(
        shards=st.integers(min_value=1, max_value=40),
        workload=st.sampled_from(sorted(CAMPAIGN_WORKLOADS)),
    )
    def test_any_split_merges_byte_identically(
        self, shards, workload, campaign_baselines
    ):
        sharded = _sharded_campaign(workload)
        store = ResultStore()
        for shard in range(shards):
            sharded.run_shard(shard, shards, store)
        merged = canonical_json(
            canonical_campaign_payload(sharded.merge(store, shards))
        )
        assert merged == campaign_baselines[workload]

    def test_more_shards_than_cells(self, campaign_baselines):
        sharded = _sharded_campaign("corner")  # 3 cells
        store = ResultStore()
        for shard in range(11):
            sharded.run_shard(shard, 11, store)
        merged = canonical_json(
            canonical_campaign_payload(sharded.merge(store, 11))
        )
        assert merged == campaign_baselines["corner"]

    def test_synthesis_failure_rebuilds_error_stream(self):
        tables = [benchmark("hazard_demo"), broken_table()]
        campaign = ValidationCampaign(
            sweep=1, steps=5, delay_models=("unit",)
        )
        single = canonical_json(
            canonical_campaign_payload(campaign.run(tables))
        )
        sharded = ShardedCampaign(
            tables,
            ValidationCampaign(sweep=1, steps=5, delay_models=("unit",)),
        )
        store = ResultStore()
        for shard in range(2):
            sharded.run_shard(shard, 2, store)
        merged = canonical_json(
            canonical_campaign_payload(sharded.merge(store, 2))
        )
        assert merged == single
        assert json.loads(merged)["errors"][0][0] == "broken"


# ----------------------------------------------------------------------
# Plan properties
# ----------------------------------------------------------------------
class TestPlan:
    @_SETTINGS
    @given(shards=st.integers(min_value=1, max_value=100))
    def test_shards_partition_the_units(self, shards):
        plan = _sharded_batch("plain").plan(shards)
        seen = []
        for shard in range(shards):
            seen.extend(unit.index for unit in plan.shard_units(shard))
        assert sorted(seen) == [unit.index for unit in plan.units]
        assert sum(plan.counts()) == len(plan.units)

    def test_assignment_is_input_order_independent(self):
        tables = [benchmark(n) for n in ("lion", "traffic", "hazard_demo")]
        forward = ShardedBatch(tables).plan(4)
        backward = ShardedBatch(list(reversed(tables))).plan(4)
        by_key = {
            unit.key.digest: shard_of(unit.key, 4)
            for unit in forward.units
        }
        for unit in backward.units:
            assert shard_of(unit.key, 4) == by_key[unit.key.digest]

    def test_campaign_plan_covers_the_grid(self):
        sharded = _sharded_campaign("two-model")
        plan = sharded.plan(3)
        # 2 tables x 2 models x 2 seeds
        assert len(plan.units) == 8
        assert len({unit.key.digest for unit in plan.units}) == 8

    def test_bad_shard_arguments_rejected(self):
        sharded = _sharded_batch("single")
        with pytest.raises(StoreError):
            sharded.plan(0)
        with pytest.raises(StoreError):
            sharded.plan(2).shard_units(2)


# ----------------------------------------------------------------------
# Merge failure modes
# ----------------------------------------------------------------------
class TestMergeFailures:
    def test_missing_units_name_the_owning_shard(self):
        sharded = _sharded_batch("plain")
        store = ResultStore()
        sharded.run_shard(0, 2, store)  # shard 1 never ran
        with pytest.raises(StoreError) as err:
            sharded.merge(store, 2)
        message = str(err.value)
        assert "missing" in message
        assert "shard 1/2" in message

    def test_missing_campaign_cells_reported(self):
        sharded = _sharded_campaign("two-model")
        store = ResultStore()
        sharded.run_shard(0, 3, store)
        with pytest.raises(StoreError) as err:
            sharded.merge(store, 3)
        assert "seance shard run" in str(err.value)
