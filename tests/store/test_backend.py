"""Blob backends: atomicity, namespacing, absence semantics."""

import pytest

from repro.store import DirectoryBackend, MemoryBackend


class TestMemoryBackend:
    def test_read_write_roundtrip(self):
        backend = MemoryBackend()
        assert backend.read("a/b.json") is None
        backend.write("a/b.json", b"payload")
        assert backend.read("a/b.json") == b"payload"
        assert list(backend.names()) == ["a/b.json"]

    def test_overwrite_replaces(self):
        backend = MemoryBackend()
        backend.write("k", b"one")
        backend.write("k", b"two")
        assert backend.read("k") == b"two"
        assert len(backend) == 1


class TestDirectoryBackend:
    def test_roundtrip_and_subdirectories(self, tmp_path):
        backend = DirectoryBackend(tmp_path / "store")
        backend.write("synthesis/abc.json", b"{}")
        backend.write("validation/def.json", b"[]")
        assert backend.read("synthesis/abc.json") == b"{}"
        assert sorted(backend.names()) == [
            "synthesis/abc.json",
            "validation/def.json",
        ]

    def test_missing_blob_reads_none(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        assert backend.read("synthesis/nope.json") is None

    def test_unsafe_names_rejected(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        for name in ("../evil", "a//b", ".", "a/./b"):
            with pytest.raises(ValueError):
                backend.write(name, b"x")

    def test_write_is_atomic_no_tmp_residue(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        backend.write("synthesis/k.json", b"x" * 4096)
        files = [p.name for p in (tmp_path / "synthesis").iterdir()]
        assert files == ["k.json"]

    def test_tmp_files_invisible_to_names(self, tmp_path):
        backend = DirectoryBackend(tmp_path)
        backend.write("synthesis/k.json", b"x")
        # A crashed writer's leftover must not surface as a blob.
        (tmp_path / "synthesis" / "k.tmp.12345").write_bytes(b"partial")
        assert list(backend.names()) == ["synthesis/k.json"]

    def test_unwritable_target_degrades_silently(self, tmp_path):
        """The write contract: an unwritable store never fails the run
        that computed the result (here the kind 'directory' is a file,
        so mkdir raises OSError)."""
        backend = DirectoryBackend(tmp_path)
        (tmp_path / "synthesis").write_bytes(b"not a directory")
        backend.write("synthesis/k.json", b"x")  # must not raise
        assert backend.read("synthesis/k.json") is None

    def test_two_backends_share_a_directory(self, tmp_path):
        a = DirectoryBackend(tmp_path)
        b = DirectoryBackend(tmp_path)
        a.write("synthesis/k.json", b"from-a")
        assert b.read("synthesis/k.json") == b"from-a"
