"""Failure artifacts: dirty campaign cells archive their VCD.

Satellite pin: when a validation cell fails, the campaign replays the
walk deterministically with the full debug watch-set and archives the
VCD next to the summary envelope (``validation/<digest>.vcd``), so a
failure found by a fleet at 3am is inspectable without re-running
anything.  Clean cells archive nothing.
"""

import pytest

from repro.bench import benchmark
from repro.sim.campaign import ValidationCampaign
from repro.store import ResultStore, ShardedCampaign
from repro.store.backend import MemoryBackend


@pytest.fixture
def store():
    return ResultStore(MemoryBackend())


def dirty_campaign(**overrides):
    """hazard_demo without fsv under skewed delays fails validation
    deterministically (the demonstration the benchmark exists for)."""
    options = dict(
        sweep=2, steps=15, delay_models=("skewed",), use_fsv=False
    )
    options.update(overrides)
    return ValidationCampaign(**options)


def vcd_names(store):
    return [
        name
        for name in store.backend.names("validation/")
        if name.endswith(".vcd")
    ]


class TestFailureArchiving:
    def test_dirty_cells_archive_a_vcd(self, store):
        report = dirty_campaign(store=store).run(
            [benchmark("hazard_demo")]
        )
        assert not report.all_clean
        dirty = [
            cell for cell in report.cells if not cell.summary.all_clean
        ]
        names = vcd_names(store)
        assert names, "dirty campaign archived no VCD"
        assert len(names) == len(dirty)
        # Every artifact sits next to its summary envelope.
        for name in names:
            stem = name.rsplit(".", 1)[0]
            assert store.backend.read(f"{stem}.json") is not None

    def test_archived_vcd_is_a_real_trace(self, store):
        dirty_campaign(store=store).run([benchmark("hazard_demo")])
        blob = store.backend.read(vcd_names(store)[0])
        text = blob.decode()
        assert "$timescale" in text or "$var" in text
        assert "$enddefinitions" in text
        assert "#" in text  # at least one timestamped change

    def test_clean_cells_archive_nothing(self, store):
        report = ValidationCampaign(
            sweep=1, steps=5, delay_models=("unit",), store=store
        ).run([benchmark("lion")])
        assert report.all_clean
        assert vcd_names(store) == []

    def test_sharded_campaign_archives_too(self, store):
        """The shard-runner path archives the same artifacts as the
        serial campaign."""
        sharded = ShardedCampaign(
            [benchmark("hazard_demo")], dirty_campaign()
        )
        sharded.run_shard(0, 1, store)
        assert vcd_names(store)

    def test_archiving_is_deterministic_across_reruns(self, store):
        tables = [benchmark("hazard_demo")]
        dirty_campaign(store=store).run(tables)
        first = {
            name: store.backend.read(name) for name in vcd_names(store)
        }
        other = ResultStore(MemoryBackend())
        dirty_campaign(store=other).run(tables)
        second = {
            name: other.backend.read(name) for name in vcd_names(other)
        }
        assert first == second
