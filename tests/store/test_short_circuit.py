"""Warm-store short-circuits: zero synthesis passes, zero simulation.

Acceptance pin (ISSUE 5): a repeat run against a warm store performs
**zero synthesis passes**, asserted through the
:class:`~repro.pipeline.manager.PassEvent` telemetry — not through
timing, which could hide a fast re-run.
"""

import json

import pytest

from repro import api
from repro.bench import benchmark
from repro.errors import SynthesisError
from repro.pipeline.batch import BatchRunner
from repro.sim.campaign import ValidationCampaign
from repro.store import ResultStore


NAMES = ("lion", "traffic", "hazard_demo")


class TestBatchShortCircuit:
    def test_warm_batch_runs_zero_passes(self):
        store = ResultStore()
        tables = [benchmark(name) for name in NAMES]
        cold = BatchRunner(store=store).run(tables)
        assert all(not item.store_hit for item in cold)
        assert all(item.events for item in cold)  # passes really ran
        warm = BatchRunner(store=store).run(tables)
        assert all(item.store_hit for item in warm)
        # The telemetry contract: not one PassEvent on the warm run.
        assert all(item.events == () for item in warm)
        assert all(item.cache_hits == () for item in warm)

    def test_warm_batch_parallel_jobs_short_circuits(self, tmp_path):
        store_dir = tmp_path / "store"
        tables = [benchmark(name) for name in NAMES]
        BatchRunner(store=ResultStore(store_dir)).run(tables)
        warm = BatchRunner(store=ResultStore(store_dir), jobs=2).run(
            tables
        )
        assert all(item.store_hit for item in warm)
        assert all(item.events == () for item in warm)

    def test_stored_failure_short_circuits_too(self):
        from tests.store.test_sharding import broken_table

        store = ResultStore()
        cold = BatchRunner(store=store).run([broken_table()])
        assert not cold[0].ok and not cold[0].store_hit
        warm = BatchRunner(store=store).run([broken_table()])
        assert not warm[0].ok and warm[0].store_hit
        assert warm[0].error == cold[0].error

    def test_cold_and_warm_results_byte_identical(self):
        store = ResultStore()
        table = benchmark("train11")
        cold = BatchRunner(store=store).run([table])[0]
        warm = BatchRunner(store=store).run([table])[0]
        assert json.dumps(
            warm.result.to_dict(), sort_keys=True
        ) == json.dumps(cold.result.to_dict(), sort_keys=True)


class TestSessionShortCircuit:
    def test_warm_session_report_has_no_events(self):
        store = ResultStore()
        session = api.load("lion", store=store)
        _, cold_report = session.run_with_report()
        assert not cold_report.store_hit and cold_report.events
        result, warm_report = session.run_with_report()
        assert warm_report.store_hit
        assert warm_report.events == []
        assert result.table1_row() == ("lion", 3, 5, 9)

    def test_store_respects_spec_changes(self):
        store = ResultStore()
        session = api.load("lion", store=store)
        session.run()
        ablated, report = session.with_pass(
            "fsv:unprotected"
        ).run_with_report()
        # Different spec fingerprint: a genuine run, not a stale hit.
        assert not report.store_hit
        assert ablated.fsv.expr.to_string() == "0"

    def test_stored_failure_reraises_original_domain_type(self):
        """Warm and cold runs of the same bad input raise the *same*
        exception type — the stored envelope records the class name."""
        from tests.store.test_sharding import broken_table

        store = ResultStore()
        session = api.Session(broken_table(), store=store)
        with pytest.raises(Exception) as cold:
            session.run()  # cold run: store is empty, pipeline raises
        BatchRunner(store=store).run([broken_table()])
        with pytest.raises(Exception) as warm:
            session.run()  # warm run: replayed from the stored failure
        assert type(warm.value) is type(cold.value)
        assert str(warm.value) == str(cold.value)

    def test_unknown_stored_error_type_falls_back_safely(self):
        """A poisoned/legacy error_type must not name arbitrary
        classes; it degrades to SynthesisError."""
        from repro.pipeline.spec import PipelineSpec
        from repro.store import synthesis_key

        store = ResultStore()
        table = benchmark("lion")
        store.put(
            synthesis_key(table, PipelineSpec()),
            {"ok": False, "error": "boom", "error_type": "SystemExit"},
        )
        with pytest.raises(SynthesisError):
            api.Session(table, store=store).run()

    def test_with_store_builder_attaches_directory(self, tmp_path):
        session = api.load("lion").with_store(tmp_path / "s")
        session.run()
        _, report = session.run_with_report()
        assert report.store_hit


class TestCampaignShortCircuit:
    def campaign(self, store):
        return ValidationCampaign(
            sweep=2,
            steps=6,
            delay_models=("unit", "loop-safe"),
            store=store,
        )

    def test_warm_campaign_replays_every_cell(self):
        store = ResultStore()
        tables = [benchmark("lion"), benchmark("hazard_demo")]
        cold = self.campaign(store).run(tables)
        assert cold.store_hits == 0
        warm = self.campaign(store).run(tables)
        assert warm.store_hits == len(warm.cells) == 8
        assert [c.summary.cycles for c in warm.cells] == [
            c.summary.cycles for c in cold.cells
        ]

    def test_session_validate_uses_the_store(self):
        store = ResultStore()
        session = api.load("traffic", store=store)
        first = session.validate(
            sweep=2, steps=6, delay_models=("unit",)
        )
        assert first.store_hits == 0
        again = session.validate(
            sweep=2, steps=6, delay_models=("unit",)
        )
        assert again.store_hits == len(again.cells)
        # A different workload shape is a different key set.
        wider = session.validate(
            sweep=2, steps=7, delay_models=("unit",)
        )
        assert wider.store_hits == 0

    def test_unprotected_machines_keyed_separately(self):
        store = ResultStore()
        session = api.load("hazard_demo", store=store)
        protected = session.validate(
            sweep=1, steps=6, delay_models=("unit",)
        )
        unprotected = session.validate(
            sweep=1, steps=6, delay_models=("unit",), use_fsv=False
        )
        assert protected.store_hits == 0
        assert unprotected.store_hits == 0  # no cross-key pollution
