"""End-to-end property test: random table -> synthesis -> gates -> oracle.

The complete claim of the paper, checked on machines nobody hand-tuned:
for any normal-mode, strongly connected flow table, the synthesised
FANTOM machine — actual gates under randomized delays — settles in the
states and produces the outputs the flow table specifies, for random
legal input walks including multiple-input changes.

Kept intentionally small per example (hypothesis runs many examples);
the benchmark suite covers the big machines and hostile delays.
"""

from hypothesis import HealthCheck, assume, given, settings

from repro.flowtable.validation import (
    check_normal_mode,
    check_stability,
    check_strongly_connected,
)
from repro.netlist.fantom import build_fantom
from repro.sim.delays import loop_safe_random
from repro.sim.harness import FantomHarness, random_legal_walk
from repro.sim.reference import FlowTableInterpreter

from .strategies import cached_synthesize as synthesize
from .strategies import normal_mode_tables

END_TO_END_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.filter_too_much,
        HealthCheck.data_too_large,
    ],
)


@given(normal_mode_tables(max_states=3, max_inputs=2, allow_unspecified=False))
@END_TO_END_SETTINGS
def test_fantom_machines_match_their_flow_tables(table):
    assume(not check_strongly_connected(table))
    assume(not check_stability(table))
    assert not check_normal_mode(table)  # guaranteed by the strategy

    result = synthesize(table)
    machine = build_fantom(result)
    harness = FantomHarness(machine, delays=loop_safe_random(seed=1))
    # Compare against the *reduced* table: that is the machine the
    # netlist implements, and Step 2 renames merged states.
    working = result.table
    reference = FlowTableInterpreter(working)
    walk = random_legal_walk(working, steps=5, seed=2)
    for index, column in enumerate(walk):
        report = harness.scored_apply(column, reference, index)
        assert report.state_correct, (
            f"state mismatch at step {index}: expected "
            f"{report.expected_state}, observed {report.observed_state}"
        )
        assert report.outputs_correct
        assert report.soc_respected


@given(normal_mode_tables(max_states=3, max_inputs=2, allow_unspecified=False))
@END_TO_END_SETTINGS
def test_synthesis_invariants_hold_for_random_tables(table):
    assume(not check_strongly_connected(table))
    assume(not check_stability(table))
    result = synthesize(table)
    # fsv is never high at a resting point
    from repro.logic.expr import expr_truth

    fsv_table = expr_truth(result.fsv.expr, result.spec.names)
    for minterm in result.spec.stable_minterms():
        assert fsv_table[minterm] == 0
    # depth identity of Table 1
    report = result.depth_report
    assert report.total_depth == report.fsv_depth + report.y_depth + 1
