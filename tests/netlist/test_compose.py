"""Tests for FANTOM stage composition (self-timed pipelines)."""

import pytest

from repro.bench import benchmark
from repro.core.seance import synthesize
from repro.errors import NetlistError
from repro.flowtable.builder import FlowTableBuilder
from repro.netlist.compose import chain
from repro.netlist.fantom import build_fantom
from repro.sim.delays import loop_safe_random
from repro.sim.simulator import Simulator


def follower_table():
    b = FlowTableBuilder(inputs=["d"], outputs=["q"])
    b.stable("low", "0", "0").add("low", "1", "high")
    b.stable("high", "1", "1").add("high", "0", "low")
    return b.build(reset="low", name="follower")


def build_pipeline():
    stage1 = build_fantom(synthesize(benchmark("hazard_demo")))
    stage2 = build_fantom(synthesize(follower_table()))
    return chain(stage1, stage2)


class TestConstruction:
    def test_port_count_mismatch_rejected(self):
        stage1 = build_fantom(synthesize(benchmark("traffic")))  # 2 outputs
        stage2 = build_fantom(synthesize(follower_table()))  # 1 input
        with pytest.raises(NetlistError) as err:
            chain(stage1, stage2)
        assert "outputs" in str(err.value)

    def test_reset_mismatch_rejected(self):
        # a follower resetting in column 1 cannot sit behind a stage
        # resting with output 0.  (Minimisation is disabled so the
        # follower keeps its reset state; fully reduced it becomes a
        # single state stable in both columns.)
        from repro.core.seance import SynthesisOptions

        b = FlowTableBuilder(inputs=["d"], outputs=["q"])
        b.stable("high", "1", "1").add("high", "0", "low")
        b.stable("low", "0", "0").add("low", "1", "high")
        bad_stage2 = build_fantom(
            synthesize(
                b.build(reset="high", name="bad_follower"),
                SynthesisOptions(minimize=False),
            )
        )
        stage1 = build_fantom(synthesize(benchmark("hazard_demo")))
        with pytest.raises(NetlistError) as err:
            chain(stage1, bad_stage2)
        assert "rests" in str(err.value)

    def test_composite_structure(self):
        pipeline = build_pipeline()
        netlist = pipeline.netlist
        netlist.validate()
        # external pins belong to stage 1
        assert set(pipeline.external_inputs) == {"X1", "X2"}
        assert pipeline.vi == "VI"
        # stage 2's input flip-flop is fed by stage 1's latched output
        ffx2 = next(
            f for f in netlist.dffs if f.name == "s2_FFX1"
        )
        assert ffx2.d == "s1_z1"
        # stage 2's G latch sees stage 1's VOM as its VI
        g_and = next(g for g in netlist.gates if g.name == "s2_G_and")
        assert "s1_VOM" in g_and.inputs

    def test_initial_values_consistent(self):
        pipeline = build_pipeline()
        values = pipeline.initial_values()
        # stage 1 rests complete (VOM high); stage 2 therefore sits with
        # G high and VOM low — the remembering latch at work.
        assert values[pipeline.stage1_vom] == 1
        assert values["s2_G"] == 1
        assert values[pipeline.stage2_vom] == 0


class TestDynamics:
    def run_transaction(self, sim, pipeline, column):
        def wait_for(net, value):
            sim.run(
                until=sim.now + 600.0,
                stop_when=lambda s: s.value(net) == value,
            )
            assert sim.value(net) == value

        wait_for(pipeline.stage1_vom, 1)
        sim.run_until_quiet(600.0)
        start = sim.now
        for i, pin in enumerate(pipeline.external_inputs):
            sim.schedule(pin, column >> i & 1, at=start + 2.0)
        sim.schedule(pipeline.vi, 1, at=start + 4.0)
        wait_for(pipeline.stage1_vom, 0)
        sim.schedule(pipeline.vi, 0, at=sim.now + 2.0)
        wait_for(pipeline.stage1_vom, 1)
        sim.run_until_quiet(600.0)
        return (
            sim.value("s1_z1"),
            sim.value(pipeline.stage2_outputs[0]),
        )

    def test_stage2_follows_with_one_transaction_lag(self):
        pipeline = build_pipeline()
        sim = Simulator(
            pipeline.netlist,
            delays=loop_safe_random(9),
            initial_values=pipeline.initial_values(),
        )
        table = pipeline.first.result.table
        col = table.column_of
        # z1 sequence produced by hazard_demo on this walk: 1, 1, 0
        walk = [col("11"), col("01"), col("00")]
        observed = [self.run_transaction(sim, pipeline, c) for c in walk]
        z1_values = [z1 for z1, _ in observed]
        q_values = [q for _, q in observed]
        assert z1_values == [1, 1, 0]
        # q lags one transaction behind z1 (starts from the reset value)
        assert q_values == [0] + z1_values[:-1]
