"""Tests for the structural Verilog exporter."""

import re

import pytest

from repro.bench import benchmark
from repro.core.seance import synthesize
from repro.errors import NetlistError
from repro.netlist.fantom import build_fantom
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.netlist.verilog import machine_to_verilog, netlist_to_verilog


def small_netlist():
    nl = Netlist("demo")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("g1", GateType.AND, ("a", "b"), "w1")
    nl.add_gate("g2", GateType.NOR, ("w1",), "f")
    nl.mark_output("f")
    return nl


class TestNetlistToVerilog:
    def test_module_shape(self):
        text = netlist_to_verilog(small_netlist())
        assert "module demo (" in text
        assert "input  wire a" in text
        assert "output wire f" in text
        assert "wire w1;" in text
        assert "and g1 (w1, a, b);" in text
        assert "nor g2 (f, w1);" in text
        assert text.strip().endswith("endmodule")

    def test_module_name_override(self):
        text = netlist_to_verilog(small_netlist(), module_name="top")
        assert "module top (" in text

    def test_constants_become_assigns(self):
        nl = Netlist("consts")
        nl.add_gate("k0", GateType.CONST0, (), "zero")
        nl.add_gate("k1", GateType.CONST1, (), "one")
        nl.mark_output("zero")
        nl.mark_output("one")
        text = netlist_to_verilog(nl)
        assert "assign zero = 1'b0;" in text
        assert "assign one = 1'b1;" in text

    def test_dff_instantiation(self):
        nl = Netlist("ff")
        nl.add_input("d")
        nl.add_input("clk")
        nl.add_dff("ff1", d="d", q="q", clock="clk")
        nl.mark_output("q")
        text = netlist_to_verilog(nl)
        assert "module FANTOM_DFF" in text
        assert "FANTOM_DFF ff1 (.d(d), .clk(clk), .q(q));" in text

    def test_bad_identifier_rejected(self):
        nl = Netlist("bad-name")
        nl.add_input("a")
        nl.add_gate("g", GateType.BUF, ("a",), "f")
        with pytest.raises(NetlistError):
            netlist_to_verilog(nl)


class TestMachineToVerilog:
    def test_full_machine_exports(self):
        machine = build_fantom(synthesize(benchmark("lion")))
        text = machine_to_verilog(machine)
        assert "FANTOM machine for flow table 'lion'" in text
        assert "module fantom_lion (" in text
        # every gate of the netlist appears exactly once
        for gate in machine.netlist.gates:
            assert re.search(rf"\b{re.escape(gate.name)}\b", text), gate.name
        # the architecture's signature gates
        assert "gateA (VOM, " in text
        assert "G_and (G, VI, G_hold);" in text

    def test_every_benchmark_exports(self):
        for name in ("hazard_demo", "traffic", "test_example"):
            machine = build_fantom(synthesize(benchmark(name)))
            text = machine_to_verilog(machine)
            assert "endmodule" in text

    def test_identifiers_all_legal(self):
        machine = build_fantom(synthesize(benchmark("lion9")))
        text = machine_to_verilog(machine)
        # no stray characters (merged-state names contain '+') outside
        # of comments that would break elaboration
        for line in text.splitlines():
            if line.strip().startswith("//"):
                continue
            assert "+" not in line, line
