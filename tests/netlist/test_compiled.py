"""Unit tests for the compiled netlist program."""

import pytest

from repro.netlist.compiled import CompiledNetlist, count_truth_table
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist


def small_netlist():
    nl = Netlist("small")
    nl.add_input("a")
    nl.add_input("b")
    nl.add_gate("g1", GateType.AND, ("a", "b"), "x")
    nl.add_gate("g2", GateType.NOR, ("x",), "y")
    nl.add_dff("ff", d="y", q="q", clock="a")
    return nl


class TestCountTruthTables:
    @pytest.mark.parametrize("arity", [1, 2, 3, 5, 8])
    def test_tables_match_gate_semantics(self, arity):
        for gate_type in (GateType.AND, GateType.OR, GateType.NOR):
            tt = count_truth_table(gate_type, arity)
            for ones in range(arity + 1):
                inputs = [1] * ones + [0] * (arity - ones)
                assert tt >> ones & 1 == gate_type.evaluate(inputs), (
                    gate_type,
                    arity,
                    ones,
                )

    def test_buf_and_constants(self):
        assert count_truth_table(GateType.BUF, 1) == 0b10
        assert count_truth_table(GateType.CONST0, 0) == 0
        assert count_truth_table(GateType.CONST1, 0) == 1

    def test_wide_or_stays_small(self):
        # the count-indexed table is arity+1 bits, not 2**arity
        tt = count_truth_table(GateType.OR, 40)
        assert tt.bit_length() == 41


class TestCompile:
    def test_net_ids_dense_and_deterministic(self):
        prog = small_netlist().compile()
        assert sorted(prog.net_ids.values()) == list(range(prog.num_nets))
        assert prog.net_names[prog.net_ids["x"]] == "x"
        # first-mention order: primary inputs first
        assert prog.net_names[:2] == ("a", "b")
        # identical construction sequence -> identical numbering
        assert small_netlist().compile().net_ids == prog.net_ids

    def test_gate_arrays_parallel(self):
        prog = small_netlist().compile()
        assert prog.num_gates == 2
        g1 = prog.gate_names.index("g1")
        assert prog.gate_inputs[g1] == (
            prog.net_ids["a"],
            prog.net_ids["b"],
        )
        assert prog.gate_output[g1] == prog.net_ids["x"]
        assert prog.evaluate_gate(g1, 2) == 1
        assert prog.evaluate_gate(g1, 1) == 0

    def test_fanout_adjacency(self):
        prog = small_netlist().compile()
        a = prog.net_ids["a"]
        g1 = prog.gate_names.index("g1")
        assert prog.fan_gates[a] == (g1,)
        assert prog.fan_dffs[a] == (0,)  # ff is clocked by a
        x = prog.net_ids["x"]
        assert prog.fan_gates[x] == (prog.gate_names.index("g2"),)

    def test_duplicate_input_multiplicity(self):
        nl = Netlist("dup")
        nl.add_input("a")
        nl.add_gate("g", GateType.AND, ("a", "a"), "x")
        prog = nl.compile()
        a = prog.net_ids["a"]
        assert prog.fan_gates[a] == (0, 0)  # one entry per occurrence
        assert prog.fan_counts[a] == ((0, 2),)

    def test_compile_memoised_until_mutation(self):
        nl = small_netlist()
        first = nl.compile()
        assert nl.compile() is first
        nl.add_gate("g3", GateType.BUF, ("q",), "z")
        second = nl.compile()
        assert second is not first
        assert second.num_gates == 3

    def test_repr(self):
        prog = small_netlist().compile()
        assert isinstance(prog, CompiledNetlist)
        assert "small" in repr(prog)
