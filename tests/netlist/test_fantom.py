"""Unit tests for the FANTOM architecture builder (paper Figures 1-2)."""

import pytest

from repro.bench import benchmark
from repro.core.seance import synthesize
from repro.netlist.fantom import build_fantom
from repro.netlist.gates import GateType
from repro.netlist.timing import timing_report


def lion_machine():
    return build_fantom(synthesize(benchmark("lion")))


class TestStructure:
    def test_ffx_bank_per_input(self):
        machine = lion_machine()
        ffx = [f for f in machine.netlist.dffs if f.name.startswith("FFX")]
        assert len(ffx) == 2
        assert all(f.clock == "G" for f in ffx)

    def test_ffz_bank_per_output(self):
        machine = lion_machine()
        ffz = [f for f in machine.netlist.dffs if f.name.startswith("FFZ")]
        assert len(ffz) == 1
        assert all(f.clock == "VOM" for f in ffz)

    def test_state_nets_have_no_flip_flop(self):
        # "Delay elements are not allowed in the feedback path."
        machine = lion_machine()
        dff_outputs = {f.q for f in machine.netlist.dffs}
        for net in machine.state_nets:
            assert net not in dff_outputs
            driver = machine.netlist.driver_of(net)
            assert driver is not None  # driven by combinational logic

    def test_vom_block_shape(self):
        # Figure 2: VOM = AND(NOR(G), NOR(fsv), SSD)
        machine = lion_machine()
        gate_a = next(
            g for g in machine.netlist.gates if g.name == "gateA"
        )
        assert gate_a.type is GateType.AND
        assert set(gate_a.inputs) == {"G_n", "fsv_n", "SSD"}
        assert gate_a.output == "VOM"

    def test_g_latch_shape(self):
        machine = lion_machine()
        g_and = next(g for g in machine.netlist.gates if g.name == "G_and")
        g_or = next(g for g in machine.netlist.gates if g.name == "G_or")
        assert g_and.inputs == ("VI", "G_hold")
        assert set(g_or.inputs) == {"VOM", "G"}  # the remembering loop

    def test_vom_gate_delay_override(self):
        machine = build_fantom(
            synthesize(benchmark("lion")), vom_gate_delay=7.5
        )
        gate_a = next(
            g for g in machine.netlist.gates if g.name == "gateA"
        )
        assert gate_a.delay == 7.5

    def test_ablated_machine_has_constant_fsv(self):
        machine = build_fantom(synthesize(benchmark("lion")), use_fsv=False)
        driver_name = machine.netlist.driver_of("fsv")
        driver = next(
            g for g in machine.netlist.gates if g.name == driver_name
        )
        assert driver.type is GateType.CONST0
        assert not machine.uses_fsv


class TestInitialValues:
    def test_reset_point_is_fixpoint(self):
        machine = lion_machine()
        values = machine.initial_values()
        spec = machine.result.spec
        code = spec.encoding.code(machine.reset_state())
        for n, net in enumerate(machine.state_nets):
            assert values[net] == code >> n & 1

    def test_vom_asserted_at_reset(self):
        values = lion_machine().initial_values()
        assert values["VOM"] == 1
        assert values["G"] == 0
        assert values["fsv"] == 0
        assert values["SSD"] == 1

    def test_outputs_match_reset_entry(self):
        machine = lion_machine()
        values = machine.initial_values()
        table = machine.result.table
        reset = machine.reset_state()
        column = machine.reset_column()
        for k, net in enumerate(machine.output_nets):
            expected = table.output_vector(reset, column)[k]
            if expected is not None:
                assert values[net] == expected

    @pytest.mark.parametrize(
        "name", ["lion", "traffic", "test_example", "train4", "hazard_demo"]
    )
    def test_all_benchmarks_initialise(self, name):
        machine = build_fantom(synthesize(benchmark(name)))
        machine.initial_values()  # must not raise


class TestTimingReport:
    def test_all_paths_satisfied_for_benchmarks(self):
        for name in ("lion", "traffic", "hazard_demo"):
            report = timing_report(synthesize(benchmark(name)))
            assert report.all_satisfied(), (name, report.rows())

    def test_vom_formula(self):
        report = timing_report(synthesize(benchmark("lion")))
        assert report.t_vom == report.t_f + min(
            report.t_g,
            min(report.a + report.t_ssd, report.a + report.t_fsv),
        )

    def test_rows_render(self):
        report = timing_report(synthesize(benchmark("lion")))
        rows = report.rows()
        assert len(rows) == 4
        assert all(len(row) == 3 for row in rows)

    def test_starved_environment_breaks_path4(self):
        # with no environment round-trip budget, fsv/SSD cannot take over
        # before G would deassert — the relation the paper warns about.
        report = timing_report(
            synthesize(benchmark("lion")), t_env=-10
        )
        assert not report.check_path4()
