"""Unit tests for the netlist container and expression compiler."""

import pytest

from repro.errors import NetlistError
from repro.logic.expr import And, Const, Lit, Nor, Or
from repro.netlist.build import compile_expression
from repro.netlist.gates import Dff, Gate, GateType
from repro.netlist.netlist import Netlist


class TestGates:
    def test_gate_evaluation(self):
        assert GateType.AND.evaluate([1, 1, 1]) == 1
        assert GateType.AND.evaluate([1, 0]) == 0
        assert GateType.OR.evaluate([0, 0]) == 0
        assert GateType.OR.evaluate([0, 1]) == 1
        assert GateType.NOR.evaluate([0, 0]) == 1
        assert GateType.NOR.evaluate([1, 0]) == 0
        assert GateType.BUF.evaluate([1]) == 1
        assert GateType.CONST0.evaluate([]) == 0
        assert GateType.CONST1.evaluate([]) == 1

    def test_gate_shape_checks(self):
        with pytest.raises(ValueError):
            Gate("g", GateType.AND, (), "out")
        with pytest.raises(ValueError):
            Gate("g", GateType.BUF, ("a", "b"), "out")
        with pytest.raises(ValueError):
            Gate("g", GateType.CONST0, ("a",), "out")

    def test_gate_evaluate_with_values(self):
        gate = Gate("g", GateType.AND, ("a", "b"), "out")
        assert gate.evaluate({"a": 1, "b": 1}) == 1
        assert gate.evaluate({"a": 1, "b": 0}) == 0


class TestNetlist:
    def test_single_driver_enforced(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", GateType.BUF, ("a",), "b")
        with pytest.raises(NetlistError):
            nl.add_gate("g2", GateType.BUF, ("a",), "b")

    def test_duplicate_names_rejected(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", GateType.BUF, ("a",), "b")
        with pytest.raises(NetlistError):
            nl.add_gate("g1", GateType.BUF, ("a",), "c")

    def test_input_cannot_be_driven(self):
        nl = Netlist("t")
        nl.add_input("a")
        with pytest.raises(NetlistError):
            nl.add_gate("g", GateType.CONST1, (), "a")

    def test_dff_drives_q(self):
        nl = Netlist("t")
        nl.add_input("d")
        nl.add_input("clk")
        nl.add_dff("ff", d="d", q="q", clock="clk")
        assert nl.driver_of("q") == "ff"

    def test_validate_catches_undriven_net(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g", GateType.AND, ("a", "ghost"), "out")
        with pytest.raises(NetlistError) as err:
            nl.validate()
        assert "ghost" in str(err.value)

    def test_readers_of(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", GateType.BUF, ("a",), "b")
        nl.add_gate("g2", GateType.NOR, ("a",), "c")
        assert set(nl.readers_of("a")) == {"g1", "g2"}

    def test_stats(self):
        nl = Netlist("t")
        nl.add_input("a")
        nl.add_gate("g1", GateType.BUF, ("a",), "b")
        stats = nl.stats()
        assert stats["gates"] == 1
        assert stats["gate_buf"] == 1

    def test_feedback_loop_allowed(self):
        # the G latch shape: G = AND(VI, OR(VOM, G))
        nl = Netlist("latch")
        nl.add_input("VI")
        nl.add_input("VOM")
        nl.add_gate("or1", GateType.OR, ("VOM", "G"), "hold")
        nl.add_gate("and1", GateType.AND, ("VI", "hold"), "G")
        nl.validate()  # cycles are fine

    def test_validate_rejects_direct_self_loop(self):
        # a gate reading its own output was only caught at sim time
        # (event-budget blowup); validate() must name it structurally.
        nl = Netlist("selfloop")
        nl.add_input("a")
        nl.add_gate("bad", GateType.NOR, ("a", "q"), "q")
        with pytest.raises(NetlistError) as err:
            nl.validate()
        message = str(err.value)
        assert "bad" in message
        assert "self-loop" in message

    def test_validate_rejects_self_loop_buffer(self):
        nl = Netlist("selfbuf")
        nl.add_gate("hold", GateType.BUF, ("q",), "q")
        with pytest.raises(NetlistError) as err:
            nl.validate()
        assert "self-loop" in str(err.value)


class TestCompileExpression:
    def evaluate_netlist(self, nl, inputs):
        """Settle a combinational netlist by sweeping (no cycles here)."""
        values = dict(inputs)
        for _ in range(len(nl.gates) + 1):
            for gate in nl.gates:
                values[gate.output] = gate.evaluate(
                    {n: values.get(n, 0) for n in gate.inputs}
                )
        return values

    def test_simple_sop(self):
        nl = Netlist("t")
        for net in ("a", "b", "c"):
            nl.add_input(net)
        expr = Or([And([Lit("a"), Lit("b")]), Lit("c")])
        compile_expression(nl, expr, "f", "F")
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    values = self.evaluate_netlist(
                        nl, {"a": a, "b": b, "c": c}
                    )
                    assert values["f"] == ((a and b) or c)

    def test_nor_inverter(self):
        nl = Netlist("t")
        nl.add_input("a")
        compile_expression(nl, Nor([Lit("a")]), "f", "F")
        assert self.evaluate_netlist(nl, {"a": 0})["f"] == 1
        assert self.evaluate_netlist(nl, {"a": 1})["f"] == 0

    def test_negated_literal_gets_inverter(self):
        nl = Netlist("t")
        nl.add_input("a")
        compile_expression(nl, Lit("a", negated=True), "f", "F")
        assert self.evaluate_netlist(nl, {"a": 1})["f"] == 0

    def test_constant(self):
        nl = Netlist("t")
        compile_expression(nl, Const(1), "f", "F")
        assert self.evaluate_netlist(nl, {})["f"] == 1

    def test_bare_literal_gets_buffer(self):
        nl = Netlist("t")
        nl.add_input("a")
        compile_expression(nl, Lit("a"), "f", "F")
        assert nl.driver_of("f") is not None
        assert self.evaluate_netlist(nl, {"a": 1})["f"] == 1

    def test_gate_count_matches_expression(self):
        nl = Netlist("t")
        for net in ("a", "b", "c"):
            nl.add_input(net)
        expr = Or([And([Lit("a"), Lit("b", negated=True)]), Lit("c")])
        compile_expression(nl, expr, "f", "F")
        assert nl.gate_count() == expr.gate_count()
