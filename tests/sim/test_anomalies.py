"""The two pre-existing campaign anomalies, pinned as expected failures.

ROADMAP (PR 4 follow-ons) flagged two validation anomalies, present at
the seed and engine-independent (both kernels agree).  ISSUE 5 asked
for them to be investigated and either fixed or pinned.  Investigation
findings (PR 5):

``train11`` under ``hostile`` — **expected failure by design, not a
synthesis bug.**  The hostile model draws flip-flop clock-to-Q from
[0.2, 3.0] against a combinational floor of 0.5: an input-skew window
of 2.8 versus a 0.5 minimum loop delay, which *deliberately* violates
the paper's Section-3 loop-delay assumption ("maximum line delay less
than minimum loop delay") — that is the model's documented purpose.
Under seed 2's silicon the ``Z`` output logic has not settled when
``VOM`` re-asserts and latches ``FFZ``, so three cycles latch a stale
output bit (state trajectory and SOC remain correct, the hand-shake
completes normally).  FANTOM's *state* construction is delay-
independent, and indeed no state error ever appears; the output-latch
timing is exactly the margin the loop-delay assumption exists to
protect.  Verdict: documented expected-failure fixture.

``lion9`` under ``loop-safe`` (seeds 0-2) — **a genuine anomaly, still
open; pinned.**  Static analysis (reproduced in
``test_lion9_static_soundness`` below) shows the synthesised logic is
sound: every stable total state has ``fsv = 0`` and ``Y = code``, and
every specified transition reaches its destination fixpoint — so this
is not a wrong-cover synthesis bug.  Dynamically, under seed 0's
loop-safe silicon, the multiple-input-change transition ``p1 --col 2-->
p3`` reaches the *correct* state but the fsv/G hand-shake feedback path
then enters a sustained oscillation (every net in the loop toggling,
``VOM`` re-dropping after its re-assert) and the netlist never
quiesces: the harness times out and the walk aborts at cycle 1.  Seeds
1 and 2 are clean.  The oscillation survives both event kernels, so it
is a property of the synthesised netlist + that silicon, not of a
simulator — most plausibly an essential-hazard interaction in the
G-latch/fsv loop that the paper's G-latch budget does not cover.
Verdict: pinned as an expected-failure fixture until the dynamic
mechanism is fully characterised (see ROADMAP).

These tests assert the **exact failing cell sets** so that (a) any
regression that widens the failures is caught immediately, and (b) a
genuine fix shows up as these pins failing — at which point they should
be updated deliberately, with the fix documented.
"""

from repro.bench import benchmark
from repro.sim.campaign import ValidationCampaign

#: (table, delay model) -> exact set of failing (seed, cycle-index)
#: points under sweep=3 (seeds 0-2), steps=30, the ROADMAP's reported
#: configuration.
LION9_FAILING_CELLS = {(0, 1)}
TRAIN11_FAILING_CELLS = {(2, 1), (2, 4), (2, 25)}


def failing_points(report):
    return {
        (cell.seed, cycle.index)
        for cell in report.cells
        for cycle in cell.summary.cycles
        if not cycle.clean
    }


class TestLion9LoopSafeAnomaly:
    def run_campaign(self, **kwargs):
        campaign = ValidationCampaign(
            sweep=3, steps=30, delay_models=("loop-safe",), **kwargs
        )
        return campaign.run([benchmark("lion9")])

    def test_exact_failing_cell_set(self):
        report = self.run_campaign()
        assert failing_points(report) == LION9_FAILING_CELLS
        # Exactly one dirty cell: seed 0.  Its walk aborts at cycle 1
        # (simulation timeout -> observed_state None), so the cell
        # records 2 of its 30 cycles; seeds 1 and 2 complete cleanly.
        dirty = [cell for cell in report.cells if not cell.clean]
        assert [(c.model, c.seed) for c in dirty] == [("loop-safe", 0)]
        assert dirty[0].summary.total == 2
        failure = dirty[0].summary.cycles[-1]
        assert failure.column == 2
        assert failure.expected_state == "p3"
        assert failure.observed_state is None  # timeout, not mis-decode
        clean = [cell for cell in report.cells if cell.clean]
        assert [cell.summary.total for cell in clean] == [30, 30]

    def test_engine_independent(self):
        """Both kernels agree — the anomaly is the netlist's, not a
        simulator artifact (sweep reduced to the failing seed)."""
        compiled = ValidationCampaign(
            sweep=1, steps=3, delay_models=("loop-safe",),
            engine="compiled",
        ).run([benchmark("lion9")])
        reference = ValidationCampaign(
            sweep=1, steps=3, delay_models=("loop-safe",),
            engine="reference",
        ).run([benchmark("lion9")])
        assert not compiled.all_clean
        assert not reference.all_clean
        assert [c.summary.cycles for c in compiled.cells] == [
            c.summary.cycles for c in reference.cells
        ]


class TestLion9StaticSoundness:
    def test_every_stable_point_is_a_fixpoint(self):
        """The investigation's static half: the synthesised equations
        are settled at every stable total state and every transition
        reaches its destination — the anomaly is dynamic."""
        from repro import api
        from repro.logic.expr import And, Const, Lit, Nor, Or

        result = api.synthesize("lion9")
        table = result.reduction.table
        encoding = result.assignment.encoding

        def evaluate(expr, env):
            if isinstance(expr, Const):
                return expr.bit
            if isinstance(expr, Lit):
                value = env[expr.name]
                return 1 - value if expr.negated else value
            values = [evaluate(child, env) for child in expr.children]
            if isinstance(expr, And):
                return int(all(values))
            if isinstance(expr, Or):
                return int(any(values))
            assert isinstance(expr, Nor)
            return int(not any(values))

        def environment(column, state):
            env = {}
            for i, name in enumerate(table.inputs):
                env[name] = column >> i & 1
            code = encoding.codes[state]
            for n, variable in enumerate(encoding.variables):
                env[variable] = code >> n & 1
            return env

        for (state, column), entry in sorted(table.entry_map().items()):
            if entry.next_state != state:
                continue
            env = environment(column, state)
            fsv = evaluate(result.fsv.expr, env)
            assert fsv == 0, f"fsv=1 at stable ({state}, {column})"
            env["fsv"] = fsv
            code = encoding.codes[state]
            for n, equation in enumerate(result.next_state):
                assert evaluate(equation.expr, env) == (code >> n & 1), (
                    f"Y{n} unstable at stable ({state}, {column})"
                )


class TestTrain11HostileAnomaly:
    def test_exact_failing_cell_set(self):
        report = ValidationCampaign(
            sweep=3, steps=30, delay_models=("hostile",)
        ).run([benchmark("train11")])
        assert failing_points(report) == TRAIN11_FAILING_CELLS
        dirty = [cell for cell in report.cells if not cell.clean]
        assert [(c.model, c.seed) for c in dirty] == [("hostile", 2)]
        for cycle in dirty[0].summary.cycles:
            if cycle.clean:
                continue
            # Output-latch staleness only: the state trajectory, SOC
            # discipline and hand-shake all remain correct — the
            # signature of the (deliberate) loop-delay violation, not
            # of a synthesis defect.
            assert cycle.column == 3
            assert cycle.state_correct
            assert cycle.soc_respected
            assert cycle.vom_rises == 1
            assert cycle.expected_outputs == (1,)
            assert cycle.observed_outputs == (0,)

    def test_hostile_model_violates_the_loop_delay_assumption(self):
        """The model's skew window exceeds its loop floor by design —
        the failure regime is outside the paper's guarantee."""
        from repro.sim.delays import hostile_random, loop_safe_random

        hostile = hostile_random(0)
        skew_window = hostile.ff_range[1] - hostile.ff_range[0]
        assert skew_window > hostile.gate_range[0]  # violated
        safe = loop_safe_random(0)
        safe_window = safe.ff_range[1] - safe.ff_range[0]
        assert safe_window < safe.gate_range[0]  # honoured

    def test_train11_clean_under_loop_safe(self):
        """Inside the assumption, train11 is clean — localising the
        hostile failure to the violated margin."""
        report = ValidationCampaign(
            sweep=3, steps=30, delay_models=("loop-safe",)
        ).run([benchmark("train11")])
        assert report.all_clean
