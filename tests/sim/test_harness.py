"""Integration tests: gate-level FANTOM machines against the oracle."""

import pytest

from repro.bench import benchmark
from repro.core.seance import SynthesisOptions, synthesize
from repro.errors import SimulationError
from repro.flowtable.builder import FlowTableBuilder
from repro.netlist.fantom import build_fantom
from repro.sim.delays import loop_safe_random, skewed_random
from repro.sim.harness import (
    FantomHarness,
    random_legal_walk,
    validate_against_reference,
)
from repro.sim.reference import FlowTableInterpreter


class TestReferenceInterpreter:
    def test_follows_table(self):
        table = benchmark("hazard_demo")
        ref = FlowTableInterpreter(table)
        assert ref.state == "off"
        step = ref.apply(table.column_of("11"))
        assert step.state == "on"
        assert step.outputs == (1,)

    def test_illegal_input_raises(self):
        table = benchmark("lion")  # out@01 unspecified
        ref = FlowTableInterpreter(table)
        with pytest.raises(SimulationError):
            ref.apply(table.column_of("01"))

    def test_legal_columns(self):
        table = benchmark("hazard_demo")
        ref = FlowTableInterpreter(table)
        assert set(ref.legal_columns()) == set(range(4))

    def test_oscillation_detected(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.add("b", "1", "a")  # a <-> b oscillation under x=1
        b.stable("b", "0", "1")
        table = b.build(check=False)
        ref = FlowTableInterpreter(table, state="a")
        with pytest.raises(SimulationError):
            ref.apply(1)


class TestRandomWalk:
    def test_walk_is_legal(self):
        table = benchmark("lion")
        walk = random_legal_walk(table, steps=40, seed=3)
        ref = FlowTableInterpreter(table)
        for column in walk:  # must not raise
            ref.apply(column)

    def test_walk_contains_multi_input_changes(self):
        table = benchmark("lion")
        walk = random_legal_walk(table, steps=60, seed=1)
        ref = FlowTableInterpreter(table)
        current = ref.stable_column()
        mic = 0
        for column in walk:
            if (column ^ current).bit_count() >= 2:
                mic += 1
            ref.apply(column)
            current = column
        assert mic > 5

    def test_walk_deterministic_per_seed(self):
        table = benchmark("lion")
        assert random_legal_walk(table, 20, seed=5) == random_legal_walk(
            table, 20, seed=5
        )


class TestSingleHandshake:
    def test_one_cycle_hazard_demo(self):
        machine = build_fantom(synthesize(benchmark("hazard_demo")))
        harness = FantomHarness(machine, delays=loop_safe_random(0))
        state, outputs = harness.apply(
            machine.result.table.column_of("11")
        )
        assert state == "on"
        assert outputs == (1,)

    def test_like_successive_inputs_complete_handshake(self):
        # Re-applying the resting vector must still hand-shake (the
        # paper's extension of the SI model, Section 3).
        machine = build_fantom(synthesize(benchmark("hazard_demo")))
        harness = FantomHarness(machine, delays=loop_safe_random(1))
        column = machine.reset_column()
        state1, _ = harness.apply(column)
        state2, _ = harness.apply(column)
        assert state1 == state2 == machine.reset_state()
        assert harness.cycle_count == 2

    def test_hazard_detected_cycle_still_correct(self):
        # drive the machine onto its hazard-marked point: off resting at
        # 01, inputs settle at 11 -> fsv must fire and the machine must
        # still land in 'on'.
        machine = build_fantom(synthesize(benchmark("hazard_demo")))
        table = machine.result.table
        harness = FantomHarness(machine, delays=loop_safe_random(2))
        harness.apply(table.column_of("01"))
        state, outputs = harness.apply(table.column_of("11"))
        assert state == "on"
        assert outputs == (1,)


class TestValidation:
    @pytest.mark.parametrize(
        "name",
        ["hazard_demo", "lion", "test_example", "traffic", "dme",
         "parity", "train4"],
    )
    def test_fantom_clean_under_loop_safe_delays(self, name):
        machine = build_fantom(synthesize(benchmark(name)))
        summary = validate_against_reference(
            machine, steps=20, seeds=(0, 1)
        )
        assert summary.all_clean, summary.describe()

    @pytest.mark.parametrize("name", ["hazard_demo", "lion"])
    def test_fantom_clean_under_skewed_delays(self, name):
        machine = build_fantom(synthesize(benchmark(name)))
        summary = validate_against_reference(
            machine, steps=20, seeds=(0, 1, 2), delays_factory=skewed_random
        )
        assert summary.all_clean, summary.describe()

    def test_naive_machine_fails_under_skew(self):
        """The ablation: without the fsv correction the machine breaks."""
        table = benchmark("hazard_demo")
        naive = build_fantom(
            synthesize(table, SynthesisOptions(hazard_correction=False))
        )
        summary = validate_against_reference(
            naive, steps=25, seeds=(0, 1, 2), delays_factory=skewed_random
        )
        assert not summary.all_clean

    def test_summary_accounting(self):
        machine = build_fantom(synthesize(benchmark("hazard_demo")))
        summary = validate_against_reference(machine, steps=5, seeds=(0,))
        assert summary.total == 5
        assert summary.state_errors == 0
        assert "5 cycles" in summary.describe()
