"""The fractional-time fast paths, pinned and provenanced (ISSUE 9).

The ring kernel no longer needs integral delays: a resolved delay
vector negotiates an exact dyadic tick quantum
(:func:`~repro.sim.delays.negotiate_time_quantum`) and the integer
bucket ring runs on scaled ticks, while vectors with no practical
quantum run on the calendar-queue ring.  These tests pin both paths
trace-for-trace to the compiled heap kernel across every built-in
delay model, exercise the documented migrations (off-grid stimulus
mid-run → calendar, tick-horizon overflow → heap), and check the
per-cell engine-path provenance that :class:`CampaignResult` and
``seance validate --json`` surface.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.campaign import DELAY_MODELS, delay_model
from repro.sim.delays import (
    TICK_SHIFT_LIMIT,
    TIME_GRID_BITS,
    RandomDelay,
    dyadic_shift,
    negotiate_time_quantum,
    snap_to_grid,
)
from repro.sim.ring import RingSimulator
from repro.sim.simulator import Simulator

from .test_equivalence import netlists, run_one, stimuli

SETTINGS = settings(max_examples=40, deadline=None)

#: Engine paths a built-in-model workload may legitimately end on; the
#: heap appears only through the documented tick-horizon overflow.
FAST_PATHS = {"ring", "ticks", "calendar"}


# ----------------------------------------------------------------------
# Quantum negotiation
# ----------------------------------------------------------------------
class TestQuantumNegotiation:
    def test_integral_vector_needs_no_shift(self):
        assert negotiate_time_quantum([1.0, 2.0, 7.0]) == 0

    def test_dyadic_vector_gets_its_exact_shift(self):
        assert dyadic_shift(0.125) == 3
        assert negotiate_time_quantum([1.5, 2.0]) == 1
        assert negotiate_time_quantum([1.5, 2.25]) == 2

    def test_off_grid_vector_has_no_practical_quantum(self):
        # 0.1 and 1/3 have ~full 52-bit denominators as floats.
        assert negotiate_time_quantum([1.0, 0.1]) is None
        assert negotiate_time_quantum([1 / 3]) is None

    def test_limit_bounds_the_negotiation(self):
        deep = 1.0 + 2.0 ** -(TICK_SHIFT_LIMIT + 1)
        assert dyadic_shift(deep) == TICK_SHIFT_LIMIT + 1
        assert negotiate_time_quantum([deep]) is None
        assert (
            negotiate_time_quantum([deep], limit=TICK_SHIFT_LIMIT + 1)
            == TICK_SHIFT_LIMIT + 1
        )

    @given(st.floats(0.05, 50.0, allow_nan=False))
    @SETTINGS
    def test_snapped_values_always_negotiate(self, value):
        snapped = snap_to_grid(value)
        shift = negotiate_time_quantum([snapped])
        assert shift is not None
        assert shift <= TIME_GRID_BITS
        # The snap is a sub-quantum perturbation of the drawn value.
        assert abs(snapped - value) <= 2.0 ** -(TIME_GRID_BITS + 1)

    def test_builtin_random_draws_are_on_grid(self):
        model = RandomDelay(seed=7)
        for n in range(25):
            value = model._draw(f"g:{n}", *model.gate_range)
            assert dyadic_shift(value) <= TIME_GRID_BITS
            assert model.gate_range[0] <= value <= model.gate_range[1]

    def test_ungridded_draws_do_not_negotiate(self):
        model = RandomDelay(seed=7, grid_bits=None)
        values = [
            model._draw(f"g:{n}", *model.gate_range) for n in range(8)
        ]
        assert negotiate_time_quantum(values) is None


# ----------------------------------------------------------------------
# Path equivalence on random netlists
# ----------------------------------------------------------------------
@st.composite
def grid_stimuli(draw, nl, bits=6):
    """A monotone pin schedule on the dyadic grid ``2**-bits``."""
    schedule = []
    ticks = 0
    scale = 1 << bits
    for _ in range(draw(st.integers(1, 10))):
        ticks += draw(st.integers(1, 4 * scale))
        net = draw(st.sampled_from(nl.primary_inputs))
        schedule.append((ticks / scale, net, draw(st.integers(0, 1))))
    return schedule


def _model_factory(name, seed):
    return lambda: delay_model(name, seed, None)


def _run_ring(nl, schedule, delays_factory, inertial):
    """Like :func:`run_one` but also returns the kernel telemetry."""
    sim = RingSimulator(nl, delays=delays_factory(), inertial=inertial)
    sim.watch(*sorted(nl.nets()))
    for at, net, value in schedule:
        sim.schedule(net, value, at=at)
    end = sim.run(until=60.0)
    values = {net: sim.value(net) for net in nl.nets()}
    return (sim.trace, values, end), sim.kernel_stats


class TestFastPathEquivalence:
    @given(
        data=st.data(),
        name=st.sampled_from(sorted(DELAY_MODELS)),
        seed=st.integers(0, 5),
        inertial=st.booleans(),
    )
    @SETTINGS
    def test_every_builtin_model_trace_identical(
        self, data, name, seed, inertial
    ):
        """Fractional built-in silicon runs fast and bit-identical."""
        nl = data.draw(netlists())
        schedule = data.draw(grid_stimuli(nl))
        factory = _model_factory(name, seed)
        ring, stats = _run_ring(nl, schedule, factory, inertial)
        compiled = run_one(Simulator, nl, schedule, factory, inertial)
        assert ring[0] == compiled[0]  # NetChange streams
        assert ring[1] == compiled[1]  # final values
        assert ring[2] == compiled[2]  # simulation time
        assert stats["path"] in FAST_PATHS

    @given(data=st.data(), seed=st.integers(0, 5), inertial=st.booleans())
    @SETTINGS
    def test_ungridded_silicon_runs_on_the_calendar(
        self, data, seed, inertial
    ):
        """No practical quantum → calendar-queue path, still pinned."""
        nl = data.draw(netlists())
        schedule = data.draw(stimuli(nl))
        factory = lambda: RandomDelay(seed=seed, grid_bits=None)
        ring, stats = _run_ring(nl, schedule, factory, inertial)
        compiled = run_one(Simulator, nl, schedule, factory, inertial)
        assert ring[0] == compiled[0]
        assert ring[1] == compiled[1]
        assert ring[2] == compiled[2]
        assert stats["path"] == "calendar"
        assert stats["shift"] == 0

    @given(data=st.data(), seed=st.integers(0, 5), inertial=st.booleans())
    @SETTINGS
    def test_off_grid_stimulus_migrates_losslessly(
        self, data, seed, inertial
    ):
        """An off-tick external event mid-run demotes ticks → calendar
        without disturbing the stream (the :func:`stimuli` times are
        millisecond-rounded, far off the dyadic grid)."""
        nl = data.draw(netlists())
        schedule = data.draw(stimuli(nl))
        factory = _model_factory("loop-safe", seed)
        ring, stats = _run_ring(nl, schedule, factory, inertial)
        compiled = run_one(Simulator, nl, schedule, factory, inertial)
        assert ring[0] == compiled[0]
        assert ring[1] == compiled[1]
        assert ring[2] == compiled[2]
        assert stats["path"] in FAST_PATHS


class TestOverflowFallback:
    def _netlist(self):
        from repro.netlist.gates import GateType
        from repro.netlist.netlist import Netlist

        nl = Netlist("horizon")
        nl.add_input("a")
        nl.add_gate("g0", GateType.BUF, ["a"], "w0")
        return nl

    def test_beyond_horizon_demotes_to_heap_with_provenance(self):
        """Scheduling past the tick-exactness horizon is the documented
        heap fallback — recorded in ``migrations``, results pinned."""
        nl = self._netlist()
        factory = _model_factory("loop-safe", 3)
        # 2**53 time units overflows the tick horizon at any shift.
        schedule = [(1.0, "a", 1), (2.0**53, "a", 0)]
        ring, stats = _run_ring(nl, schedule, factory, True)
        compiled = run_one(Simulator, nl, schedule, factory, True)
        # run_one stops at until=60.0; the far event stays queued, but
        # the migration must already have happened at schedule time.
        assert ring[0] == compiled[0]
        assert ring[1] == compiled[1]
        assert stats["path"] == "heap"
        assert stats["migrations"].get("overflow", 0) >= 1

    def test_within_horizon_stays_on_ticks(self):
        nl = self._netlist()
        factory = _model_factory("loop-safe", 3)
        _, stats = _run_ring(nl, [(1.0, "a", 1)], factory, True)
        assert stats["path"] == "ticks"
        assert 0 < stats["shift"] <= TIME_GRID_BITS
        assert not stats["migrations"]


# ----------------------------------------------------------------------
# Campaign provenance and telemetry
# ----------------------------------------------------------------------
class TestCampaignProvenance:
    def _campaign(self, engine="ring", models=("unit", "loop-safe")):
        from repro.sim.campaign import ValidationCampaign

        return ValidationCampaign(
            sweep=2, steps=8, delay_models=models, engine=engine
        ).run_names(["traffic"])

    def test_every_cell_reports_a_fast_path(self):
        report = self._campaign(models=tuple(DELAY_MODELS))
        for cell in report.cells:
            assert cell.engine_path is not None
            assert set(cell.engine_path.split("+")) <= FAST_PATHS

    def test_kernel_paths_rollup_matches_cells(self):
        report = self._campaign()
        rollup = report.kernel_paths()
        assert sum(rollup.values()) == len(report.cells)
        assert set(rollup) <= FAST_PATHS
        assert any(
            line.strip().startswith("kernel paths:")
            for line in report.describe().splitlines()
        )

    def test_compiled_cells_report_the_heap(self):
        report = self._campaign(engine="compiled")
        assert {cell.engine_path for cell in report.cells} == {"heap"}

    def test_reference_cells_have_no_telemetry(self):
        report = self._campaign(engine="reference", models=("unit",))
        assert {cell.engine_path for cell in report.cells} == {None}
        assert report.kernel_paths() == {"?": len(report.cells)}

    def test_canonical_payload_carries_engine_path(self):
        from repro.store.canonical import canonical_campaign_payload

        report = self._campaign()
        payload = canonical_campaign_payload(report)
        for cell in payload["cells"]:
            assert cell["engine_path"] in FAST_PATHS
            assert "kernel" in cell["summary"]

    def test_summary_kernel_round_trips(self):
        from repro.sim.monitors import ValidationSummary

        report = self._campaign()
        summary = report.cells[0].summary
        assert summary.kernel is not None
        restored = ValidationSummary.from_dict(summary.to_dict())
        assert restored.kernel == summary.kernel
        assert restored.to_dict() == summary.to_dict()

    def test_merge_kernel_aggregates_walks(self):
        from repro.sim.monitors import ValidationSummary

        summary = ValidationSummary()
        assert summary.kernel is None
        summary.merge_kernel(
            {"paths": {"ticks": 1}, "migrations": {}, "fronts": 3,
             "front_events": 9}
        )
        summary.merge_kernel(
            {"paths": {"calendar": 1}, "migrations": {"overflow": 1},
             "fronts": 2, "front_events": 4}
        )
        summary.merge_kernel(None)  # reference walks contribute nothing
        assert summary.kernel == {
            "paths": {"calendar": 1, "ticks": 1},
            "migrations": {"overflow": 1},
            "fronts": 5,
            "front_events": 13,
        }

    def test_telemetry_is_partition_independent(self):
        """The wire form must not leak segment-cache warmth: running
        the same cell twice in one process (warm caches, replays) and
        in a fresh order must serialise identically."""
        first = self._campaign()
        second = self._campaign()
        payload = [c.summary.to_dict() for c in first.cells]
        assert payload == [c.summary.to_dict() for c in second.cells]


class TestPinnedAnomaliesOnEveryPath:
    """The two campaign anomalies survive the engine swap exactly.

    ``tests/sim/test_anomalies.py`` pins the exact failing cell sets on
    the default engine (now ``ring``); here the ring and compiled
    engines are required to agree failure for failure on both anomaly
    cells, so no fast path can shift a pinned anomaly.
    """

    def _failing_points(self, report):
        return {
            (cell.seed, cycle.index)
            for cell in report.cells
            for cycle in cell.summary.cycles
            if not cycle.clean
        }

    def _both(self, name, model, sweep, steps):
        from repro.sim.campaign import ValidationCampaign

        reports = {}
        for engine in ("ring", "compiled"):
            reports[engine] = ValidationCampaign(
                sweep=sweep,
                steps=steps,
                delay_models=(model,),
                engine=engine,
            ).run_names([name])
        return reports

    def test_train11_hostile_cells_identical(self):
        reports = self._both("train11", "hostile", sweep=3, steps=30)
        points = self._failing_points(reports["ring"])
        assert points == self._failing_points(reports["compiled"])
        assert points  # the anomaly is present, not vacuously equal
        assert {seed for seed, _ in points} == {2}

    def test_lion9_loop_safe_cells_identical(self):
        reports = self._both("lion9", "loop-safe", sweep=1, steps=5)
        points = self._failing_points(reports["ring"])
        assert points == self._failing_points(reports["compiled"])
        assert points
        assert {seed for seed, _ in points} == {0}
