"""Failure injection: the validation stack must catch broken machines.

A validator that never fails is worthless.  These tests corrupt
synthesised machines in targeted ways and assert the corresponding
guard — netlist reset checking, the oracle comparison, the SOC/VOM
monitors — actually fires.
"""

import copy

import pytest

from repro.bench import benchmark
from repro.core.factoring import FactoredEquation
from repro.core.seance import synthesize
from repro.core.ssd import SsdEquation
from repro.errors import NetlistError
from repro.logic.expr import Const, Nor
from repro.netlist.fantom import build_fantom
from repro.sim.delays import loop_safe_random
from repro.sim.harness import validate_against_reference


def corrupted(result, **replacements):
    """A shallow copy of a SynthesisResult with fields swapped out."""
    clone = copy.copy(result)
    for field, value in replacements.items():
        setattr(clone, field, value)
    return clone


class TestBuildTimeDetection:
    def test_inverted_state_logic_caught_at_reset(self):
        """Inverting a next-state equation destroys the reset fixpoint;
        the netlist builder's initial-value check must refuse it."""
        result = synthesize(benchmark("lion"))
        bad_eq = result.next_state[0]
        inverted = FactoredEquation(
            name=bad_eq.name,
            cover=bad_eq.cover,
            expr=Nor([bad_eq.expr]),
            exact=bad_eq.exact,
        )
        bad = corrupted(
            result, next_state=[inverted] + result.next_state[1:]
        )
        machine = build_fantom(bad)
        with pytest.raises(NetlistError) as err:
            machine.initial_values()
        # either detection is acceptable: a wrong fixpoint or a reset
        # sweep that never converges (the inversion oscillates).
        message = str(err.value)
        assert "fixpoint" in message or "converge" in message

    def test_dead_ssd_caught_at_reset(self):
        """SSD stuck at 0 keeps VOM low forever; caught immediately."""
        result = synthesize(benchmark("lion"))
        dead = SsdEquation(
            cover=(),
            expr=Const(0),
            exact=True,
            dc_policy="unspecified",
        )
        machine = build_fantom(corrupted(result, ssd=dead))
        with pytest.raises(NetlistError) as err:
            machine.initial_values()
        assert "VOM" in str(err.value)


class TestRunTimeDetection:
    def test_spurious_excitation_caught_by_oracle(self):
        """Force a non-reset stable point to excite a state variable:
        the machine drifts out of the specified state and the oracle
        comparison must flag it the moment a walk rests there."""
        from repro.logic.expr import And, Lit, Or

        result = synthesize(benchmark("lion"))
        spec = result.spec
        table = result.table
        reset = table.reset_state or table.states[0]
        target = None
        for state, column in table.stable_points():
            if state == reset:
                continue
            code = spec.encoding.code(state)
            for n in range(spec.num_state_vars):
                if not code >> n & 1:
                    target = (state, column, n)
                    break
            if target:
                break
        assert target is not None
        state, column, n = target

        # a product term asserting exactly at the chosen stable point
        lits = []
        for i, input_name in enumerate(table.inputs):
            lits.append(Lit(input_name, negated=not column >> i & 1))
        code = spec.encoding.code(state)
        for k, var in enumerate(spec.encoding.variables):
            lits.append(Lit(var, negated=not code >> k & 1))
        poison = And(lits)

        bad_eq = result.next_state[n]
        poisoned = FactoredEquation(
            name=bad_eq.name,
            cover=bad_eq.cover,
            expr=Or([bad_eq.expr, poison]),
            exact=bad_eq.exact,
        )
        new_next = list(result.next_state)
        new_next[n] = poisoned
        machine = build_fantom(corrupted(result, next_state=new_next))
        summary = validate_against_reference(
            machine, steps=20, seeds=(0, 1),
            delays_factory=loop_safe_random,
        )
        assert not summary.all_clean

    def test_swapped_outputs_caught_by_oracle(self):
        """Swapping traffic's two output equations leaves the state
        machine intact but the latched outputs wrong."""
        result = synthesize(benchmark("traffic"))
        z1, z2 = result.outputs
        swapped_z1 = copy.copy(z1)
        swapped_z2 = copy.copy(z2)
        object.__setattr__(swapped_z1, "expr", z2.expr)
        object.__setattr__(swapped_z2, "expr", z1.expr)
        machine = build_fantom(
            corrupted(result, outputs=[swapped_z1, swapped_z2])
        )
        summary = validate_against_reference(
            machine, steps=12, seeds=(0,),
            delays_factory=loop_safe_random,
        )
        assert summary.output_errors > 0
        assert summary.state_errors == 0  # the state machine is fine

    def test_missing_hazard_hold_caught_under_skew(self):
        """The canonical ablation, as a failure-injection assertion:
        dropping the fsv correction must be *detected*, not survived."""
        from repro.core.seance import SynthesisOptions
        from repro.sim.delays import hostile_random

        result = synthesize(
            benchmark("traffic"), SynthesisOptions(hazard_correction=False)
        )
        machine = build_fantom(result)
        summary = validate_against_reference(
            machine, steps=20, seeds=(0, 1, 2),
            delays_factory=hostile_random,
        )
        assert not summary.all_clean
