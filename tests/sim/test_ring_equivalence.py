"""The ring-buffer event kernel is pinned to the compiled kernel.

Same pattern as the PR-4 engine swap: the vectorised bucket-ring kernel
(:class:`repro.sim.ring.RingSimulator` — batched same-timestamp fronts,
run-segment replay, heap fallback for fractional delays) must be
observably indistinguishable from the compiled kernel — identical
:class:`NetChange` traces, identical final net values, identical
simulation time — on random netlists under random stimuli across every
delay model, and identical campaign outcomes (including the failing
cells of ablated machines) over the golden machines.
(``events_processed`` intentionally differs in unit-delay mode: batched
fronts elide pushes that the serial kernel enqueues and supersedes.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ring import RingSimulator
from repro.sim.simulator import Simulator

from .test_equivalence import delay_model_for, netlists, run_one, stimuli

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def integral_stimuli(draw, nl):
    """A monotone schedule of pin changes at integer times.

    The fractional schedules of :func:`stimuli` force the ring kernel
    onto its heap fallback; integral schedules keep it on the bucket
    ring, exercising front batching and segment replay.
    """
    schedule = []
    at = 0
    for _ in range(draw(st.integers(1, 10))):
        at += draw(st.integers(1, 4))
        net = draw(st.sampled_from(nl.primary_inputs))
        schedule.append((float(at), net, draw(st.integers(0, 1))))
    return schedule


class TestRingKernelEquivalence:
    @given(data=st.data(), model=st.integers(0, 2), inertial=st.booleans())
    @SETTINGS
    def test_random_netlists_trace_identical(self, data, model, inertial):
        nl = data.draw(netlists())
        schedule = data.draw(stimuli(nl))
        delays_factory = delay_model_for(model)
        ring = run_one(RingSimulator, nl, schedule, delays_factory, inertial)
        compiled = run_one(Simulator, nl, schedule, delays_factory, inertial)
        assert ring[0] == compiled[0]  # NetChange streams
        assert ring[1] == compiled[1]  # final values
        assert ring[2] == compiled[2]  # simulation time

    @given(data=st.data(), inertial=st.booleans())
    @SETTINGS
    def test_integral_unit_delay_stays_on_the_ring(self, data, inertial):
        """Bucket-ring path (no heap migration) is trace-identical."""
        nl = data.draw(netlists())
        schedule = data.draw(integral_stimuli(nl))
        delays_factory = delay_model_for(0)  # unit: integral delays
        ring = run_one(RingSimulator, nl, schedule, delays_factory, inertial)
        compiled = run_one(Simulator, nl, schedule, delays_factory, inertial)
        assert ring[0] == compiled[0]
        assert ring[1] == compiled[1]
        assert ring[2] == compiled[2]

    def test_fractional_schedule_migrates_to_heap(self):
        """A fractional external event mid-run falls back losslessly."""
        from repro.netlist.gates import GateType
        from repro.netlist.netlist import Netlist
        from repro.sim.delays import UnitDelay

        nl = Netlist("mig")
        nl.add_input("a")
        nl.add_gate("g0", GateType.BUF, ["a"], "w0")
        nl.add_gate("g1", GateType.NOR, ["w0", "w1"], "w1")
        schedule = [(1.0, "a", 1), (2.5, "a", 0), (4.0, "a", 1)]
        ring = run_one(
            RingSimulator, nl, schedule, lambda: UnitDelay(), True
        )
        compiled = run_one(
            Simulator, nl, schedule, lambda: UnitDelay(), True
        )
        assert ring == compiled


class TestRingMachineEquivalence:
    def test_campaign_outcomes_identical_all_models(self):
        from repro.sim.campaign import DELAY_MODELS, ValidationCampaign

        def campaign(engine):
            return ValidationCampaign(
                sweep=2,
                steps=10,
                delay_models=tuple(DELAY_MODELS),
                engine=engine,
            ).run_names(["hazard_demo", "traffic"])

        ring = campaign("ring")
        compiled = campaign("compiled")
        assert [
            (c.table, c.model, c.seed, c.summary.cycles) for c in ring.cells
        ] == [
            (c.table, c.model, c.seed, c.summary.cycles)
            for c in compiled.cells
        ]

    def test_golden_walk_summaries_identical(self):
        from repro.bench import benchmark
        from repro.netlist.fantom import build_fantom
        from repro.sim.harness import validate_against_reference

        from ..strategies import cached_synthesize

        for name in ("hazard_demo", "traffic", "lion"):
            machine = build_fantom(cached_synthesize(benchmark(name)))
            ring = validate_against_reference(
                machine,
                steps=25,
                seeds=(0, 1),
                simulator_factory=RingSimulator,
            )
            compiled = validate_against_reference(
                machine, steps=25, seeds=(0, 1)
            )
            assert ring.cycles == compiled.cycles
            assert ring.total > 0

    def test_ablated_anomaly_cells_identical(self):
        """Hazard firings of ablated machines agree failure for failure.

        train11 under hostile skew and lion9 under loop-safe delays are
        the anomaly cells of the campaign suite: the fsv-less machines
        diverge there, and the ring kernel must report the *same*
        failing cycles, not merely the same counts.
        """
        from repro.bench import benchmark
        from repro.netlist.fantom import build_fantom
        from repro.sim.delays import hostile_random, loop_safe_random
        from repro.sim.harness import validate_against_reference

        from ..strategies import cached_synthesize

        cases = [
            ("train11", hostile_random),
            ("lion9", loop_safe_random),
        ]
        saw_failure = False
        for name, delays_factory in cases:
            machine = build_fantom(
                cached_synthesize(benchmark(name)), use_fsv=False
            )
            kwargs = dict(
                steps=15, seeds=(0, 1, 2), delays_factory=delays_factory
            )
            ring = validate_against_reference(
                machine, simulator_factory=RingSimulator, **kwargs
            )
            compiled = validate_against_reference(machine, **kwargs)
            assert ring.cycles == compiled.cycles
            assert ring.failures == compiled.failures
            saw_failure = saw_failure or not compiled.all_clean
        assert saw_failure  # the ablated workload does expose hazards


class TestRingFastPaths:
    def _walk(self, name="traffic"):
        from repro.bench import benchmark
        from repro.netlist.fantom import build_fantom
        from repro.sim.delays import UnitDelay
        from repro.sim.harness import validate_against_reference

        from ..strategies import cached_synthesize

        machine = build_fantom(cached_synthesize(benchmark(name)))
        return validate_against_reference(
            machine,
            steps=20,
            seeds=(0,),
            delays_factory=lambda seed: UnitDelay(),
            simulator_factory=RingSimulator,
        )

    def test_front_and_replay_paths_engage(self, monkeypatch):
        """Guard against a silent fall-through to the serial/live path."""
        import repro.sim.ring as ring_mod

        hits = {"front": 0, "replay": 0}
        orig_front = ring_mod.RingSimulator._front
        orig_replay = ring_mod.RingSimulator._replay

        def front(self, *a, **kw):
            hits["front"] += 1
            return orig_front(self, *a, **kw)

        def replay(self, *a, **kw):
            hits["replay"] += 1
            return orig_replay(self, *a, **kw)

        monkeypatch.setattr(ring_mod.RingSimulator, "_front", front)
        monkeypatch.setattr(ring_mod.RingSimulator, "_replay", replay)
        summary = self._walk("lion9")
        assert summary.total > 0
        assert hits["front"] > 0
        assert hits["replay"] > 0

    def test_pure_python_front_matches_numpy(self, monkeypatch):
        """The numpy vectorised front is optional; results are pinned."""
        import repro.sim.ring as ring_mod

        with_numpy = self._walk()
        monkeypatch.setattr(ring_mod, "_np", None)
        without_numpy = self._walk()
        assert with_numpy.cycles == without_numpy.cycles
