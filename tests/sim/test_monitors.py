"""Unit tests for the trace monitors."""

from repro.sim.monitors import (
    CycleReport,
    ValidationSummary,
    count_changes,
)
from repro.sim.simulator import NetChange


def make_report(**overrides):
    defaults = dict(
        index=0,
        column=0,
        expected_state="a",
        observed_state="a",
        expected_outputs=(1, None),
        observed_outputs=(1, 0),
        output_changes={"z1": 1, "z2": 0},
        vom_rises=1,
    )
    defaults.update(overrides)
    return CycleReport(**defaults)


class TestCycleReport:
    def test_clean_cycle(self):
        report = make_report()
        assert report.state_correct
        assert report.outputs_correct
        assert report.soc_respected
        assert report.clean

    def test_state_mismatch(self):
        report = make_report(observed_state="b")
        assert not report.state_correct
        assert not report.clean

    def test_unspecified_outputs_never_mismatch(self):
        report = make_report(
            expected_outputs=(None, None), observed_outputs=(0, 1)
        )
        assert report.outputs_correct

    def test_output_mismatch(self):
        report = make_report(observed_outputs=(0, 0))
        assert not report.outputs_correct

    def test_soc_violation(self):
        report = make_report(output_changes={"z1": 2})
        assert not report.soc_respected
        assert not report.clean

    def test_multiple_vom_rises_not_clean(self):
        report = make_report(vom_rises=3)
        assert report.state_correct
        assert not report.clean


class TestValidationSummary:
    def test_aggregation(self):
        summary = ValidationSummary()
        summary.add(make_report())
        summary.add(make_report(observed_state="b"))
        summary.add(make_report(output_changes={"z1": 5}))
        assert summary.total == 3
        assert summary.state_errors == 1
        assert summary.soc_violations == 1
        assert len(summary.failures) == 2
        assert not summary.all_clean

    def test_describe(self):
        summary = ValidationSummary()
        summary.add(make_report())
        text = summary.describe()
        assert "1 cycles" in text
        assert "0 state errors" in text


class TestCountChanges:
    def test_window_is_half_open(self):
        trace = [
            NetChange(1.0, "z", 1),
            NetChange(2.0, "z", 0),
            NetChange(3.0, "z", 1),
        ]
        counts = count_changes(trace, ["z"], start=1.0, end=3.0)
        assert counts["z"] == 2  # 3.0 excluded

    def test_untracked_nets_ignored(self):
        trace = [NetChange(1.0, "other", 1)]
        counts = count_changes(trace, ["z"], start=0.0, end=10.0)
        assert counts == {"z": 0}
