"""Distribution and bounds tests for the delay models."""

import pytest

from repro.netlist.gates import Dff, Gate, GateType
from repro.sim.delays import (
    CornerDelay,
    RandomDelay,
    hostile_random,
    loop_safe_random,
    skewed_random,
)


def gates(n):
    return [Gate(f"g{i}", GateType.AND, ("a", "b"), f"o{i}") for i in range(n)]


def dffs(n):
    return [Dff(f"FFX{i}", d="d", q=f"q{i}", clock="G") for i in range(n)]


class TestLoopSafeRandom:
    def test_bounds_hold_over_many_instances(self):
        model = loop_safe_random(0)
        for gate in gates(300):
            assert 1.5 <= model.gate_delay(gate) <= 2.5
        for dff in dffs(300):
            assert 0.2 <= model.clk_to_q(dff) <= 1.0

    def test_loop_delay_assumption(self):
        """Max input-path skew stays below the minimum loop delay."""
        for seed in range(20):
            model = loop_safe_random(seed)
            qs = [model.clk_to_q(dff) for dff in dffs(40)]
            skew = max(qs) - min(qs)
            min_gate = min(model.gate_delay(g) for g in gates(40))
            assert skew < min_gate

    def test_distribution_spreads_over_the_range(self):
        """Draws cover the range, not a corner of it (uniformity smoke:
        each third of the gate range gets a healthy share)."""
        model = loop_safe_random(1)
        draws = [model.gate_delay(g) for g in gates(600)]
        lo = sum(1 for d in draws if d < 1.5 + 1.0 / 3)
        mid = sum(1 for d in draws if 1.5 + 1.0 / 3 <= d < 1.5 + 2.0 / 3)
        hi = sum(1 for d in draws if d >= 1.5 + 2.0 / 3)
        for share in (lo, mid, hi):
            assert share > 600 * 0.2

    def test_same_seed_same_silicon_different_seed_differs(self):
        a = [loop_safe_random(7).gate_delay(g) for g in gates(20)]
        b = [loop_safe_random(7).gate_delay(g) for g in gates(20)]
        c = [loop_safe_random(8).gate_delay(g) for g in gates(20)]
        assert a == b
        assert a != c

    def test_skewed_and_hostile_bounds(self):
        skewed = skewed_random(0)
        hostile = hostile_random(0)
        for dff in dffs(100):
            assert 0.2 <= skewed.clk_to_q(dff) <= 2.0
            assert 0.2 <= hostile.clk_to_q(dff) <= 3.0

    def test_positive_delay_required(self):
        with pytest.raises(ValueError):
            RandomDelay(seed=0, gate_range=(0.0, 1.0))


class TestCornerDelay:
    def test_gates_pinned_to_floor(self):
        model = CornerDelay()
        assert {model.gate_delay(g) for g in gates(10)} == {1.0}

    def test_adjacent_bits_get_opposite_extremes(self):
        model = CornerDelay()
        bank = dffs(6)
        values = [model.clk_to_q(dff) for dff in bank]
        # The extremes sit on the dyadic time grid: snapped 0.2, exact 1.0.
        assert set(values) == set(model.ff_extremes)
        assert model.ff_extremes[1] == 1.0
        assert abs(model.ff_extremes[0] - 0.2) < 2**-24
        for left, right in zip(values, values[1:]):
            assert left != right

    def test_phase_flips_polarity(self):
        bank = dffs(4)
        even_model = CornerDelay(phase=0)
        even = [even_model.clk_to_q(dff) for dff in bank]
        odd = [CornerDelay(phase=1).clk_to_q(dff) for dff in bank]
        slow, fast = even_model.ff_extremes
        flip = {slow: fast, fast: slow}
        assert odd == [flip[value] for value in even]

    def test_assignment_is_name_keyed_not_call_order_keyed(self):
        bank = dffs(5)
        forward = [CornerDelay().clk_to_q(dff) for dff in bank]
        backward = [CornerDelay().clk_to_q(dff) for dff in reversed(bank)]
        assert forward == list(reversed(backward))

    def test_explicit_overrides_win(self):
        model = CornerDelay()
        assert model.gate_delay(
            Gate("g", GateType.AND, ("a",), "o", delay=9.0)
        ) == 9.0
        assert model.clk_to_q(
            Dff("FFX1", d="d", q="q", clock="G", clk_to_q=4.0)
        ) == 4.0

    def test_loop_delay_assumption_enforced(self):
        with pytest.raises(ValueError):
            CornerDelay(gate_floor=0.5)  # 0.8 skew window >= 0.5 loop
        with pytest.raises(ValueError):
            CornerDelay(ff_extremes=(0.0, 0.5))
