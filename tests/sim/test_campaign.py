"""Monte-Carlo validation campaigns: determinism, gating, surfaces."""

import pytest

from repro import api
from repro.bench import benchmark
from repro.errors import SimulationError, ValidationError
from repro.sim.campaign import (
    DELAY_MODELS,
    CampaignResult,
    ValidationCampaign,
    delay_model,
)


class TestConfiguration:
    def test_unknown_delay_model_rejected_eagerly(self):
        with pytest.raises(SimulationError) as err:
            ValidationCampaign(delay_models=("warp",))
        assert "warp" in str(err.value)

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            ValidationCampaign(engine="fpga")

    def test_bad_shape_rejected(self):
        with pytest.raises(SimulationError):
            ValidationCampaign(sweep=0)
        with pytest.raises(SimulationError):
            ValidationCampaign(steps=0)
        with pytest.raises(SimulationError):
            ValidationCampaign(delay_models=())

    def test_registry_names(self):
        assert set(DELAY_MODELS) == {
            "unit",
            "loop-safe",
            "skewed",
            "hostile",
            "corner",
        }
        with pytest.raises(SimulationError):
            delay_model("nope", 0, None)


class TestCampaignRuns:
    def campaign(self, **kwargs):
        defaults = dict(
            sweep=2, steps=8, delay_models=("unit", "loop-safe")
        )
        defaults.update(kwargs)
        return ValidationCampaign(**defaults)

    def test_cell_grid_order_is_table_model_seed(self):
        report = self.campaign().run_names(["hazard_demo", "traffic"])
        grid = [(c.table, c.model, c.seed) for c in report.cells]
        assert grid == [
            ("hazard_demo", "unit", 0),
            ("hazard_demo", "unit", 1),
            ("hazard_demo", "loop-safe", 0),
            ("hazard_demo", "loop-safe", 1),
            ("traffic", "unit", 0),
            ("traffic", "unit", 1),
            ("traffic", "loop-safe", 0),
            ("traffic", "loop-safe", 1),
        ]
        assert report.all_clean
        assert report.total_cycles == 8 * 8

    def test_deterministic_across_runs_and_base_seed(self):
        first = self.campaign(base_seed=3).run_names(["hazard_demo"])
        second = self.campaign(base_seed=3).run_names(["hazard_demo"])
        assert [c.summary.cycles for c in first.cells] == [
            c.summary.cycles for c in second.cells
        ]
        shifted = self.campaign(base_seed=4).run_names(["hazard_demo"])
        assert {c.seed for c in shifted.cells} == {4, 5}

    def test_merged_and_by_model_aggregation(self):
        report = self.campaign().run_names(["hazard_demo"])
        merged = report.merged()
        assert merged.total == report.total_cycles
        per_model = report.by_model()
        assert set(per_model) == {"unit", "loop-safe"}
        assert sum(s.total for s in per_model.values()) == merged.total

    def test_ablated_machine_fails_under_skew(self):
        report = self.campaign(
            delay_models=("skewed",), sweep=3, steps=15, use_fsv=False
        ).run_names(["hazard_demo"])
        assert not report.all_clean
        assert report.failures
        assert "FAILED" in report.describe()

    def test_synthesis_error_recorded_not_raised(self):
        from repro.flowtable.builder import FlowTableBuilder

        bad = (
            FlowTableBuilder(inputs=["x"], outputs=["z"])
            .stable("a", "0", "0")
            .add("a", "1", "b")
            .stable("b", "1", "1")
            .build(check=False)  # b unreachable back: not strongly conn.
        )
        report = self.campaign().run(
            [benchmark("hazard_demo"), bad]
        )
        assert len(report.errors) == 1
        assert not report.all_clean
        clean_cells = [c for c in report.cells if c.table == "hazard_demo"]
        assert clean_cells  # the good table still ran

    def test_parallel_jobs_identical_stream(self):
        serial = self.campaign(jobs=1).run_names(["hazard_demo", "lion"])
        parallel = self.campaign(jobs=3).run_names(["hazard_demo", "lion"])
        assert [
            (c.table, c.model, c.seed, c.summary.cycles)
            for c in serial.cells
        ] == [
            (c.table, c.model, c.seed, c.summary.cycles)
            for c in parallel.cells
        ]

    def test_corner_model_is_seed_deterministic(self):
        once = self.campaign(delay_models=("corner",)).run_names(["lion"])
        again = self.campaign(delay_models=("corner",)).run_names(["lion"])
        assert [c.summary.cycles for c in once.cells] == [
            c.summary.cycles for c in again.cells
        ]


class TestVerifyPass:
    def spec_with_verify(self):
        from repro.pipeline.registry import DEFAULT_PIPELINE

        return api.PipelineSpec().with_passes(*DEFAULT_PIPELINE, "verify")

    def test_clean_machine_passes_and_records_stage(self):
        result = api.synthesize("hazard_demo", spec=self.spec_with_verify())
        assert "verify" in result.stage_seconds

    def test_gate_is_usable_on_the_whole_paper_table(self):
        # lion9 has a pre-existing loop-safe anomaly (ROADMAP); the
        # inline gate's model mix must still pass every paper machine.
        spec = self.spec_with_verify()
        for name in ("lion9", "train11"):
            result = api.synthesize(name, spec=spec)
            assert "verify" in result.stage_seconds

    def test_unprotected_machine_fails_the_pipeline(self):
        spec = self.spec_with_verify().substitute("fsv:unprotected")
        with pytest.raises(ValidationError) as err:
            api.synthesize("hazard_demo", spec=spec)
        assert "failed dynamic validation" in str(err.value)

    def test_verify_round_trips_in_a_spec_file(self):
        spec = self.spec_with_verify()
        assert api.PipelineSpec.from_dict(spec.to_dict()) == spec


class TestSessionValidate:
    def test_session_validate_returns_campaign_result(self):
        report = api.load("traffic").validate(
            sweep=2, steps=8, delay_models=("unit",), seed=11
        )
        assert isinstance(report, CampaignResult)
        assert report.all_clean
        assert {c.seed for c in report.cells} == {11, 12}

    def test_session_validate_respects_spec(self):
        report = (
            api.load("hazard_demo")
            .with_pass("fsv:unprotected")
            .validate(sweep=2, steps=15, delay_models=("skewed",))
        )
        assert not report.all_clean


class TestCli:
    def test_validate_sweep_flags(self, capsys):
        from repro.cli import main

        code = main([
            "validate", "hazard_demo", "--sweep", "2", "--steps", "6",
            "--delay-model", "unit", "--delay-model", "corner",
            "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "unit" in out and "corner" in out
        assert "clean" in out

    def test_validate_multiple_specs(self, capsys):
        from repro.cli import main

        assert main([
            "validate", "hazard_demo", "traffic",
            "--sweep", "1", "--steps", "5",
        ]) == 0

    def test_validate_reference_engine(self, capsys):
        from repro.cli import main

        assert main([
            "validate", "hazard_demo", "--sweep", "1", "--steps", "5",
            "--engine", "reference",
        ]) == 0

    def test_validate_bad_model_reports_cleanly(self, capsys):
        from repro.cli import main

        assert main(["validate", "hazard_demo", "--delay-model", "x"]) == 2
        assert "unknown delay model" in capsys.readouterr().err
