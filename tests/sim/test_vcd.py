"""Tests for the VCD waveform exporter."""

from repro.sim.simulator import NetChange
from repro.sim.vcd import _identifier, trace_to_vcd, write_vcd


def sample_trace():
    return [
        NetChange(0.5, "G", 1),
        NetChange(1.25, "fsv", 1),
        NetChange(1.25, "SSD", 0),
        NetChange(3.0, "fsv", 0),
    ]


class TestIdentifiers:
    def test_unique_and_printable(self):
        seen = set()
        for i in range(200):
            ident = _identifier(i)
            assert ident not in seen
            assert all(33 <= ord(ch) < 127 for ch in ident)
            seen.add(ident)


class TestTraceToVcd:
    def test_header(self):
        text = trace_to_vcd(sample_trace(), ["G", "fsv", "SSD"])
        assert "$timescale 1ns $end" in text
        assert "$scope module fantom $end" in text
        assert text.count("$var wire 1 ") == 3
        assert "$enddefinitions $end" in text

    def test_initial_values_dumped(self):
        text = trace_to_vcd(
            sample_trace(), ["G", "SSD"], initial_values={"SSD": 1}
        )
        dump = text.split("$dumpvars")[1].split("$end")[0]
        assert "1" in dump  # SSD starts high

    def test_time_quantisation(self):
        text = trace_to_vcd(sample_trace(), ["G", "fsv", "SSD"])
        assert "#50" in text    # 0.5 * 100
        assert "#125" in text   # 1.25 * 100
        assert "#300" in text

    def test_simultaneous_changes_share_timestamp(self):
        text = trace_to_vcd(sample_trace(), ["G", "fsv", "SSD"])
        assert text.count("#125") == 1

    def test_unwatched_nets_filtered(self):
        text = trace_to_vcd(sample_trace(), ["G"])
        assert "#125" not in text

    def test_write_vcd_roundtrip(self, tmp_path):
        path = tmp_path / "wave.vcd"
        write_vcd(path, sample_trace(), ["G", "fsv"])
        assert path.read_text().startswith("$date")


class TestGolden:
    def test_full_document_pinned(self):
        """The exact VCD text — header, declarations, dump, change
        records — for a small trace; any formatting drift is a consumer
        (GTKWave) compatibility change and must be deliberate."""
        text = trace_to_vcd(
            sample_trace(),
            ["G", "fsv"],
            initial_values={"fsv": 1},
            module="machine",
            timescale="10ps",
            resolution=4,
        )
        assert text == (
            "$date repro simulation $end\n"
            "$version repro FANTOM simulator $end\n"
            "$timescale 10ps $end\n"
            "$scope module machine $end\n"
            "$var wire 1 ! G $end\n"
            '$var wire 1 " fsv $end\n'
            "$upscope $end\n"
            "$enddefinitions $end\n"
            "$dumpvars\n"
            "0!\n"
            '1"\n'
            "$end\n"
            "#2\n"
            "1!\n"
            "#5\n"
            '1"\n'
            "#12\n"
            '0"\n'
        )

    def test_simulator_trace_to_golden_vcd(self, tmp_path):
        """End to end: compiled-simulator trace through the exporter."""
        from repro.netlist.gates import GateType
        from repro.netlist.netlist import Netlist
        from repro.sim.delays import UnitDelay
        from repro.sim.simulator import Simulator

        nl = Netlist("pair")
        nl.add_input("a")
        nl.add_gate("inv", GateType.NOR, ("a",), "b")
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "b": 1})
        sim.watch("a", "b")
        sim.schedule("a", 1, at=1.0)
        sim.run(until=5.0)
        text = trace_to_vcd(sim.trace, ["a", "b"], initial_values={"b": 1})
        assert "#100\n1!" in text  # a rises at t=1.0 (resolution 100)
        assert '#200\n0"' in text  # b falls one unit later


class TestEndToEnd:
    def test_machine_waveform_exports(self, tmp_path):
        from repro.bench import benchmark
        from repro.core.seance import synthesize
        from repro.netlist.fantom import build_fantom
        from repro.sim.delays import loop_safe_random
        from repro.sim.harness import FantomHarness

        machine = build_fantom(synthesize(benchmark("hazard_demo")))
        harness = FantomHarness(machine, delays=loop_safe_random(0))
        harness.simulator.watch("fsv", "SSD", *machine.state_nets)
        table = machine.result.table
        harness.apply(table.column_of("01"))
        harness.apply(table.column_of("11"))
        path = tmp_path / "fantom.vcd"
        write_vcd(
            path,
            harness.simulator.trace,
            ["G", "VOM", "fsv", "SSD", *machine.state_nets],
            initial_values=machine.initial_values(),
        )
        text = path.read_text()
        assert "$var wire 1" in text
        assert "#" in text
