"""Unit tests for the event-driven simulator."""

import pytest

from repro.errors import SimulationError
from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.sim.delays import RandomDelay, UnitDelay, loop_safe_random
from repro.sim.simulator import Simulator


def inverter_chain(length=3):
    nl = Netlist("chain")
    nl.add_input("a")
    previous = "a"
    for i in range(length):
        out = f"n{i}"
        nl.add_gate(f"inv{i}", GateType.NOR, (previous,), out)
        previous = out
    return nl, previous


class TestCombinational:
    def test_propagation_with_unit_delays(self):
        nl, out = inverter_chain(3)
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "n0": 1, "n1": 0, "n2": 1})
        sim.schedule("a", 1, at=1.0)
        sim.run(until=10.0)
        # three inversions of 1 -> 0
        assert sim.value(out) == 0

    def test_change_arrives_after_total_delay(self):
        nl, out = inverter_chain(2)
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "n0": 1, "n1": 0})
        sim.watch(out)
        sim.schedule("a", 1, at=1.0)
        sim.run(until=10.0)
        changes = sim.trace_of(out)
        assert len(changes) == 1
        assert changes[0].time == pytest.approx(3.0)  # 1.0 + 2 gates
        assert changes[0].value == 1

    def test_glitch_propagates_with_transport_delay(self):
        # f = AND(a, NOR(a)) should pulse when a rises (the NOR lags);
        # transport semantics keep the pulse visible.
        nl = Netlist("glitch")
        nl.add_input("a")
        nl.add_gate("inv", GateType.NOR, ("a",), "an")
        nl.add_gate("and1", GateType.AND, ("a", "an"), "f")
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "an": 1, "f": 0},
                        inertial=False)
        sim.watch("f")
        sim.schedule("a", 1, at=1.0)
        sim.run(until=10.0)
        values = [c.value for c in sim.trace_of("f")]
        assert values == [1, 0]  # the classic static-0 pulse

    def test_identical_value_not_reapplied(self):
        nl, _ = inverter_chain(1)
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "n0": 1})
        sim.watch("n0")
        sim.schedule("a", 0, at=1.0)  # no-op change
        sim.run(until=5.0)
        assert sim.trace_of("n0") == []

    def test_schedule_in_past_rejected(self):
        nl, _ = inverter_chain(1)
        sim = Simulator(nl)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.schedule("a", 1, at=1.0)

    def test_unknown_net_value(self):
        nl, _ = inverter_chain(1)
        sim = Simulator(nl)
        with pytest.raises(SimulationError):
            sim.value("nope")


class TestFeedback:
    def test_sr_style_latch_holds(self):
        # G = AND(VI, OR(VOM, G)): raising then dropping VOM while VI
        # is high must leave G high (it "remembers").
        nl = Netlist("latch")
        nl.add_input("VI")
        nl.add_input("VOM")
        nl.add_gate("or1", GateType.OR, ("VOM", "G"), "hold")
        nl.add_gate("and1", GateType.AND, ("VI", "hold"), "G")
        sim = Simulator(
            nl, UnitDelay(), initial_values={"VI": 0, "VOM": 1, "hold": 1, "G": 0}
        )
        sim.schedule("VI", 1, at=1.0)
        sim.run(until=10.0)
        assert sim.value("G") == 1
        sim.schedule("VOM", 0, at=11.0)
        sim.run(until=20.0)
        assert sim.value("G") == 1  # remembered through the loop
        sim.schedule("VI", 0, at=21.0)
        sim.run(until=30.0)
        assert sim.value("G") == 0

    def test_oscillator_raises(self):
        # a NOR feeding itself oscillates forever: budget must trip.
        nl = Netlist("osc")
        nl.add_gate("inv", GateType.NOR, ("q",), "q")
        sim = Simulator(nl, UnitDelay(), max_events=500, inertial=False)
        sim.schedule("q", 1, at=0.5)
        with pytest.raises(SimulationError) as err:
            sim.run()
        assert "budget" in str(err.value)

    def test_run_until_quiet_detects_busy_queue(self):
        nl = Netlist("osc")
        nl.add_gate("inv", GateType.NOR, ("q",), "q")
        sim = Simulator(nl, UnitDelay(), max_events=100_000, inertial=False)
        sim.schedule("q", 1, at=0.5)
        with pytest.raises(SimulationError):
            sim.run_until_quiet(timeout=50.0)


class TestInertial:
    def test_short_pulse_filtered(self):
        # the same AND(a, NOR(a)) shape under inertial semantics: the
        # re-evaluation supersedes the pending pulse.
        nl = Netlist("glitch")
        nl.add_input("a")
        nl.add_gate("inv", GateType.NOR, ("a",), "an")
        nl.add_gate("and1", GateType.AND, ("a", "an"), "f")
        sim = Simulator(
            nl, UnitDelay(), initial_values={"a": 0, "an": 1, "f": 0}
        )
        sim.watch("f")
        sim.schedule("a", 1, at=1.0)
        sim.run(until=10.0)
        assert sim.trace_of("f") == []

    def test_long_pulse_survives_inertial(self):
        # a pulse wider than the reader's delay must still pass.
        nl = Netlist("wide")
        nl.add_input("a")
        nl.add_gate("buf", GateType.BUF, ("a",), "f")
        sim = Simulator(nl, UnitDelay(), initial_values={"a": 0, "f": 0})
        sim.watch("f")
        sim.schedule("a", 1, at=1.0)
        sim.schedule("a", 0, at=5.0)  # 4-unit pulse vs 1-unit gate
        sim.run(until=10.0)
        values = [c.value for c in sim.trace_of("f")]
        assert values == [1, 0]

    def test_external_schedules_not_cancelled(self):
        nl = Netlist("ext")
        nl.add_input("a")
        nl.add_gate("buf", GateType.BUF, ("a",), "f")
        sim = Simulator(nl, UnitDelay())
        sim.schedule("a", 1, at=1.0)
        sim.schedule("a", 0, at=2.0)
        sim.schedule("a", 1, at=3.0)
        sim.watch("a")
        sim.run(until=10.0)
        assert [c.value for c in sim.trace_of("a")] == [1, 0, 1]


class TestDff:
    def build_dff(self):
        nl = Netlist("ff")
        nl.add_input("d")
        nl.add_input("clk")
        nl.add_dff("ff", d="d", q="q", clock="clk")
        return nl

    def test_samples_on_rising_edge(self):
        nl = self.build_dff()
        sim = Simulator(nl, UnitDelay(), initial_values={"d": 1, "clk": 0, "q": 0})
        sim.schedule("clk", 1, at=2.0)
        sim.run(until=10.0)
        assert sim.value("q") == 1

    def test_ignores_falling_edge(self):
        nl = self.build_dff()
        sim = Simulator(nl, UnitDelay(), initial_values={"d": 1, "clk": 1, "q": 0})
        sim.schedule("clk", 0, at=2.0)
        sim.run(until=10.0)
        assert sim.value("q") == 0

    def test_samples_d_at_edge_instant(self):
        nl = self.build_dff()
        sim = Simulator(nl, UnitDelay(), initial_values={"d": 0, "clk": 0, "q": 0})
        sim.schedule("clk", 1, at=2.0)
        sim.schedule("d", 1, at=3.0)  # after the edge: must not be seen
        sim.run(until=10.0)
        assert sim.value("q") == 0


class TestDelayModels:
    def test_random_delay_deterministic_per_seed(self):
        from repro.netlist.gates import Gate

        gate = Gate("g1", GateType.AND, ("a", "b"), "f")
        d1 = RandomDelay(seed=42).gate_delay(gate)
        d2 = RandomDelay(seed=42).gate_delay(gate)
        d3 = RandomDelay(seed=43).gate_delay(gate)
        assert d1 == d2
        assert d1 != d3

    def test_random_delay_cached_per_instance(self):
        from repro.netlist.gates import Gate

        model = RandomDelay(seed=1)
        gate = Gate("g1", GateType.AND, ("a", "b"), "f")
        assert model.gate_delay(gate) == model.gate_delay(gate)

    def test_explicit_gate_delay_wins(self):
        from repro.netlist.gates import Gate

        gate = Gate("g1", GateType.AND, ("a", "b"), "f", delay=9.0)
        assert RandomDelay(seed=1).gate_delay(gate) == 9.0

    def test_loop_safe_ranges(self):
        from repro.netlist.gates import Dff, Gate

        model = loop_safe_random(0)
        gate = Gate("g", GateType.AND, ("a",), "f")
        dff = Dff("ff", "d", "q", "clk")
        assert model.gate_delay(gate) >= 1.5
        assert model.clk_to_q(dff) <= 1.0

    def test_nonpositive_delay_rejected(self):
        with pytest.raises(ValueError):
            RandomDelay(seed=0, gate_range=(0.0, 1.0))
