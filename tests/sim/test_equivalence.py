"""The compiled event kernel is pinned to the retained seed interpreter.

Same pattern as PR 3's logic-engine pinning: the rewritten hot path
(:class:`repro.sim.simulator.Simulator`, running the compiled netlist
program) must be observably indistinguishable from the seed kernel
(:class:`repro.sim._reference.ReferenceSimulator`) — identical
:class:`NetChange` traces, identical final net values, identical
simulation time — on random netlists under random stimuli and delay
models, and identical :class:`ValidationSummary` outcomes over the
golden machines.  (`events_processed` intentionally differs: the
compiled kernel filters no-op re-evaluations at push time.)
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.gates import GateType
from repro.netlist.netlist import Netlist
from repro.sim._reference import ReferenceSimulator
from repro.sim.delays import CornerDelay, RandomDelay, UnitDelay
from repro.sim.simulator import Simulator

from ..strategies import normal_mode_tables

SETTINGS = settings(max_examples=40, deadline=None)

_GATE_TYPES = (GateType.AND, GateType.OR, GateType.NOR, GateType.BUF)


@st.composite
def netlists(draw):
    """Small random netlists: external inputs, gates, optional dffs.

    Gate inputs are drawn from a shared name pool (with replacement, so
    duplicate inputs occur) and may reference nets driven *later* —
    combinational feedback loops included, exactly the structures the
    FANTOM architecture relies on.
    """
    num_inputs = draw(st.integers(1, 3))
    num_gates = draw(st.integers(1, 7))
    inputs = [f"i{n}" for n in range(num_inputs)]
    wires = [f"w{n}" for n in range(num_gates)]
    pool = inputs + wires

    nl = Netlist("random")
    for net in inputs:
        nl.add_input(net)
    for n, out in enumerate(wires):
        gate_type = draw(st.sampled_from(_GATE_TYPES))
        arity = 1 if gate_type is GateType.BUF else draw(st.integers(1, 3))
        gate_inputs = [draw(st.sampled_from(pool)) for _ in range(arity)]
        nl.add_gate(f"g{n}", gate_type, gate_inputs, out)
    if draw(st.booleans()):
        nl.add_dff(
            "ff1",
            d=draw(st.sampled_from(pool)),
            q="q1",
            clock=draw(st.sampled_from(inputs)),
        )
    return nl


@st.composite
def stimuli(draw, nl):
    """A monotone schedule of external-pin changes."""
    schedule = []
    at = 0.0
    for _ in range(draw(st.integers(1, 10))):
        at += draw(st.floats(0.25, 4.0, allow_nan=False))
        net = draw(st.sampled_from(nl.primary_inputs))
        schedule.append((round(at, 3), net, draw(st.integers(0, 1))))
    return schedule


def delay_model_for(choice: int):
    if choice == 0:
        return lambda: UnitDelay()
    if choice == 1:
        return lambda: RandomDelay(seed=choice)
    return lambda: CornerDelay(phase=choice)


def run_one(factory, nl, schedule, delays_factory, inertial):
    sim = factory(nl, delays=delays_factory(), inertial=inertial)
    sim.watch(*sorted(nl.nets()))
    for at, net, value in schedule:
        sim.schedule(net, value, at=at)
    end = sim.run(until=60.0)
    values = {net: sim.value(net) for net in nl.nets()}
    return sim.trace, values, end


class TestKernelEquivalence:
    @given(
        data=st.data(),
        model=st.integers(0, 2),
        inertial=st.booleans(),
    )
    @SETTINGS
    def test_random_netlists_trace_identical(self, data, model, inertial):
        nl = data.draw(netlists())
        schedule = data.draw(stimuli(nl))
        delays_factory = delay_model_for(model)
        compiled = run_one(Simulator, nl, schedule, delays_factory, inertial)
        reference = run_one(
            ReferenceSimulator, nl, schedule, delays_factory, inertial
        )
        assert compiled[0] == reference[0]  # NetChange streams
        assert compiled[1] == reference[1]  # final values
        assert compiled[2] == reference[2]  # simulation time


class TestMachineEquivalence:
    def validate_both(self, name, **kwargs):
        from repro.netlist.fantom import build_fantom
        from repro.sim.harness import validate_against_reference

        from ..strategies import cached_synthesize
        from repro.bench import benchmark

        machine = build_fantom(cached_synthesize(benchmark(name)))
        compiled = validate_against_reference(machine, **kwargs)
        reference = validate_against_reference(
            machine, simulator_factory=ReferenceSimulator, **kwargs
        )
        assert compiled.cycles == reference.cycles
        return compiled

    def test_golden_machines_summary_identical(self):
        for name in ("hazard_demo", "traffic", "lion"):
            summary = self.validate_both(name, steps=25, seeds=(0, 1))
            assert summary.total > 0

    def test_campaign_outcomes_identical(self):
        from repro.sim.campaign import ValidationCampaign

        def campaign(engine):
            return ValidationCampaign(
                sweep=2,
                steps=10,
                delay_models=("unit", "loop-safe", "corner"),
                engine=engine,
            ).run_names(["hazard_demo", "traffic"])

        compiled = campaign("compiled")
        reference = campaign("reference")
        assert [
            (c.table, c.model, c.seed, c.summary.cycles)
            for c in compiled.cells
        ] == [
            (c.table, c.model, c.seed, c.summary.cycles)
            for c in reference.cells
        ]

    def test_ablated_machine_failures_identical(self):
        """Divergence (hazard firings) must agree cycle for cycle too."""
        from repro.netlist.fantom import build_fantom
        from repro.sim.delays import skewed_random
        from repro.sim.harness import validate_against_reference
        from repro.bench import benchmark

        from ..strategies import cached_synthesize

        machine = build_fantom(
            cached_synthesize(benchmark("hazard_demo")), use_fsv=False
        )
        kwargs = dict(steps=20, seeds=(0, 1, 2), delays_factory=skewed_random)
        compiled = validate_against_reference(machine, **kwargs)
        reference = validate_against_reference(
            machine, simulator_factory=ReferenceSimulator, **kwargs
        )
        assert compiled.cycles == reference.cycles
        assert not compiled.all_clean  # the workload does expose hazards


class TestSynthesizedMachineEquivalence:
    @given(table=normal_mode_tables(max_states=4, max_inputs=2))
    @settings(max_examples=12, deadline=None)
    def test_hypothesis_machines_validate_identically(self, table):
        from repro.errors import ReproError
        from repro.netlist.fantom import build_fantom
        from repro.sim.harness import validate_against_reference

        from ..strategies import cached_synthesize

        try:
            machine = build_fantom(cached_synthesize(table))
        except ReproError:
            return  # not synthesisable (not strongly connected, ...)
        compiled = validate_against_reference(machine, steps=8, seeds=(0,))
        reference = validate_against_reference(
            machine,
            steps=8,
            seeds=(0,),
            simulator_factory=ReferenceSimulator,
        )
        assert compiled.cycles == reference.cycles


class TestWalkDeterminism:
    def test_walk_rng_threading_matches_seed(self):
        from repro.bench import benchmark
        from repro.sim.harness import random_legal_walk

        table = benchmark("lion")
        by_seed = random_legal_walk(table, 30, seed=9)
        by_rng = random_legal_walk(table, 30, rng=random.Random(9))
        assert by_seed == by_rng

    def test_walk_requires_some_randomness_source(self):
        import pytest

        from repro.bench import benchmark
        from repro.errors import SimulationError
        from repro.sim.harness import random_legal_walk

        with pytest.raises(SimulationError):
            random_legal_walk(benchmark("lion"), 5)
