"""The `repro.api` front door: loading, sessions, one-shots, batch."""

import json

import pytest

from repro import api
from repro.bench import benchmark, kiss_source
from repro.core.serialize import table_to_dict
from repro.errors import ReproError
from repro.flowtable.builder import FlowTableBuilder
from repro.flowtable.burst import BurstSpec
from repro.pipeline import StageCache


class TestLoadTable:
    def test_flow_table_passes_through(self):
        table = benchmark("lion")
        assert api.load_table(table) is table

    def test_rename(self):
        assert api.load_table(benchmark("lion"), name="cat").name == "cat"

    def test_benchmark_name(self):
        assert api.load_table("lion").name == "lion"

    def test_kiss_file(self, tmp_path):
        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        table = api.load_table(str(path))
        assert table.name == "machine"
        assert table.num_states == benchmark("hazard_demo").num_states

    def test_flow_table_json_file(self, tmp_path):
        source = benchmark("lion")
        path = tmp_path / "lion.json"
        path.write_text(json.dumps(table_to_dict(source)))
        table = api.load_table(path)
        assert table.name == "lion"
        assert table.entry_map() == source.entry_map()

    def test_json_sniffing_without_extension(self, tmp_path):
        path = tmp_path / "table.data"
        path.write_text(json.dumps(table_to_dict(benchmark("lion"))))
        assert api.load_table(str(path)).num_states == 4

    def test_burst_spec_expands(self):
        spec = BurstSpec(
            inputs=["req"], outputs=["grant"],
            initial_state="idle", initial_inputs={"req": 0},
        )
        spec.state("idle", "0").state("busy", "1")
        spec.burst("idle", "busy", ["req+"])
        spec.burst("busy", "idle", ["req-"])
        table = api.load_table(spec, name="arb")
        assert table.name == "arb"
        assert set(table.states) == {"idle", "busy"}

    def test_builder_is_rejected_with_guidance(self):
        with pytest.raises(ReproError, match="build"):
            api.load_table(FlowTableBuilder(inputs=["a"], outputs=["z"]))

    def test_unknown_source_type(self):
        with pytest.raises(ReproError, match="cannot load"):
            api.load_table(42)

    def test_missing_path_lists_benchmarks(self):
        with pytest.raises(ReproError, match="benchmark name"):
            api.load_table("definitely_missing.kiss2")


class TestSession:
    def test_run_matches_one_shot(self):
        assert (
            api.load("lion").run().table1_row()
            == api.synthesize("lion").table1_row()
        )

    def test_builders_are_immutable_derivations(self):
        base = api.load("lion")
        derived = base.with_options(minimize=False).with_pass("factor:joint")
        assert base.spec.passes[-1] == "factor"
        assert derived.spec.passes[-1] == "factor:joint"
        assert derived.spec.options.minimize is False
        assert base.spec.options.minimize is True

    def test_derived_sessions_share_the_cache(self):
        base = api.load("lion")
        assert base.cache is not None
        assert base.with_pass("factor:joint").cache is base.cache

    def test_substitution_reuses_upstream_stages(self):
        base = api.load("lion")
        base.run()  # warm
        _, report = base.with_pass("factor:joint").run_with_report()
        assert report.cache_hits == (
            "validate", "reduce", "assign", "outputs", "hazards", "fsv",
        )

    def test_with_cache_none_disables(self):
        session = api.load("lion").with_cache(None)
        assert session.cache is None
        _, report = session.run_with_report()
        assert report.cache_hits == ()

    def test_with_cache_path_builds_disk_tier(self, tmp_path):
        session = api.load("lion").with_cache(str(tmp_path / "stages"))
        session.run()
        assert any((tmp_path / "stages").iterdir())

    def test_with_spec_keeps_cache_when_config_unchanged(self):
        base = api.load("lion")
        assert base.with_spec(
            base.spec.substitute("factor:joint")
        ).cache is base.cache
        rebuilt = base.with_spec(base.spec.with_cache(None))
        assert rebuilt.cache is None

    def test_with_table_retargets(self):
        session = api.load("lion").with_options(minimize=False)
        other = session.with_table("traffic")
        assert other.table.name == "traffic"
        assert other.spec == session.spec

    def test_repr_mentions_table_and_passes(self):
        text = repr(api.load("lion").with_pass("hazards:off"))
        assert "lion" in text and "hazards:off" in text

    def test_unprotected_substitution_drops_fsv(self):
        result = api.load("hazard_demo").with_pass("fsv:unprotected").run()
        assert result.fsv.expr.to_string() == "0"
        # the hazard search still ran and reported
        assert result.analysis.hazard_count() > 0

    def test_hazards_off_substitution_skips_the_search(self):
        result = api.load("hazard_demo").with_pass("hazards:off").run()
        assert result.analysis.transitions_examined == 0
        assert result.fsv.expr.to_string() == "0"


class TestOneShots:
    def test_synthesize_accepts_options(self):
        from repro.api import SynthesisOptions

        result = api.synthesize("lion", SynthesisOptions(minimize=False))
        assert result.table1_row()[0] == "lion"

    def test_synthesize_accepts_spec(self):
        spec = api.PipelineSpec().substitute("factor:joint")
        result = api.synthesize("lion", spec=spec)
        assert result.table1_row()[0] == "lion"

    def test_synthesize_shares_an_explicit_cache(self):
        cache = StageCache()
        api.synthesize("lion", cache=cache)
        before = cache.hits
        api.synthesize("lion", cache=cache)
        assert cache.hits > before

    def test_batch_mixed_sources(self, tmp_path):
        path = tmp_path / "machine.kiss2"
        path.write_text(kiss_source("hazard_demo"))
        items = api.batch(["lion", benchmark("traffic"), str(path)])
        assert [item.name for item in items] == [
            "lion", "traffic", "machine",
        ]
        assert all(item.ok for item in items)
        assert all(len(item.events) == 7 for item in items)

    def test_batch_with_spec_substitution(self):
        spec = api.PipelineSpec().substitute("fsv:unprotected")
        items = api.batch(["hazard_demo"], spec=spec)
        assert items[0].result.fsv.expr.to_string() == "0"
