"""Property tests for the SEANCE core on random normal-mode tables."""

from hypothesis import given, settings, HealthCheck

from repro.assign.tracey import assign_states
from repro.core.fsv import fsv_function, next_state_functions
from repro.core.hazard_analysis import find_hazards
from repro.core.spec import SpecifiedMachine
from repro.core.factoring import factor_fsv, factor_next_state
from repro.logic.expr import expr_truth

from ..strategies import normal_mode_tables

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_spec(table):
    assignment = assign_states(table)
    return SpecifiedMachine(table, assignment.encoding)


@given(normal_mode_tables(max_states=4, max_inputs=2))
@SETTINGS
def test_fsv_off_at_stable_points(table):
    spec = build_spec(table)
    analysis = find_hazards(spec)
    fsv = fsv_function(spec, analysis)
    for m in spec.stable_minterms():
        assert fsv.value(m) == 0


@given(normal_mode_tables(max_states=4, max_inputs=2))
@SETTINGS
def test_hazard_points_hold_invariant_variables(table):
    """At every hazard-list point the f̄sv half holds the present value."""
    spec = build_spec(table)
    analysis = find_hazards(spec)
    for n in range(spec.num_state_vars):
        fn = None
        for point in analysis.hazard_list(n):
            if fn is None:
                from repro.core.fsv import next_state_function

                fn = next_state_function(spec, analysis, n)
            _, code = spec.unpack(point)
            assert fn.value(point) == (code >> n & 1)


@given(normal_mode_tables(max_states=4, max_inputs=2))
@SETTINGS
def test_factored_equations_match_functions(table):
    spec = build_spec(table)
    analysis = find_hazards(spec)
    fsv_fn = fsv_function(spec, analysis)
    fsv_eq = factor_fsv(fsv_fn)
    fsv_table = expr_truth(fsv_eq.expr, fsv_fn.names)
    for m in range(fsv_fn.space):
        assert fsv_table[m] == fsv_fn.value(m)
    for n, fn in enumerate(next_state_functions(spec, analysis)):
        eq = factor_next_state(fn, spec.width, name=f"y{n + 1}")
        table_vals = expr_truth(eq.expr, fn.names)
        for m in range(fn.space):
            v = fn.value(m)
            if v is not None:
                assert table_vals[m] == v


@given(normal_mode_tables(max_states=4, max_inputs=2))
@SETTINGS
def test_factored_covers_bridge_fsv_transitions(table):
    """No static-1 hazard on any fsv transition of any Y cover."""
    spec = build_spec(table)
    analysis = find_hazards(spec)
    for n, fn in enumerate(next_state_functions(spec, analysis)):
        eq = factor_next_state(fn, spec.width, name=f"y{n + 1}")
        covered = {m for c in eq.cover for m in c.minterms()}
        pivot = 1 << spec.width
        for m in covered:
            other = m ^ pivot
            if other in covered:
                assert any(
                    c.contains(m) and c.contains(other) for c in eq.cover
                )


@given(normal_mode_tables(max_states=4, max_inputs=2))
@SETTINGS
def test_excitation_agrees_with_flow_table(table):
    """At every specified (state, column) cell the filled excitation is
    exactly the destination's code."""
    spec = build_spec(table)
    for state, column, entry in table.specified_entries():
        minterm = spec.point(state, column)
        expected = spec.encoding.code(entry.next_state)
        assert spec.excitation_code(minterm) == expected
