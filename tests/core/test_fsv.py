"""Unit tests for the fsv / next-state construction (paper Step 6)."""

from repro.assign.encoding import StateEncoding
from repro.bench import benchmark
from repro.core.fsv import (
    doubled_names,
    fsv_function,
    next_state_function,
    state_space_growth,
)
from repro.core.hazard_analysis import find_hazards
from repro.core.spec import SpecifiedMachine


def demo_spec():
    table = benchmark("hazard_demo")
    encoding = StateEncoding(("y1",), {"off": 0, "on": 1})
    return SpecifiedMachine(table, encoding)


class TestFsvFunction:
    def test_on_set_is_fl(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        fsv = fsv_function(spec, analysis)
        assert fsv.on == frozenset(analysis.fl)
        assert fsv.dc == frozenset()  # strict: no don't-cares

    def test_fsv_zero_on_stable_points(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        fsv = fsv_function(spec, analysis)
        for m in spec.stable_minterms():
            assert fsv.value(m) == 0


class TestNextStateFunction:
    def test_doubled_names_append_fsv(self):
        spec = demo_spec()
        assert doubled_names(spec) == ("x1", "x2", "y1", "fsv")

    def test_low_half_complements_hazard_points(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        y1 = next_state_function(spec, analysis, 0)
        hazard_point = next(iter(analysis.fl))
        # specified excitation at the hazard point is 1 (toward 'on');
        # the f̄sv half must hold the present value 0 instead.
        assert spec.excitation(0).value(hazard_point) == 1
        assert y1.value(hazard_point) == 0

    def test_high_half_keeps_specified_excitation(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        y1 = next_state_function(spec, analysis, 0)
        hazard_point = next(iter(analysis.fl))
        high = hazard_point | (1 << spec.width)
        assert y1.value(high) == 1

    def test_non_hazard_points_identical_in_both_halves(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        y1 = next_state_function(spec, analysis, 0)
        base = spec.excitation(0)
        top = 1 << spec.width
        for m in range(spec.space):
            if m in analysis.fl:
                continue
            spec_value = base.value(m)
            if spec_value is None:
                continue
            assert y1.value(m) == spec_value
            assert y1.value(m | top) == spec_value

    def test_pins_applied_to_low_half_only(self):
        from repro.flowtable.builder import FlowTableBuilder

        b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
        b.stable("a", "00", "0").stable("a", "01", "0")
        b.add("a", "11", "a2")
        b.stable("a2", "11", "0")
        b.add("a2", "01", "a").add("a2", "00", "a")
        table = b.build(name="pins", check=False)
        enc = StateEncoding(("y1", "y2"), {"a": 0b00, "a2": 0b01})
        spec = SpecifiedMachine(table, enc)
        analysis = find_hazards(spec)
        y2 = next_state_function(spec, analysis, 1)
        point = spec.pack(table.column_of("10"), 0b00)
        assert y2.value(point) == 0  # pinned in the low half
        assert y2.value(point | (1 << spec.width)) is None  # dc on top


class TestStateSpaceGrowth:
    def test_doubling_reported(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        growth = state_space_growth(spec, analysis)
        assert growth["base_space"] == 8
        assert growth["doubled_space"] == 16
        assert growth["hazard_points"] == 1

    def test_no_growth_without_hazards(self):
        from repro.flowtable.builder import FlowTableBuilder

        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "a")
        table = b.build(name="toggle")
        spec = SpecifiedMachine(
            table, StateEncoding(("y1",), {"a": 0, "b": 1})
        )
        analysis = find_hazards(spec)
        growth = state_space_growth(spec, analysis)
        assert growth["doubled_space"] == growth["base_space"]
