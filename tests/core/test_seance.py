"""Integration tests for the full SEANCE pipeline (paper Figure 3)."""

import pytest

from repro.bench import PAPER_TABLE1, TABLE1_BENCHMARKS, benchmark
from repro.core.seance import Seance, SynthesisOptions, synthesize
from repro.errors import FlowTableError
from repro.logic.expr import expr_truth


class TestPipelineSteps:
    def test_pipeline_steps_all_timed(self):
        result = synthesize(benchmark("lion"))
        for stage in (
            "validate",
            "reduce",
            "assign",
            "outputs",
            "hazards",
            "fsv",
            "factor",
        ):
            assert stage in result.stage_seconds

    def test_invalid_table_rejected(self):
        from repro.flowtable.builder import FlowTableBuilder

        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b").add("b", "1", "a")
        table = b.build(check=False)
        with pytest.raises(FlowTableError):
            synthesize(table)

    def test_validation_can_be_disabled(self):
        from repro.flowtable.builder import FlowTableBuilder

        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1")  # not strongly connected (no way back)
        b.add("b", "0", "a")
        table = b.build(check=False)
        synthesize(table, SynthesisOptions(validate_input=False))

    def test_minimize_can_be_disabled(self):
        table = benchmark("test_example")  # reducible
        with_min = synthesize(table)
        without = synthesize(table, SynthesisOptions(minimize=False))
        assert with_min.table.num_states < without.table.num_states


class TestEquationSemantics:
    """The synthesised covers must equal their source functions on the
    care set — the end-to-end functional-correctness check."""

    @pytest.mark.parametrize("name", ["lion", "traffic", "test_example"])
    def test_next_state_covers_match_functions(self, name):
        from repro.core.fsv import next_state_functions

        result = synthesize(benchmark(name))
        functions = next_state_functions(result.spec, result.analysis)
        for fn, eq in zip(functions, result.next_state):
            table = expr_truth(eq.expr, fn.names)
            for m in range(fn.space):
                spec_value = fn.value(m)
                if spec_value is not None:
                    assert table[m] == spec_value, (
                        f"{name}.{eq.name} differs at minterm {m:b}"
                    )

    @pytest.mark.parametrize("name", ["lion", "traffic", "test_example"])
    def test_fsv_cover_matches_function(self, name):
        from repro.core.fsv import fsv_function

        result = synthesize(benchmark(name))
        fn = fsv_function(result.spec, result.analysis)
        table = expr_truth(result.fsv.expr, fn.names)
        for m in range(fn.space):
            assert table[m] == fn.value(m)

    @pytest.mark.parametrize("name", ["lion", "traffic"])
    def test_output_and_ssd_covers_match(self, name):
        result = synthesize(benchmark(name))
        spec = result.spec
        for k, eq in enumerate(result.outputs):
            fn = spec.output_function(k)
            table = expr_truth(eq.expr, spec.names)
            for m in range(fn.space):
                v = fn.value(m)
                if v is not None:
                    assert table[m] == v
        ssd_fn = spec.ssd_function()
        ssd_table = expr_truth(result.ssd.expr, spec.names)
        for m in range(ssd_fn.space):
            v = ssd_fn.value(m)
            if v is not None:
                assert ssd_table[m] == v

    def test_fsv_zero_at_stable_points(self):
        for name in TABLE1_BENCHMARKS:
            result = synthesize(benchmark(name))
            fsv_table = expr_truth(result.fsv.expr, result.spec.names)
            for m in result.spec.stable_minterms():
                assert fsv_table[m] == 0, f"{name}: fsv high at rest"


class TestTable1Shape:
    """Table 1's qualitative shape must reproduce (see EXPERIMENTS.md for
    the exact measured-vs-paper values)."""

    def test_depth_ranges(self):
        for name in TABLE1_BENCHMARKS:
            report = synthesize(benchmark(name)).depth_report
            assert 2 <= report.fsv_depth <= 4, name
            assert 4 <= report.y_depth <= 6, name

    def test_total_is_fsv_plus_y_plus_one(self):
        for name in TABLE1_BENCHMARKS:
            report = synthesize(benchmark(name)).depth_report
            assert (
                report.total_depth
                == report.fsv_depth + report.y_depth + 1
            )

    def test_lion_matches_paper_exactly(self):
        row = synthesize(benchmark("lion")).table1_row()
        assert row[1:] == PAPER_TABLE1["lion"]

    def test_runtime_is_modest(self):
        # The paper reports ~4 s per example on a 1989 workstation; the
        # reproduction should stay well under that on anything modern.
        for name in TABLE1_BENCHMARKS:
            result = synthesize(benchmark(name))
            assert result.total_seconds < 4.0, name


class TestResultReporting:
    def test_describe_mentions_key_facts(self):
        result = synthesize(benchmark("lion"))
        text = result.describe()
        assert "lion" in text
        assert "fsv=" in text
        assert "equations" in text

    def test_equations_and_covers_aligned(self):
        result = synthesize(benchmark("lion"))
        eqs = result.equations()
        covers = result.covers()
        assert set(eqs) == set(covers)
        assert "fsv" in eqs
        assert "SSD" in eqs
        for var in result.assignment.encoding.variables:
            assert var in eqs

    def test_table1_row_shape(self):
        row = synthesize(benchmark("traffic")).table1_row()
        assert row[0] == "traffic"
        assert len(row) == 4
