"""Unit tests for the Figure-5 hazard factoring."""

import pytest

from repro.core.factoring import factor_fsv, factor_next_state
from repro.logic.cube import Cube
from repro.logic.expr import expr_truth
from repro.logic.function import BooleanFunction


def paper_example_function():
    """The worked example of paper Section 5.3.

    ``Y1 = f̄sv·(y1·x1) + fsv·(y1·x1·x̄2) + fsv·(y2·x̄1·x2)`` over the
    variable order (x1, x2, y1, y2, fsv).
    """
    names = ("x1", "x2", "y1", "y2", "fsv")
    cubes = [
        Cube.from_string("1-1-0"),  # f̄sv · y1 · x1
        Cube.from_string("101-1"),  # fsv · y1 · x1 · x̄2
        Cube.from_string("01-11"),  # fsv · y2 · x̄1 · x2
    ]
    return BooleanFunction.from_cubes(names, cubes), cubes


class TestPaperExample:
    def test_function_preserved(self):
        function, _ = paper_example_function()
        eq = factor_next_state(function, fsv_index=4, name="y1")
        table = expr_truth(eq.expr, function.names)
        for m in range(function.space):
            spec = function.value(m)
            if spec is not None:
                assert table[m] == spec

    def test_depth_is_five(self):
        # The factored L·(f̄sv·u + fsv·v + bridge) shape measures exactly
        # the five levels Table 1 reports for the benchmark machines.
        function, _ = paper_example_function()
        eq = factor_next_state(function, fsv_index=4, name="y1")
        assert eq.expr.depth() == 5

    def test_bridge_term_present(self):
        function, _ = paper_example_function()
        eq = factor_next_state(function, fsv_index=4, name="y1")
        # the consensus of f̄sv·y1x1 and fsv·y1x1x̄2 is y1·x1·x̄2.
        assert Cube.from_string("101--") in eq.cover

    def test_no_complemented_inputs_after_first_level(self):
        function, _ = paper_example_function()
        eq = factor_next_state(function, fsv_index=4, name="y1")
        assert not any(neg for _, neg in eq.expr.literals())


class TestFsvTransitionHazardFreedom:
    def test_cover_has_no_fsv_static_hazard(self):
        function, _ = paper_example_function()
        eq = factor_next_state(function, fsv_index=4, name="y1")
        covered = {m for c in eq.cover for m in c.minterms()}
        for m in covered:
            other = m ^ (1 << 4)  # toggle fsv
            if other in covered:
                assert any(
                    c.contains(m) and c.contains(other) for c in eq.cover
                ), f"fsv transition {m:05b}->{other:05b} unbridged"

    def test_joint_mode_also_preserves_function(self):
        function, _ = paper_example_function()
        eq = factor_next_state(
            function, fsv_index=4, name="y1", reduce_mode="joint"
        )
        table = expr_truth(eq.expr, function.names)
        for m in range(function.space):
            spec = function.value(m)
            if spec is not None:
                assert table[m] == spec

    def test_unknown_mode_rejected(self):
        function, _ = paper_example_function()
        with pytest.raises(ValueError):
            factor_next_state(function, fsv_index=4, name="y1", reduce_mode="x")


class TestFactorFsv:
    def test_all_primes_and_first_level(self):
        # fsv with two hazard minterms sharing a face.
        names = ("x1", "x2", "y1")
        f = BooleanFunction(names, on=frozenset({0b011, 0b111}))
        eq = factor_fsv(f)
        # single prime x1·x2 (y1 free)
        assert eq.cover == (Cube.from_string("11-"),)
        table = expr_truth(eq.expr, names)
        for m in range(8):
            assert table[m] == (1 if m in f.on else 0)
        assert not any(neg for _, neg in eq.expr.literals())

    def test_depth_three_with_complemented_literal(self):
        names = ("x1", "x2", "y1")
        f = BooleanFunction(
            names, on=frozenset({0b011, 0b100})
        )  # x1x2y1' + x1'x2'y1
        eq = factor_fsv(f)
        assert eq.expr.depth() == 3

    def test_empty_fsv_is_constant_zero(self):
        names = ("x1", "y1")
        f = BooleanFunction(names)
        eq = factor_fsv(f)
        assert eq.expr.depth() == 0
        assert expr_truth(eq.expr, names) == [0, 0, 0, 0]
