"""Tests for the synthesis result object (reporting surfaces)."""

import json

from repro.bench import benchmark
from repro.core.seance import synthesize


class TestToDict:
    def test_json_serialisable(self):
        result = synthesize(benchmark("lion"))
        payload = json.dumps(result.to_dict())
        assert "lion" in payload

    def test_structure(self):
        result = synthesize(benchmark("lion"))
        data = result.to_dict()
        assert data["name"] == "lion"
        assert data["flow_table"]["states"] == 4
        assert data["flow_table"]["mic_transitions"] > 0
        assert data["depths"]["total"] == (
            data["depths"]["fsv"] + data["depths"]["y"] + 1
        )
        assert set(data["encoding"]["codes"]) == set(result.table.states)
        assert "fsv" in data["equations"]
        assert "SSD" in data["equations"]

    def test_reduction_classes_recorded(self):
        result = synthesize(benchmark("test_example"))
        data = result.to_dict()
        merged = [
            members
            for members in data["reduction"]["classes"].values()
            if len(members) > 1
        ]
        assert merged  # test_example genuinely reduces

    def test_hazard_minterms_sorted(self):
        result = synthesize(benchmark("lion"))
        minterms = result.to_dict()["hazards"]["fsv_minterms"]
        assert minterms == sorted(minterms)
        assert minterms == sorted(result.analysis.fl)

    def test_stage_seconds_present(self):
        data = synthesize(benchmark("lion")).to_dict()
        assert "factor" in data["stage_seconds"]


class TestCliJson:
    def test_cli_json_flag(self, capsys):
        from repro.cli import main

        assert main(["synth", "lion", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["name"] == "lion"
        assert data["depths"]["fsv"] == 3
