"""Unit tests for repro.core.spec (the encoded-machine excitation model)."""

import pytest

from repro.assign.encoding import StateEncoding
from repro.core.spec import SpecifiedMachine
from repro.errors import SynthesisError
from repro.flowtable.builder import FlowTableBuilder


def toggle_machine():
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b")
    b.stable("b", "1", "1").add("b", "0", "a")
    table = b.build(name="toggle")
    encoding = StateEncoding(("y1",), {"a": 0, "b": 1})
    return SpecifiedMachine(table, encoding)


def two_var_machine():
    """Four states on two variables with a multi-bit coded transition."""
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "d")
    b.stable("d", "1", "1").add("d", "0", "a")
    table = b.build(name="twovar", check=False)
    # a=00, d=11: the a->d transition spans the whole code square.
    encoding = StateEncoding(("y1", "y2"), {"a": 0b00, "d": 0b11})
    return SpecifiedMachine(table, encoding)


class TestGeometry:
    def test_names_and_packing(self):
        spec = toggle_machine()
        assert spec.names == ("x1", "y1")
        assert spec.pack(1, 1) == 0b11
        assert spec.unpack(0b10) == (0, 1)
        assert spec.width == 2
        assert spec.space == 4

    def test_point_and_state_at(self):
        spec = toggle_machine()
        m = spec.point("b", 0)
        assert spec.unpack(m) == (0, 1)
        assert spec.state_at(m) == "b"

    def test_missing_state_rejected(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").stable("a", "1", "1")
        table = b.build(name="single")
        with pytest.raises(SynthesisError):
            SpecifiedMachine(table, StateEncoding(("y1",), {"other": 0}))


class TestExcitation:
    def test_stable_points_excite_themselves(self):
        spec = toggle_machine()
        y = spec.excitation(0)
        # (x=0, a): stay a -> Y=0; (x=1, b): stay b -> Y=1
        assert y.value(spec.point("a", 0)) == 0
        assert y.value(spec.point("b", 1)) == 1

    def test_unstable_points_excite_destination(self):
        spec = toggle_machine()
        y = spec.excitation(0)
        assert y.value(spec.point("a", 1)) == 1  # a -> b
        assert y.value(spec.point("b", 0)) == 0  # b -> a

    def test_transition_cube_filled_with_destination(self):
        spec = two_var_machine()
        # In column x=1 the a(00)->d(11) cube covers codes 01 and 10:
        # both must excite toward 11.
        for code in (0b01, 0b10):
            m = spec.pack(1, code)
            assert spec.excitation_code(m) == 0b11

    def test_unvisited_codes_are_dont_care(self):
        spec = two_var_machine()
        # In column x=0 the d(11)->a(00) cube covers everything, so no dc
        # there; but consider a fresh machine with no transition: column 0
        # of two_var has d->a spanning all codes, so check a 3-var case.
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "a")
        table = b.build(name="toggle3", check=False)
        enc = StateEncoding(("y1", "y2"), {"a": 0b00, "b": 0b01})
        spec3 = SpecifiedMachine(table, enc)
        y1 = spec3.excitation(0)
        # code 10 (unused, outside the a<->b cube on variable y2=1... the
        # a<->b cube spans y1 only with y2=0; codes 10/11 are unvisited).
        assert y1.value(spec3.pack(0, 0b10)) is None
        assert y1.value(spec3.pack(1, 0b11)) is None

    def test_conflicting_encoding_detected(self):
        # two transitions in one column with intersecting cubes.
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "0").add("b", "0", "a")
        b.stable("c", "0", "1").add("c", "1", "d")
        b.stable("d", "1", "1").add("d", "0", "c")
        table = b.build(name="racy", check=False)
        bad = StateEncoding(
            ("y1", "y2"), {"a": 0b00, "b": 0b11, "c": 0b01, "d": 0b10}
        )
        spec = SpecifiedMachine(table, bad)
        with pytest.raises(SynthesisError) as err:
            spec.excitation(0)
        assert "not USTT" in str(err.value)

    def test_excitations_list(self):
        spec = two_var_machine()
        assert len(spec.excitations()) == 2


class TestOutputs:
    def test_stable_only_policy(self):
        spec = toggle_machine()
        z = spec.output_function(0, "stable_only")
        assert z.value(spec.point("a", 0)) == 0
        assert z.value(spec.point("b", 1)) == 1
        # unstable points are dc under the latched policy
        assert z.value(spec.point("a", 1)) is None

    def test_as_specified_policy(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b", "1")
        b.stable("b", "1", "1").add("b", "0", "a", "0")
        table = b.build(name="mealy")
        enc = StateEncoding(("y1",), {"a": 0, "b": 1})
        spec = SpecifiedMachine(table, enc)
        z = spec.output_function(0, "as_specified")
        assert z.value(spec.point("a", 1)) == 1

    def test_unknown_policy(self):
        with pytest.raises(SynthesisError):
            toggle_machine().output_function(0, "bogus")


class TestSsd:
    def test_on_at_stable_points(self):
        spec = toggle_machine()
        ssd = spec.ssd_function()
        for m in spec.stable_minterms():
            assert ssd.value(m) == 1

    def test_off_at_unstable_points(self):
        spec = toggle_machine()
        ssd = spec.ssd_function()
        assert ssd.value(spec.point("a", 1)) == 0
        assert ssd.value(spec.point("b", 0)) == 0

    def test_off_inside_transition_cubes(self):
        spec = two_var_machine()
        ssd = spec.ssd_function()
        # in-flight codes of the a->d cube must read unstable.
        for code in (0b01, 0b10):
            assert ssd.value(spec.pack(1, code)) == 0

    def test_strict_policy_fills_off(self):
        spec = toggle_machine()
        strict = spec.ssd_function("strict")
        assert strict.dc == frozenset()

    def test_unknown_policy(self):
        with pytest.raises(SynthesisError):
            toggle_machine().ssd_function("bogus")
