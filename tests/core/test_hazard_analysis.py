"""Unit tests for the Figure-4 hazard search."""

from repro.assign.encoding import StateEncoding
from repro.bench import benchmark
from repro.core.hazard_analysis import find_hazards
from repro.core.spec import SpecifiedMachine
from repro.flowtable.builder import FlowTableBuilder


def demo_spec():
    """hazard_demo with the canonical off=0 / on=1 encoding.

    The machine rests in 'off' under 00, 01 and 10 and in 'on' under 11
    and 01.  The transition off@01 -> off@10 (and off@10 -> off@01) is a
    two-bit input change whose intermediate column 11 excites 'on': a
    guaranteed function M-hazard on the single state variable.
    """
    table = benchmark("hazard_demo")
    encoding = StateEncoding(("y1",), {"off": 0, "on": 1})
    return SpecifiedMachine(table, encoding)


class TestDemoMachine:
    def test_single_hazard_point_found(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        hazard_point = spec.pack(spec.table.column_of("11"), 0)
        assert analysis.fl == {hazard_point}
        assert analysis.hazard_list(0) == frozenset({hazard_point})

    def test_counters(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        assert analysis.transitions_examined > 0
        assert analysis.intermediates_examined >= (
            2 * analysis.transitions_examined
        )
        assert analysis.hazard_count() == 1
        assert analysis.has_hazards

    def test_describe_names_the_state(self):
        spec = demo_spec()
        analysis = find_hazards(spec)
        text = analysis.describe(spec)
        assert "off" in text
        assert "11" in text


class TestInvariantLogic:
    def test_changing_variables_never_flagged(self):
        # Every multi-input-change transition here flips the only state
        # variable (a<->b), so premature excitation at an intermediate is
        # benign and no hazard may be reported.
        b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
        b.stable("a", "00", "0").add("a", "11", "b")
        b.stable("b", "11", "1").add("b", "00", "a")
        table = b.build(name="twostates")
        enc = StateEncoding(("y1",), {"a": 0, "b": 1})
        analysis = find_hazards(SpecifiedMachine(table, enc))
        assert analysis.transitions_examined == 2
        assert not analysis.has_hazards

    def test_holding_intermediates_are_benign(self):
        # A state stable under every column holds itself at every
        # intermediate of its multi-input changes: no hazard possible.
        b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
        for pattern in ("00", "01", "10", "11"):
            b.stable("c", pattern, "0")
        table = b.build(name="holds")
        enc = StateEncoding(("y1",), {"c": 0})
        analysis = find_hazards(SpecifiedMachine(table, enc))
        assert analysis.transitions_examined > 0
        assert not analysis.has_hazards

    def test_unspecified_intermediate_becomes_pin(self):
        b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
        b.stable("a", "00", "0").stable("a", "01", "0")
        b.add("a", "11", "a2")  # MIC with unspecified intermediate 10
        b.stable("a2", "11", "0")
        b.add("a2", "01", "a")
        b.add("a2", "00", "a")
        table = b.build(name="pins", check=False)
        enc = StateEncoding(("y1", "y2"), {"a": 0b00, "a2": 0b01})
        spec = SpecifiedMachine(table, enc)
        analysis = find_hazards(spec)
        # transition a@00->11 (dest a2): y2 (bit 1) is invariant and the
        # intermediate (10, code a) is unspecified -> pinned to 0.
        point = spec.pack(table.column_of("10"), 0b00)
        assert analysis.pins.get((point, 1)) == 0
        assert point not in analysis.fl


class TestBenchmarks:
    def test_lion_has_guaranteed_hazards(self):
        from repro.core.seance import synthesize

        result = synthesize(benchmark("lion"))
        # mid_in resting under two beam patterns with the 00 column
        # exciting 'in' guarantees hazard points regardless of encoding.
        assert result.analysis.has_hazards
        assert len(result.analysis.fl) >= 2

    def test_all_table1_machines_have_hazards(self):
        from repro.bench import TABLE1_BENCHMARKS
        from repro.core.seance import synthesize

        for name in TABLE1_BENCHMARKS:
            result = synthesize(benchmark(name))
            assert result.analysis.has_hazards, f"{name} lost its hazards"

    def test_hazard_points_are_unstable_entries(self):
        from repro.core.seance import synthesize

        for name in ("lion", "traffic", "lion9"):
            result = synthesize(benchmark(name))
            spec = result.spec
            for minterm in result.analysis.fl:
                column, code = spec.unpack(minterm)
                state = spec.encoding.state_of(code)
                assert state is not None
                assert not spec.table.is_stable(state, column)
