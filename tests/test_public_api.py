"""The documented public API surface: every promise in README/docstrings."""

import repro
import repro.api

#: The pinned `repro.api` surface.  A change here is an API change:
#: update the snapshot deliberately, never incidentally.
API_ALL_SNAPSHOT = [
    "BatchItem",
    "BatchRunner",
    "CacheSpec",
    "CampaignCell",
    "CampaignResult",
    "DEFAULT_PIPELINE",
    "DELAY_MODELS",
    "FlowTable",
    "PassEvent",
    "PassManager",
    "PipelineReport",
    "PipelineSpec",
    "ResultStore",
    "Session",
    "ShardedBatch",
    "ShardedCampaign",
    "StageCache",
    "SynthesisOptions",
    "SynthesisResult",
    "ValidationCampaign",
    "batch",
    "create_pass",
    "load",
    "load_table",
    "register_pass",
    "registered_passes",
    "substitute",
    "synthesize",
]

#: The pinned pass registry (name -> stage), the vocabulary PipelineSpec
#: files are written in.  Removing or renaming a key breaks saved specs.
REGISTRY_SNAPSHOT = {
    "validate": "validate",
    "validate:off": "validate",
    "reduce": "reduce",
    "reduce:off": "reduce",
    "assign": "assign",
    "outputs": "outputs",
    "outputs:all-primes": "outputs",
    "hazards": "hazards",
    "hazards:off": "hazards",
    "fsv": "fsv",
    "fsv:unprotected": "fsv",
    "factor": "factor",
    "factor:split": "factor",
    "factor:joint": "factor",
    "verify": "verify",
}


class TestApiSnapshot:
    """CI tripwire: the typed front door and the registry vocabulary."""

    def test_api_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == sorted(API_ALL_SNAPSHOT)

    def test_api_names_resolvable(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), name

    def test_registry_matches_snapshot(self):
        from repro.pipeline.registry import base_name, registered_passes

        observed = {key: base_name(key) for key in registered_passes()}
        assert observed == REGISTRY_SNAPSHOT

    def test_default_pipeline_snapshot(self):
        assert repro.api.DEFAULT_PIPELINE == (
            "validate", "reduce", "assign", "outputs", "hazards", "fsv",
            "factor",
        )

    def test_front_door_session_idiom(self):
        """The README's API block, executed literally."""
        from repro import api

        result = (
            api.load("lion")
            .with_options(minimize=False)
            .with_pass("factor:joint")
            .run()
        )
        assert result.table1_row()[0] == "lion"
        spec = api.PipelineSpec().substitute("factor:joint")
        assert api.PipelineSpec.from_dict(spec.to_dict()) == spec


class TestPackageSurface:
    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_docstring_quickstart(self):
        """The doctest in the package docstring, executed literally."""
        from repro import benchmark, synthesize

        result = synthesize(benchmark("lion"))
        assert result.table1_row() == ("lion", 3, 5, 9)

    def test_readme_quickstart(self):
        """The README's quickstart block, executed end to end."""
        from repro import benchmark, build_fantom, synthesize
        from repro.sim import FantomHarness, loop_safe_random

        table = benchmark("lion")
        result = synthesize(table)
        assert "lion" in result.describe()
        machine = build_fantom(result)
        harness = FantomHarness(machine, delays=loop_safe_random(seed=1))
        state, outputs = harness.apply(table.column_of("11"))
        assert state == "mid_in"
        assert len(outputs) == 1

    def test_subpackage_alls_resolvable(self):
        import repro.assign
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.flowtable
        import repro.hazards
        import repro.logic
        import repro.minimize
        import repro.netlist
        import repro.sim
        import repro.util

        for module in (
            repro.assign,
            repro.baselines,
            repro.bench,
            repro.core,
            repro.flowtable,
            repro.hazards,
            repro.logic,
            repro.minimize,
            repro.netlist,
            repro.sim,
            repro.util,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
