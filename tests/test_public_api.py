"""The documented public API surface: every promise in README/docstrings."""

import repro


class TestPackageSurface:
    def test_all_names_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_docstring_quickstart(self):
        """The doctest in the package docstring, executed literally."""
        from repro import benchmark, synthesize

        result = synthesize(benchmark("lion"))
        assert result.table1_row() == ("lion", 3, 5, 9)

    def test_readme_quickstart(self):
        """The README's quickstart block, executed end to end."""
        from repro import benchmark, build_fantom, synthesize
        from repro.sim import FantomHarness, loop_safe_random

        table = benchmark("lion")
        result = synthesize(table)
        assert "lion" in result.describe()
        machine = build_fantom(result)
        harness = FantomHarness(machine, delays=loop_safe_random(seed=1))
        state, outputs = harness.apply(table.column_of("11"))
        assert state == "mid_in"
        assert len(outputs) == 1

    def test_subpackage_alls_resolvable(self):
        import repro.assign
        import repro.baselines
        import repro.bench
        import repro.core
        import repro.flowtable
        import repro.hazards
        import repro.logic
        import repro.minimize
        import repro.netlist
        import repro.sim
        import repro.util

        for module in (
            repro.assign,
            repro.baselines,
            repro.bench,
            repro.core,
            repro.flowtable,
            repro.hazards,
            repro.logic,
            repro.minimize,
            repro.netlist,
            repro.sim,
            repro.util,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
