"""Networked store backends against their in-process fake servers.

Every backend speaks to a real socket: the object-store backend over
HTTP to :class:`~repro.service.fakes.FakeObjectStoreServer`, the cache
backend over its line protocol to
:class:`~repro.service.fakes.FakeCacheServer`.  The contract under
test is the :class:`~repro.store.backend.StoreBackend` protocol — the
same one DirectoryBackend satisfies — plus the service-grade parts:
conditional put (the queue's lease primitive), TTL expiry, LRU
eviction, and fail-safe degradation when the server drops requests.

The protocol suite runs **four ways**: each backend clean, and each
backend under a seeded chaos schedule injecting *transparent* faults
(drop / reset / 500 / delay — the request never processed, or merely
slowed) with a patient retry policy.  Under those faults every
assertion must hold byte-identically to the clean run: that is the
degrade-to-recompute-never-wrong-bytes invariant at the protocol
level.  ``truncate`` (request *processed*, response torn) and
``stale`` are deliberately excluded here — the first makes
delete-returns-False semantics unknowable, the second breaks
read-your-writes by design — and get targeted coverage in
``test_chaos.py`` instead.
"""

import time
import zlib

import pytest

from repro.bench import benchmark
from repro.pipeline.spec import PipelineSpec
from repro.service import FakeCacheServer, FakeObjectStoreServer
from repro.service.chaos import ChaosSchedule
from repro.service.resilience import RetryPolicy
from repro.store import ResultStore
from repro.store.backend import (
    DirectoryBackend,
    MemoryBackend,
    resolve_backend,
)
from repro.store.net import CacheBackend, ObjectStoreBackend
from tests.strategies import cached_synthesize

#: Fault modes that never process the request (retries are transparent).
TRANSPARENT_MODES = ("drop", "delay", "error", "reset")

#: Rides out any one-test fault streak without tripping the breaker.
PATIENT = RetryPolicy(
    retries=8, timeout=5.0, backoff_base=0.01, backoff_max=0.05,
    breaker_threshold=1000,
)


@pytest.fixture(scope="module")
def object_server():
    with FakeObjectStoreServer() as server:
        yield server


@pytest.fixture(scope="module")
def cache_server():
    with FakeCacheServer() as server:
        yield server


@pytest.fixture
def object_backend(object_server):
    backend = ObjectStoreBackend(object_server.url)
    yield backend
    for name in backend.names():
        backend.delete(name)


@pytest.fixture
def cache_backend(cache_server):
    backend = CacheBackend(cache_server.url)
    yield backend
    for name in backend.names():
        backend.delete(name)


@pytest.fixture(
    params=["object", "cache", "object-chaos", "cache-chaos"]
)
def backend(request, object_server, cache_server):
    kind, _, chaos = request.param.partition("-")
    server = object_server if kind == "object" else cache_server
    cls = ObjectStoreBackend if kind == "object" else CacheBackend
    if chaos:
        # One stable seed per test: reruns see the same fault plan.
        seed = zlib.crc32(request.node.name.encode())
        server.set_chaos(
            ChaosSchedule(
                seed=seed, rate=0.25, modes=TRANSPARENT_MODES
            )
        )
        backend = cls(server.url, policy=PATIENT)
    else:
        backend = cls(server.url)
    yield backend
    server.set_chaos(None)
    for name in backend.names():
        backend.delete(name)


# ----------------------------------------------------------------------
# The StoreBackend protocol, over a real socket
# ----------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self, backend):
        backend.write("kind/a.json", b"alpha")
        assert backend.read("kind/a.json") == b"alpha"

    def test_read_absent_is_none(self, backend):
        assert backend.read("kind/nothing.json") is None

    def test_overwrite(self, backend):
        backend.write("k/x", b"one")
        backend.write("k/x", b"two")
        assert backend.read("k/x") == b"two"

    def test_binary_payloads_survive(self, backend):
        blob = bytes(range(256)) * 5
        backend.write("bin/blob", blob)
        assert backend.read("bin/blob") == blob

    def test_delete(self, backend):
        backend.write("k/x", b"data")
        assert backend.delete("k/x") is True
        assert backend.read("k/x") is None
        assert backend.delete("k/x") is False

    def test_stat(self, backend):
        before = time.time() - 1
        backend.write("k/x", b"12345")
        stat = backend.stat("k/x")
        assert stat is not None
        assert stat.size == 5
        assert stat.mtime >= before
        assert backend.stat("k/absent") is None

    def test_names_prefix(self, backend):
        backend.write("synthesis/a.json", b"1")
        backend.write("synthesis/b.json", b"2")
        backend.write("validation/c.json", b"3")
        assert sorted(backend.names("synthesis/")) == [
            "synthesis/a.json",
            "synthesis/b.json",
        ]
        assert len(list(backend.names())) == 3

    def test_write_if_absent_is_atomic_claim(self, backend):
        assert backend.write_if_absent("lease/x", b"mine") is True
        assert backend.write_if_absent("lease/x", b"theirs") is False
        assert backend.read("lease/x") == b"mine"

    def test_write_if_absent_after_delete(self, backend):
        backend.write_if_absent("lease/x", b"first")
        backend.delete("lease/x")
        assert backend.write_if_absent("lease/x", b"second") is True
        assert backend.read("lease/x") == b"second"


# ----------------------------------------------------------------------
# Fail-safety: dropped requests degrade, never corrupt
# ----------------------------------------------------------------------
class TestFaults:
    def test_object_store_read_survives_dropped_request(
        self, object_server, object_backend
    ):
        object_backend.write("k/x", b"payload")
        object_server.fail_next(1)
        # The dropped request reads as a miss (absence semantics) or
        # succeeds after reconnect; either way the next read is whole.
        object_backend.read("k/x")
        assert object_backend.read("k/x") == b"payload"

    def test_cache_read_survives_dropped_request(
        self, cache_server, cache_backend
    ):
        cache_backend.write("k/x", b"payload")
        cache_server.fail_next(1)
        cache_backend.read("k/x")
        assert cache_backend.read("k/x") == b"payload"

    def test_unreachable_server_reads_as_absent(self):
        with FakeObjectStoreServer() as server:
            url = server.url
        backend = ObjectStoreBackend(url, timeout=0.5)
        assert backend.read("k/x") is None
        assert backend.stat("k/x") is None
        assert list(backend.names()) == []


# ----------------------------------------------------------------------
# Cache-grade semantics: TTL and LRU eviction
# ----------------------------------------------------------------------
class TestCacheSemantics:
    def test_ttl_expires_entries(self, cache_server):
        backend = CacheBackend(f"{cache_server.url}?ttl=1")
        backend.write("ttl/x", b"ephemeral")
        assert backend.read("ttl/x") == b"ephemeral"
        time.sleep(1.1)
        assert backend.read("ttl/x") is None

    def test_purge_reports_expired_entries(self, cache_server):
        backend = CacheBackend(f"{cache_server.url}?ttl=1")
        backend.write("ttl/a", b"1")
        backend.write("ttl/b", b"2")
        time.sleep(1.1)
        assert backend.purge() >= 2

    def test_lru_eviction_bounds_the_table(self):
        with FakeCacheServer(max_entries=2) as server:
            backend = CacheBackend(server.url)
            backend.write("k/a", b"1")
            backend.write("k/b", b"2")
            backend.write("k/c", b"3")
            assert backend.read("k/a") is None  # oldest evicted
            assert backend.read("k/c") == b"3"
            assert server.blobs.evictions == 1


# ----------------------------------------------------------------------
# resolve_backend dispatch and the store on top
# ----------------------------------------------------------------------
class TestResolve:
    def test_http_url(self, object_server):
        assert isinstance(
            resolve_backend(object_server.url), ObjectStoreBackend
        )

    def test_cache_url(self, cache_server):
        assert isinstance(
            resolve_backend(cache_server.url), CacheBackend
        )

    def test_path(self, tmp_path):
        assert isinstance(
            resolve_backend(tmp_path / "d"), DirectoryBackend
        )

    def test_backend_passthrough(self):
        backend = MemoryBackend()
        assert resolve_backend(backend) is backend

    def test_result_store_over_the_wire(self, object_server):
        """The full verified-envelope round trip through a socket."""
        table = benchmark("lion")
        spec = PipelineSpec()
        result = cached_synthesize(table)
        writer = ResultStore(object_server.url)
        writer.put_synthesis(table, spec, result)
        reader = ResultStore(object_server.url)  # separate connection
        stored = reader.get_synthesis(table, spec)
        assert stored is not None and stored.ok
        assert stored.result.to_dict() == result.to_dict()
