"""The durable work-stealing queue: leases, heartbeats, LPT ordering.

The queue is blobs in the store, so every property here holds across
processes and machines for free; MemoryBackend keeps the tests fast.
The load-bearing invariants: a lease is an atomic conditional put, a
lapsed lease is stealable, publishing is idempotent, and claim order
follows archived telemetry weights (longest processing time first).
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.bench import benchmark
from repro.pipeline.spec import PipelineSpec
from repro.service import QueueWorker, WorkQueue
from repro.store import ResultStore
from repro.store.backend import MemoryBackend
from repro.store.keys import table_digest
from tests.strategies import cached_synthesize

TABLES = ("lion", "traffic", "hazard_demo")


@pytest.fixture
def store():
    return ResultStore(MemoryBackend())


@pytest.fixture
def queue(store):
    return WorkQueue(store, "q", lease_ttl=30.0)


def publish(queue, names=TABLES):
    return queue.publish_batch(
        [benchmark(name) for name in names], spec=PipelineSpec()
    )


class TestPublish:
    def test_one_unit_per_table(self, queue):
        assert publish(queue) == len(TABLES)
        assert queue.stats().units == len(TABLES)

    def test_republish_is_idempotent(self, queue):
        publish(queue)
        assert publish(queue) == 0
        assert queue.stats().units == len(TABLES)

    def test_already_stored_units_publish_as_done(self, store, queue):
        table = benchmark("lion")
        spec = PipelineSpec()
        store.put_synthesis(table, spec, cached_synthesize(table))
        queue.publish_batch([table], spec=spec)
        stats = queue.stats()
        # No unit scaffolding is written for warm work — just the done
        # marker, so the queue reads as drained immediately.
        assert stats.units == 0 and stats.done == 1
        assert queue.pending() == []

    def test_units_are_self_describing(self, queue):
        publish(queue, ("lion",))
        [(digest, unit)] = queue.pending()
        assert unit["digest"] == digest
        assert unit["kind"] == "synthesis"
        assert unit["label"] == "lion"
        assert set(unit["key"]) >= {"kind", "table", "spec", "workload"}
        assert "table" in unit and "spec" in unit


class TestLeases:
    def test_claim_is_exclusive(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        assert queue.claim(digest, "alice") is True
        assert queue.claim(digest, "bob") is False

    def test_release_reopens_the_unit(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        queue.claim(digest, "alice")
        queue.release(digest, "alice")
        assert queue.claim(digest, "bob") is True

    def test_heartbeat_extends_only_the_owner(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        queue.claim(digest, "alice")
        assert queue.heartbeat(digest, "alice") is True
        assert queue.heartbeat(digest, "bob") is False

    def test_lapsed_lease_is_stealable(self, queue):
        """A worker that stops heartbeating is presumed crashed; its
        unit must become claimable by anyone after the TTL."""
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        assert queue.claim(digest, "doomed", ttl=0.05) is True
        assert queue.claim(digest, "thief") is False  # still live
        time.sleep(0.1)
        assert queue.stats().expired == 1
        assert queue.claim(digest, "thief") is True  # stolen
        assert queue.heartbeat(digest, "doomed") is False

    def test_done_units_leave_pending(self, queue):
        publish(queue)
        digests = [digest for digest, _ in queue.pending()]
        queue.mark_done(digests[0], "alice")
        assert queue.is_done(digests[0])
        assert digests[0] not in [d for d, _ in queue.pending()]
        assert queue.stats().done == 1

    def test_steal_bumps_the_steal_counter(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        queue.claim(digest, "doomed", ttl=0.05)
        time.sleep(0.1)
        queue.claim(digest, "thief")
        lease = queue.read_lease(digest)
        assert lease["worker"] == "thief"
        assert lease["steals"] == 1

    def test_heartbeat_counts_beats(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        queue.claim(digest, "alice")
        queue.heartbeat(digest, "alice")
        queue.heartbeat(digest, "alice")
        assert queue.read_lease(digest)["beats"] == 2

    def test_lease_report_rows(self, queue):
        publish(queue, ("lion", "traffic"))
        digests = [digest for digest, _ in queue.pending()]
        queue.claim(digests[0], "alice")
        rows = queue.lease_report()
        assert len(rows) == 1
        [row] = rows
        assert row["digest"] == digests[0]
        assert row["worker"] == "alice"
        assert row["age"] >= 0.0
        assert row["expires_in"] > 0.0
        assert row["beats"] == 0
        assert row["steals"] == 0
        assert row["lapsed"] is False

    def test_lease_report_flags_lapsed_rows(self, queue):
        publish(queue, ("lion",))
        [(digest, _)] = queue.pending()
        queue.claim(digest, "doomed", ttl=0.05)
        time.sleep(0.1)
        [row] = queue.lease_report()
        assert row["lapsed"] is True
        assert row["expires_in"] <= 0.0


def _claim_and_hang(store_path, digest):
    """Child-process body: take the lease, then never heartbeat again
    (the parent SIGKILLs us mid-hold)."""
    queue = WorkQueue(ResultStore(store_path), "q", lease_ttl=1.0)
    queue.claim(digest, f"victim-{os.getpid()}")
    time.sleep(600)


class TestSigkillSteal:
    def test_sigkilled_holder_is_stolen_and_unit_completes(
        self, tmp_path
    ):
        """Regression for the crash-recovery acceptance property: a
        process SIGKILLed while holding a lease (no release, no
        heartbeat, no atexit) loses the unit to a surviving worker
        after the TTL, and the unit still completes exactly once."""
        store_path = tmp_path / "store"
        queue = WorkQueue(
            ResultStore(store_path), "q", lease_ttl=1.0
        )
        queue.publish_batch([benchmark("lion")], spec=PipelineSpec())
        [(digest, _)] = queue.pending()

        victim = multiprocessing.get_context("fork").Process(
            target=_claim_and_hang, args=(store_path, digest)
        )
        victim.start()
        try:
            deadline = time.monotonic() + 10
            while queue.read_lease(digest) is None:
                assert time.monotonic() < deadline, "victim never claimed"
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
        finally:
            victim.join(timeout=10)

        # The orphaned lease still names the corpse.
        assert queue.read_lease(digest)["worker"].startswith("victim-")
        stats = QueueWorker(
            store_path, "q", worker_id="survivor",
            lease_ttl=1.0, poll=0.05,
        ).run()
        assert stats["units"] == 1
        assert stats["synthesized"] == 1
        assert stats["stolen"] == 1
        assert queue.is_done(digest)
        assert queue.stats().remaining == 0


class TestWeights:
    def test_pending_is_lpt_ordered_by_telemetry(self, queue):
        """Archived per-table synthesis seconds decide claim order:
        heaviest first, so stragglers start earliest."""
        seconds = {"lion": 0.1, "traffic": 9.0, "hazard_demo": 1.0}
        for name, weight in seconds.items():
            queue.record_telemetry(
                table_digest(benchmark(name)), synthesis_seconds=weight
            )
        publish(queue)
        ordered = [unit["label"] for _, unit in queue.pending()]
        assert ordered == ["traffic", "hazard_demo", "lion"]

    def test_unknown_telemetry_defaults_to_unit_weight(self, queue):
        assert queue.telemetry_weight(
            table_digest(benchmark("lion")), "synthesis"
        ) == pytest.approx(1.0)

    def test_telemetry_round_trip(self, queue):
        digest = table_digest(benchmark("lion"))
        queue.record_telemetry(
            digest,
            synthesis_seconds=2.5,
            passes={"reduce": 1.5, "assign": 1.0},
        )
        assert queue.telemetry_weight(digest, "synthesis") == (
            pytest.approx(2.5)
        )
