"""The ``seance serve`` front door: three-tier dedup over HTTP.

Satellite pin (concurrent-client dedup): N clients submitting the same
table at once cost exactly one synthesis — asserted through the
:class:`~repro.pipeline.manager.PassEvent` telemetry each response
carries: exactly one response paid passes, the rest arrive deduped or
warm with ``passes == 0``.
"""

import threading

import pytest

from repro.bench import benchmark
from repro.errors import StoreError
from repro.pipeline.batch import BatchRunner
from repro.pipeline.spec import PipelineSpec
from repro.service import (
    FakeObjectStoreServer,
    QueueWorker,
    ServiceClient,
    SynthesisServer,
)
from repro.store import (
    ResultStore,
    canonical_batch_payload,
    canonical_json,
)

TABLES = ("lion", "traffic", "hazard_demo")


def submit_concurrently(client, table, count, spec=None):
    """``count`` racing submissions of one table; outcomes in order."""
    outcomes = [None] * count
    barrier = threading.Barrier(count)

    def hit(slot):
        barrier.wait()
        outcomes[slot] = client.submit(table, spec=spec)

    threads = [
        threading.Thread(target=hit, args=(slot,))
        for slot in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


class TestLocalMode:
    def test_concurrent_identical_submissions_cost_one_synthesis(
        self, tmp_path
    ):
        with SynthesisServer(store=tmp_path / "store", jobs=4) as server:
            client = ServiceClient(server.url)
            outcomes = submit_concurrently(
                client, benchmark("lion"), count=6
            )
            assert all(o["ok"] and o["result"] for o in outcomes)
            # PassEvent telemetry: exactly one submission paid passes.
            paying = [o for o in outcomes if o["passes"] > 0]
            assert len(paying) == 1
            assert paying[0]["events"]  # the PassEvent stream itself
            assert all(
                o["deduped"] or o["store_hit"]
                for o in outcomes
                if o is not paying[0]
            )
            stats = client.stats()["stats"]
            assert stats["synthesized"] == 1
            assert stats["deduped"] + stats["store_hits"] == 5

    def test_all_responses_carry_identical_results(self, tmp_path):
        with SynthesisServer(store=tmp_path / "store", jobs=4) as server:
            client = ServiceClient(server.url)
            outcomes = submit_concurrently(
                client, benchmark("traffic"), count=4
            )
            results = {
                canonical_json(o["result"]) for o in outcomes
            }
            assert len(results) == 1

    def test_warm_store_short_circuits_to_zero_passes(self, tmp_path):
        store_path = tmp_path / "store"
        with SynthesisServer(store=store_path) as server:
            ServiceClient(server.url).submit(benchmark("lion"))
        # A *new* server over the same store: still warm.
        with SynthesisServer(store=store_path) as server:
            outcome = ServiceClient(server.url).submit(benchmark("lion"))
            assert outcome["store_hit"] is True
            assert outcome["source"] == "store"
            assert outcome["passes"] == 0 and outcome["events"] == []

    def test_response_matches_batch_canonical_stream(self, tmp_path):
        tables = [benchmark(name) for name in TABLES]
        spec = PipelineSpec()
        with SynthesisServer(store=tmp_path / "store") as server:
            client = ServiceClient(server.url)
            outcomes = client.submit_tables(tables, spec=spec)
        direct = BatchRunner(spec=spec, jobs=1).run(tables)
        assert canonical_json(
            ServiceClient.canonical_items(outcomes)
        ) == canonical_json(canonical_batch_payload(direct))


class TestQueueMode:
    def test_misses_fan_to_workers_and_merge_byte_identical(self):
        tables = [benchmark(name) for name in TABLES]
        spec = PipelineSpec()
        with FakeObjectStoreServer() as fake:
            with SynthesisServer(
                store=fake.url, queue_id="svc", poll=0.05
            ) as server:
                worker = threading.Thread(
                    target=QueueWorker(
                        fake.url, "svc", worker_id="w1", poll=0.05
                    ).run,
                    kwargs={"drain": False, "timeout": 30},
                )
                worker.start()
                client = ServiceClient(server.url)
                outcomes = client.submit_tables(tables, spec=spec)
                worker.join()
            assert all(o["source"] == "queue" for o in outcomes)
            direct = BatchRunner(spec=spec, jobs=1).run(tables)
            assert canonical_json(
                ServiceClient.canonical_items(outcomes)
            ) == canonical_json(canonical_batch_payload(direct))

    def test_submission_times_out_without_workers(self):
        with FakeObjectStoreServer() as fake:
            with SynthesisServer(
                store=fake.url,
                queue_id="empty",
                poll=0.05,
                submit_timeout=0.3,
            ) as server:
                outcome = ServiceClient(server.url).submit(
                    benchmark("lion")
                )
                assert outcome["ok"] is False
                assert "timed out" in outcome["error"]


class TestWire:
    def test_healthz(self, tmp_path):
        with SynthesisServer(store=tmp_path / "s") as server:
            assert ServiceClient(server.url).health() is True

    def test_health_of_a_dead_server_is_false(self, tmp_path):
        with SynthesisServer(store=tmp_path / "s") as server:
            url = server.url
        assert ServiceClient(url, timeout=0.5).health() is False

    def test_stats_includes_queue_occupancy(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", queue_id="svc"
        ) as server:
            payload = ServiceClient(server.url).stats()
            assert payload["queue"] == {
                "units": 0, "done": 0, "leased": 0, "expired": 0,
            }

    def test_bad_submission_is_a_400(self, tmp_path):
        with SynthesisServer(store=tmp_path / "s") as server:
            client = ServiceClient(server.url)
            with pytest.raises(StoreError) as err:
                client._request("POST", "/submit", {"table": {"bad": 1}})
            assert "400" in str(err.value)

    def test_unknown_route_is_a_404(self, tmp_path):
        with SynthesisServer(store=tmp_path / "s") as server:
            client = ServiceClient(server.url)
            with pytest.raises(StoreError) as err:
                client._request("GET", "/nope")
            assert "404" in str(err.value)

    def test_server_requires_a_store(self):
        with pytest.raises(StoreError):
            SynthesisServer(store=None)

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(StoreError):
            ServiceClient("cache://localhost:1")
