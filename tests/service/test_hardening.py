"""The hardened front door and fleet-level dedup.

Three gates (token auth, per-client rate limit, bounded in-flight) and
the store-leased intent markers that let two ``seance serve`` processes
share one store without duplicating synthesis.  The acceptance pins:
rejected clients consume no queue or synthesis work, and two servers
racing on one submission pay for exactly one synthesis (PassEvent
telemetry: exactly one response carries passes > 0).
"""

import threading
import time

import pytest

from repro.bench import benchmark
from repro.errors import StoreError
from repro.pipeline.spec import PipelineSpec
from repro.service import (
    LeaseTable,
    ServiceClient,
    SynthesisServer,
    TokenBucket,
)
from repro.store import open_store
from repro.store.keys import synthesis_key


class TestTokenBucket:
    def test_burst_admits_then_throttles(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.acquire("a") == 0.0
        assert bucket.acquire("a") == 0.0
        wait = bucket.acquire("a")
        assert wait > 0.0

    def test_clients_have_independent_buckets(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.acquire("a") == 0.0
        assert bucket.acquire("a") > 0.0
        assert bucket.acquire("b") == 0.0

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=50.0, burst=1.0)
        assert bucket.acquire("a") == 0.0
        assert bucket.acquire("a") > 0.0
        time.sleep(0.05)
        assert bucket.acquire("a") == 0.0


class TestAuth:
    def test_missing_token_rejected_without_work(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", token="hunter2"
        ) as server:
            with pytest.raises(StoreError, match="401"):
                ServiceClient(server.url).submit(benchmark("lion"))
            assert server.stats.unauthorized == 1
            # Rejected before parsing: no submission, no synthesis.
            assert server.stats.submissions == 0
            assert server.stats.synthesized == 0

    def test_wrong_token_rejected(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", token="hunter2"
        ) as server:
            client = ServiceClient(server.url, token="password1")
            with pytest.raises(StoreError, match="401"):
                client.submit(benchmark("lion"))
            assert server.stats.unauthorized == 1

    def test_right_token_admitted(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", token="hunter2"
        ) as server:
            client = ServiceClient(server.url, token="hunter2")
            outcome = client.submit(benchmark("lion"))
            assert outcome["ok"] is True
            assert server.stats.unauthorized == 0

    def test_health_and_stats_stay_open(self, tmp_path):
        """Probes don't need credentials — they consume no work."""
        with SynthesisServer(
            store=tmp_path / "s", token="hunter2"
        ) as server:
            client = ServiceClient(server.url)
            assert client.health() is True
            assert client.stats()["ok"] is True


class TestRateLimit:
    def test_over_quota_throttled_then_recovers(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", rate=20.0, burst=1.0
        ) as server:
            client = ServiceClient(
                server.url, timeout=30.0, client_id="c1"
            )
            # Burst of 1: the second submission is throttled, the
            # client honours retry_after and eventually lands.
            assert client.submit(benchmark("lion"))["ok"] is True
            assert client.submit(benchmark("traffic"))["ok"] is True
            assert server.stats.throttled >= 1

    def test_over_quota_with_no_budget_raises(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", rate=0.01, burst=1.0
        ) as server:
            client = ServiceClient(
                server.url, timeout=0.2, client_id="c1"
            )
            assert client.submit(benchmark("lion"))["ok"] is True
            with pytest.raises(StoreError, match="429"):
                client.submit(benchmark("traffic"))
            assert server.stats.throttled >= 1
            # The throttled submission consumed no synthesis.
            assert server.stats.synthesized == 1

    def test_buckets_are_per_client(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", rate=0.01, burst=1.0
        ) as server:
            first = ServiceClient(
                server.url, timeout=0.2, client_id="hog"
            )
            assert first.submit(benchmark("lion"))["ok"] is True
            with pytest.raises(StoreError):
                first.submit(benchmark("traffic"))
            other = ServiceClient(
                server.url, timeout=5.0, client_id="polite"
            )
            assert other.submit(benchmark("traffic"))["ok"] is True


class TestBackpressure:
    def test_zero_inflight_bound_answers_busy(self, tmp_path):
        with SynthesisServer(
            store=tmp_path / "s", max_inflight=0
        ) as server:
            client = ServiceClient(server.url, timeout=0.3)
            with pytest.raises(StoreError, match="429"):
                client.submit(benchmark("lion"))
            assert server.stats.busy >= 1
            assert server.stats.synthesized == 0

    def test_joins_are_admitted_past_the_bound(self, tmp_path):
        """Identical racing submissions join the in-flight future —
        they add no work, so the bound never rejects them."""
        from .test_server import submit_concurrently

        with SynthesisServer(
            store=tmp_path / "s", jobs=4, max_inflight=1
        ) as server:
            client = ServiceClient(server.url)
            outcomes = submit_concurrently(
                client, benchmark("lion"), count=5
            )
            assert all(o["ok"] for o in outcomes)
            paying = [o for o in outcomes if o["passes"] > 0]
            assert len(paying) == 1
            assert server.stats.busy == 0


class TestFleetDedup:
    """Two servers, one store: the intent-lease tier."""

    def test_racing_servers_pay_one_synthesis(self, tmp_path):
        store = tmp_path / "s"
        with SynthesisServer(store=store, jobs=2) as one:
            with SynthesisServer(store=store, jobs=2) as two:
                table = benchmark("lion")
                outcomes = [None, None]
                barrier = threading.Barrier(2)

                def hit(slot, url):
                    barrier.wait()
                    outcomes[slot] = ServiceClient(url).submit(table)

                threads = [
                    threading.Thread(target=hit, args=(0, one.url)),
                    threading.Thread(target=hit, args=(1, two.url)),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

                assert all(o["ok"] for o in outcomes)
                assert outcomes[0]["result"] == outcomes[1]["result"]
                # The fleet paid exactly once.
                assert one.stats.synthesized + two.stats.synthesized == 1
                paying = [o for o in outcomes if o["passes"] > 0]
                assert len(paying) == 1
                joiner = next(o for o in outcomes if o["passes"] == 0)
                assert joiner["source"] in ("peer", "store")

    def test_lapsed_intent_of_crashed_server_is_stolen(self, tmp_path):
        """A SIGKILLed server leaves its ``inflight/<digest>`` marker
        behind; a live server must steal it and compute, not wait for
        the full submit timeout."""
        store = tmp_path / "s"
        table = benchmark("lion")
        digest = synthesis_key(table, PipelineSpec()).digest
        backend = open_store(store).backend
        corpse = LeaseTable(backend, "inflight", ttl=0.05)
        assert corpse.claim(digest, "server-that-died")

        time.sleep(0.1)  # let the orphan lapse
        with SynthesisServer(
            store=store, poll=0.01, submit_timeout=30.0
        ) as server:
            started = time.monotonic()
            outcome = ServiceClient(server.url).submit(table)
            elapsed = time.monotonic() - started
            assert outcome["ok"] is True
            assert server.stats.synthesized == 1
            assert elapsed < 10.0
        # The steal is recorded on the (since released) lease row's
        # successor; the marker itself must be gone after release.
        assert corpse.read(digest) is None

    def test_live_peer_intent_is_joined_not_stolen(self, tmp_path):
        """While a peer's intent heartbeats, a second server polls the
        store and answers with the peer's result."""
        store = tmp_path / "s"
        table = benchmark("lion")
        digest = synthesis_key(table, PipelineSpec()).digest
        resolved = open_store(store)
        peer = LeaseTable(resolved.backend, "inflight", ttl=30.0)
        assert peer.claim(digest, "peer-server")
        try:
            with SynthesisServer(
                store=store, poll=0.01, submit_timeout=30.0
            ) as server:
                client = ServiceClient(server.url)
                answer = [None]

                def ask():
                    answer[0] = client.submit(table)

                thread = threading.Thread(target=ask)
                thread.start()
                # The server is now waiting on the peer.  Play the
                # peer's part: compute the result out of band and file
                # it in the shared store.
                time.sleep(0.2)
                assert answer[0] is None
                from repro.pipeline.batch import BatchRunner

                BatchRunner(store=resolved).run([table])
                thread.join(timeout=30)
                assert answer[0] is not None
                assert answer[0]["ok"] is True
                assert answer[0]["source"] in ("peer", "store")
                assert server.stats.synthesized == 0
                assert server.stats.joined == 1
        finally:
            peer.release(digest, "peer-server")
