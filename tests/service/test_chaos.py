"""The chaos harness: seeded schedules, the TCP proxy, server modes.

Two layers under test.  :class:`ChaosSchedule` must be reproducible
from its seed (the CI chaos smoke pins one).  :class:`ChaosProxy` and
the fakes' ``fail_next``/``set_chaos`` modes must injure traffic in
ways the resilient transport absorbs: every assertion here is
*correct-or-miss* — an injected fault may cost a retry or a recompute,
never wrong bytes.
"""

import pytest

from repro.service.chaos import (
    PROXY_MODES,
    SERVER_MODES,
    ChaosProxy,
    ChaosSchedule,
)
from repro.service.fakes import FakeCacheServer, FakeObjectStoreServer
from repro.service.resilience import RetryPolicy
from repro.store.net import CacheBackend, ObjectStoreBackend

#: Generous enough to ride out every single-shot fault; breaker never
#: trips so tests stay order-independent.
PATIENT = RetryPolicy(
    retries=8, timeout=5.0, backoff_base=0.01, backoff_max=0.05,
    breaker_threshold=1000,
)


class TestChaosSchedule:
    def test_seed_reproducibility(self):
        a = ChaosSchedule(seed=7, rate=0.5)
        b = ChaosSchedule(seed=7, rate=0.5)
        assert [a.next_fault() for _ in range(200)] == [
            b.next_fault() for _ in range(200)
        ]

    def test_different_seeds_differ(self):
        a = ChaosSchedule(seed=1, rate=0.5)
        b = ChaosSchedule(seed=2, rate=0.5)
        assert [a.next_fault() for _ in range(200)] != [
            b.next_fault() for _ in range(200)
        ]

    def test_rate_zero_never_fires(self):
        schedule = ChaosSchedule(seed=0, rate=0.0)
        assert all(schedule.next_fault() is None for _ in range(100))
        assert schedule.total == 0

    def test_rate_one_always_fires(self):
        schedule = ChaosSchedule(seed=0, rate=1.0)
        faults = [schedule.next_fault() for _ in range(50)]
        assert all(mode in PROXY_MODES for mode in faults)
        assert schedule.total == 50

    def test_limit_caps_total(self):
        schedule = ChaosSchedule(seed=0, rate=1.0, limit=3)
        for _ in range(50):
            schedule.next_fault()
        assert schedule.total == 3

    def test_modes_restricted(self):
        schedule = ChaosSchedule(seed=3, rate=1.0, modes=("delay",))
        assert {schedule.next_fault() for _ in range(20)} == {"delay"}

    def test_empty_modes_rejected(self):
        with pytest.raises(ValueError):
            ChaosSchedule(modes=())

    def test_snapshot_shape(self):
        schedule = ChaosSchedule(seed=5, rate=1.0)
        schedule.next_fault()
        snapshot = schedule.snapshot()
        assert snapshot["seed"] == 5
        assert snapshot["decisions"] == 1
        assert sum(snapshot["injected"].values()) == 1

    def test_server_modes_superset(self):
        assert set(PROXY_MODES) < set(SERVER_MODES)


class TestChaosProxy:
    def test_url_preserves_scheme_and_query(self):
        with FakeObjectStoreServer() as server:
            with ChaosProxy(server.url + "?retry=6&timeout=5") as proxy:
                assert proxy.url.startswith("http://")
                assert proxy.url.endswith("?retry=6&timeout=5")

    def test_clean_passthrough(self):
        with FakeObjectStoreServer() as server:
            schedule = ChaosSchedule(rate=0.0)
            with ChaosProxy(server.url, schedule) as proxy:
                backend = ObjectStoreBackend(proxy.url, policy=PATIENT)
                backend.write("a", b"payload")
                assert backend.read("a") == b"payload"
                assert backend.telemetry.faults == 0

    def test_correct_or_miss_under_faults(self):
        """A hostile proxy costs retries, never wrong bytes."""
        with FakeObjectStoreServer() as server:
            schedule = ChaosSchedule(seed=42, rate=0.4)
            with ChaosProxy(
                server.url, schedule, delay_seconds=0.01
            ) as proxy:
                backend = ObjectStoreBackend(proxy.url, policy=PATIENT)
                blobs = {f"blob/{i}": f"value-{i}".encode() for i in range(12)}
                for name, data in blobs.items():
                    backend.write(name, data)
                for name, data in blobs.items():
                    got = backend.read(name)
                    assert got is None or got == data
            # Every write rode out its faults: the authoritative
            # upstream holds exactly what we wrote.
            direct = ObjectStoreBackend(server.url)
            for name, data in blobs.items():
                assert direct.read(name) == data
        assert schedule.total > 0

    def test_cache_backend_through_proxy(self):
        with FakeCacheServer() as server:
            schedule = ChaosSchedule(seed=9, rate=0.3)
            with ChaosProxy(
                server.url, schedule, delay_seconds=0.01
            ) as proxy:
                backend = CacheBackend(proxy.url, policy=PATIENT)
                for i in range(8):
                    backend.write(f"k{i}", f"v{i}".encode())
                for i in range(8):
                    got = backend.read(f"k{i}")
                    assert got is None or got == f"v{i}".encode()


class TestServerFaultModes:
    """Each ``fail_next`` mode on the HTTP fake, one surgical shot."""

    @pytest.fixture()
    def server(self):
        with FakeObjectStoreServer() as server:
            yield server

    @pytest.fixture()
    def backend(self, server):
        return ObjectStoreBackend(server.url, policy=PATIENT)

    @pytest.mark.parametrize("mode", ["drop", "reset", "error", "delay"])
    def test_recoverable_modes_are_retried(self, server, backend, mode):
        backend.write("x", b"1")
        server.fail_next(1, mode=mode)
        assert backend.read("x") == b"1"
        if mode != "delay":  # delay processes normally, no fault raised
            assert backend.telemetry.faults >= 1

    def test_truncated_read_is_retried(self, server, backend):
        backend.write("x", b"a-reasonably-long-payload")
        server.fail_next(1, mode="truncate")
        assert backend.read("x") == b"a-reasonably-long-payload"
        assert backend.telemetry.faults >= 1

    def test_truncated_conditional_put_replays(self, server, backend):
        """The lease-safety scenario: the PUT took effect but the
        response tore.  The retry sees 412, reads the blob back, finds
        its own bytes, and reports the lease as won."""
        server.fail_next(1, mode="truncate")
        assert backend.write_if_absent("lease", b"mine") is True
        assert backend.read("lease") == b"mine"
        assert backend.telemetry.faults >= 1

    def test_stale_serves_previous_version(self, server, backend):
        backend.write("s", b"old")
        backend.write("s", b"new")
        server.fail_next(1, mode="stale")
        assert backend.read("s") == b"old"
        assert backend.read("s") == b"new"

    def test_set_chaos_schedule(self, server, backend):
        schedule = ChaosSchedule(
            seed=1, rate=1.0, modes=("error",), limit=2
        )
        server.set_chaos(schedule)
        backend.write("y", b"2")
        assert backend.read("y") == b"2"
        assert schedule.total == 2
        assert backend.telemetry.faults >= 2


class TestCacheFaultModes:
    """The same vocabulary on the line-protocol fake."""

    @pytest.fixture()
    def server(self):
        with FakeCacheServer() as server:
            yield server

    @pytest.fixture()
    def backend(self, server):
        return CacheBackend(server.url, policy=PATIENT)

    @pytest.mark.parametrize("mode", ["drop", "reset", "error", "delay"])
    def test_recoverable_modes_are_retried(self, server, backend, mode):
        backend.write("x", b"1")
        server.fail_next(1, mode=mode)
        assert backend.read("x") == b"1"

    def test_truncated_reply_is_retried(self, server, backend):
        backend.write("x", b"a-reasonably-long-payload")
        server.fail_next(1, mode="truncate")
        assert backend.read("x") == b"a-reasonably-long-payload"
        assert backend.telemetry.faults >= 1

    def test_truncated_conditional_put_replays(self, server, backend):
        server.fail_next(1, mode="truncate")
        assert backend.write_if_absent("lease", b"mine") is True
        assert backend.read("lease") == b"mine"

    def test_stale_serves_previous_version(self, server, backend):
        backend.write("s", b"old")
        backend.write("s", b"new")
        server.fail_next(1, mode="stale")
        assert backend.read("s") == b"old"
        assert backend.read("s") == b"new"
