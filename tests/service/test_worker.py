"""Queue workers: drain, steal from the crashed, survive poison.

The acceptance property from the issue: a worker killed mid-lease
loses nothing — its units lapse and a surviving worker completes them,
and because execution is idempotent through the content-addressed
store, the merged result stream is byte-identical to a single-process
run no matter how the fleet carved the work up.
"""

import json

import pytest

from repro.bench import benchmark
from repro.pipeline.batch import BatchRunner
from repro.pipeline.spec import PipelineSpec
from repro.service import QueueWorker, WorkQueue
from repro.sim.campaign import ValidationCampaign
from repro.store import (
    ResultStore,
    ShardedBatch,
    ShardedCampaign,
    canonical_batch_payload,
    canonical_campaign_payload,
    canonical_json,
)
from repro.store.backend import MemoryBackend

TABLES = ("lion", "traffic", "hazard_demo")


@pytest.fixture
def store():
    return ResultStore(MemoryBackend())


def tables():
    return [benchmark(name) for name in TABLES]


class TestDrain:
    def test_worker_drains_batch_into_the_store(self, store):
        WorkQueue(store, "q").publish_batch(tables(), spec=PipelineSpec())
        stats = QueueWorker(store, "q", worker_id="w1").run()
        assert stats["units"] == len(TABLES)
        assert stats["synthesized"] == len(TABLES)
        assert stats["failed"] == 0
        queue_stats = WorkQueue(store, "q").stats()
        assert queue_stats.remaining == 0

    def test_drained_store_merges_byte_identical(self, store):
        """Queue drain and single-process batch: same bytes."""
        spec = PipelineSpec()
        WorkQueue(store, "q").publish_batch(tables(), spec=spec)
        QueueWorker(store, "q", worker_id="w1").run()
        merged = ShardedBatch(tables(), spec=spec).merge(store)
        direct = BatchRunner(spec=spec, jobs=1).run(tables())
        assert canonical_json(
            canonical_batch_payload(merged)
        ) == canonical_json(canonical_batch_payload(direct))

    def test_second_worker_finds_nothing_to_recompute(self, store):
        WorkQueue(store, "q").publish_batch(tables(), spec=PipelineSpec())
        QueueWorker(store, "q", worker_id="w1").run()
        stats = QueueWorker(store, "q", worker_id="w2").run()
        assert stats["units"] == 0 and stats["synthesized"] == 0

    def test_telemetry_archived_for_future_lpt_ordering(self, store):
        queue = WorkQueue(store, "q")
        queue.publish_batch(tables(), spec=PipelineSpec())
        QueueWorker(store, "q", worker_id="w1").run()
        weights = [
            json.loads(store.backend.read(name))
            for name in store.backend.names("telemetry/")
        ]
        assert len(weights) == len(TABLES)
        assert all(
            record["synthesis_seconds"] > 0 for record in weights
        )


class TestSteal:
    def test_surviving_worker_completes_a_crashed_workers_units(
        self, store
    ):
        """Satellite pin: worker A claims a unit and 'crashes' (never
        heartbeats, never finishes).  After the lease TTL lapses,
        worker B must steal it and complete the whole queue."""
        spec = PipelineSpec()
        queue = WorkQueue(store, "q", lease_ttl=0.2)
        queue.publish_batch(tables(), spec=spec)

        # Worker A: claim the heaviest pending unit, then die silently.
        (victim_digest, _), *_ = queue.pending()
        assert queue.claim(victim_digest, "crashed-worker", ttl=0.2)

        # Worker B drains; it must wait out the lapse and steal.
        stats = QueueWorker(
            store, "q", worker_id="survivor", lease_ttl=0.2, poll=0.05
        ).run(timeout=30)
        assert stats["stolen"] >= 1
        assert WorkQueue(store, "q").stats().remaining == 0

        # The stolen unit's result is whole and byte-identical.
        merged = ShardedBatch(tables(), spec=spec).merge(store)
        direct = BatchRunner(spec=spec, jobs=1).run(tables())
        assert canonical_json(
            canonical_batch_payload(merged)
        ) == canonical_json(canonical_batch_payload(direct))

    def test_live_lease_is_not_stolen(self, store):
        """A unit whose lease is still beating is skipped, not raced."""
        queue = WorkQueue(store, "q", lease_ttl=60.0)
        queue.publish_batch([benchmark("lion")], spec=PipelineSpec())
        [(digest, _)] = queue.pending()
        queue.claim(digest, "alive", ttl=60.0)
        stats = QueueWorker(
            store, "q", worker_id="w2", poll=0.05
        ).run(timeout=0.5)
        assert stats["units"] == 0
        assert queue.read_lease(digest)["worker"] == "alive"


class TestPoison:
    def test_malformed_unit_fails_without_wedging_the_queue(self, store):
        """A unit blob that decodes but can't execute is counted failed
        and marked done — the rest of the queue still drains."""
        queue = WorkQueue(store, "q")
        queue.publish_batch(tables(), spec=PipelineSpec())
        (digest, unit), *_ = queue.pending()
        unit.pop("table")  # now unexecutable
        store.backend.write(
            f"queue/q/unit/{digest}.json",
            json.dumps(unit).encode(),
        )
        stats = QueueWorker(store, "q", worker_id="w1").run(timeout=30)
        assert stats["failed"] == 1
        assert stats["synthesized"] == len(TABLES) - 1
        assert WorkQueue(store, "q").stats().remaining == 0


class TestCampaignUnits:
    def test_worker_executes_validation_cells(self, store):
        campaign = ValidationCampaign(
            sweep=1, steps=5, delay_models=("unit",), base_seed=0
        )
        machines = [benchmark("lion")]
        queue = WorkQueue(store, "q")
        published = queue.publish_campaign(machines, campaign)
        # One unit per cell; the synthesis it needs is resolved
        # worker-side through the store.
        assert published == 1
        stats = QueueWorker(store, "q", worker_id="w1").run(timeout=60)
        assert stats["failed"] == 0
        assert stats["validated"] == 1

        merged = ShardedCampaign(machines, campaign).merge(store)
        direct = ValidationCampaign(
            sweep=1, steps=5, delay_models=("unit",), base_seed=0
        ).run(machines)
        assert canonical_json(
            canonical_campaign_payload(merged)
        ) == canonical_json(canonical_campaign_payload(direct))
