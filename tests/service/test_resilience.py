"""The transport policy layer: backoff, breakers, telemetry.

Pure-unit coverage of :mod:`repro.service.resilience` — no sockets.
The wire-level behaviour (retries actually absorbing injected faults)
lives in ``test_chaos.py`` and the parametrised conformance suite.
"""

import pytest

from repro.service.resilience import (
    CircuitBreaker,
    RetryPolicy,
    TransportTelemetry,
    transport_snapshot,
)
from repro.store.backend import MemoryBackend


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay("GET /b/x", 0) == policy.delay("GET /b/x", 0)
        assert policy.delay("GET /b/x", 1) == policy.delay("GET /b/x", 1)

    def test_delay_decorrelates_operations(self):
        policy = RetryPolicy()
        assert policy.delay("GET /b/x", 0) != policy.delay("GET /b/y", 0)

    def test_delay_bounds(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_max=1.0)
        for attempt in range(8):
            ceiling = min(0.1 * 2.0**attempt, 1.0)
            delay = policy.delay("op", attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_delay_caps_at_backoff_max(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_max=0.2)
        assert policy.delay("op", 30) <= 0.2

    def test_merged_overrides(self):
        policy = RetryPolicy().merged(retries=7, timeout=1.5)
        assert policy.retries == 7
        assert policy.timeout == 1.5
        # Unspecified knobs keep their values.
        assert policy.backoff_base == RetryPolicy().backoff_base

    def test_merged_clamps_negative_retries(self):
        assert RetryPolicy().merged(retries=-3).retries == 0

    def test_merged_noop_returns_self(self):
        policy = RetryPolicy()
        assert policy.merged() is policy

    def test_from_query(self):
        policy = RetryPolicy.from_query("retry=5&timeout=2.5")
        assert policy.retries == 5
        assert policy.timeout == 2.5

    def test_from_query_ignores_unknown_keys(self):
        policy = RetryPolicy.from_query("ttl=300&retry=1")
        assert policy.retries == 1
        assert policy.timeout == RetryPolicy().timeout

    def test_from_query_malformed_falls_back(self):
        base = RetryPolicy(retries=9)
        policy = RetryPolicy.from_query("retry=lots&timeout=", base=base)
        assert policy.retries == 9
        assert policy.timeout == base.timeout

    def test_from_query_empty(self):
        assert RetryPolicy.from_query("") == RetryPolicy()


class TestCircuitBreaker:
    def test_closed_allows(self):
        breaker = CircuitBreaker(threshold=2)
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, reset_after=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1
        assert breaker.short_circuits == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_single_probe(self):
        breaker = CircuitBreaker(threshold=1, reset_after=0.0)
        breaker.record_failure()
        # reset_after=0: instantly half-open.
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else still short-circuits
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, reset_after=30.0)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # Fake the lapse by shrinking the window in place.
        breaker.reset_after = 0.0
        assert breaker.allow()
        breaker.reset_after = 30.0
        breaker.record_failure()  # the probe failed: window re-stamps
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1  # re-opening is not a fresh open

    def test_snapshot_shape(self):
        snapshot = CircuitBreaker().snapshot()
        assert set(snapshot) == {
            "state", "successes", "failures", "opens", "short_circuits",
        }


class TestTelemetry:
    def test_per_operation_counts(self):
        telemetry = TransportTelemetry()
        telemetry.record_op("GET")
        telemetry.record_op("GET")
        telemetry.record_fault("GET")
        telemetry.record_retry("GET")
        telemetry.record_op("PUT")
        snapshot = telemetry.snapshot()
        assert snapshot["GET"] == {
            "ops": 2, "faults": 1, "retries": 1, "short_circuits": 0,
        }
        assert snapshot["PUT"]["ops"] == 1
        assert telemetry.total("ops") == 3
        assert telemetry.faults == 1

    def test_transport_snapshot_none_for_local_backends(self):
        assert transport_snapshot(MemoryBackend()) is None

    def test_transport_snapshot_for_networked_backend(self):
        pytest.importorskip("repro.store.net")
        from repro.service.fakes import FakeObjectStoreServer
        from repro.store.net import ObjectStoreBackend

        with FakeObjectStoreServer() as server:
            backend = ObjectStoreBackend(server.url)
            backend.write("x", b"1")
            assert backend.read("x") == b"1"
            report = transport_snapshot(backend)
        assert report is not None
        assert report["ops"] >= 2
        assert report["faults"] == 0
        assert report["breaker"]["state"] == "closed"
