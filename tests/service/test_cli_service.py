"""CLI surface of the service fabric: queue, work, store lifecycle,
submit.

The long-running commands (``seance serve``, ``seance store
serve-fake``) are exercised through their underlying objects elsewhere
and end-to-end by the CI service smoke; here we pin the one-shot
commands and the submit client against an in-process front door.
"""

import pytest

from repro.cli import main
from repro.service import FakeObjectStoreServer, SynthesisServer, WorkQueue
from repro.store import ResultStore


class TestQueueCli:
    def test_publish_then_work_then_status(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "queue", "publish", "lion", "traffic",
            "--store", store, "--queue", "q",
        ]) == 0
        assert "published 2 new unit(s)" in capsys.readouterr().out

        assert main([
            "work", "--store", store, "--queue", "q",
            "--timeout", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 unit(s)" in out and "2 synthesised" in out

        assert main([
            "queue", "status", "--store", store, "--queue", "q",
        ]) == 0
        assert "2 done, 0 remaining" in capsys.readouterr().out

    def test_drained_queue_merges_canonically(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["queue", "publish", "lion", "--store", store])
        main(["work", "--store", store, "--timeout", "60"])
        capsys.readouterr()
        assert main([
            "shard", "merge", "lion", "--store", store, "--json",
        ]) == 0
        merged = capsys.readouterr().out
        assert main(["batch", "lion", "--json", "--canonical"]) == 0
        assert merged == capsys.readouterr().out

    def test_status_shows_lease_health_rows(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["queue", "publish", "lion", "--store", store, "--queue", "q"])
        queue = WorkQueue(ResultStore(store), "q")
        [(digest, _)] = queue.pending()
        queue.claim(digest, "alice")
        capsys.readouterr()
        assert main([
            "queue", "status", "--store", store, "--queue", "q",
        ]) == 0
        out = capsys.readouterr().out
        assert f"lease {digest[:16]}" in out
        assert "worker=alice" in out
        assert "steals=0" in out
        assert "[live]" in out

    def test_status_watch_exits_when_drained(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["queue", "publish", "lion", "--store", store, "--queue", "q"])
        main(["work", "--store", store, "--queue", "q", "--timeout", "60"])
        capsys.readouterr()
        assert main([
            "queue", "status", "--store", store, "--queue", "q",
            "--watch", "--interval", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "queue drained" in out

    def test_publish_campaign_units(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "queue", "publish", "lion", "--campaign",
            "--sweep", "1", "--steps", "5", "--delay-model", "unit",
            "--store", store,
        ]) == 0
        assert "published 1 new unit(s)" in capsys.readouterr().out
        assert main(["work", "--store", store, "--timeout", "60"]) == 0
        assert "1 validated" in capsys.readouterr().out


class TestStoreLifecycleCli:
    def test_verify_clean_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        capsys.readouterr()
        assert main(["store", "verify", "--store", store]) == 0
        assert "1 ok, 0 rejected" in capsys.readouterr().out

    def test_verify_flags_corruption_and_gc_drops_it(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        blob = next((tmp_path / "store" / "synthesis").glob("*.json"))
        blob.write_bytes(b"corrupt")
        capsys.readouterr()
        assert main(["store", "verify", "--store", store]) == 1
        assert "REJECTED" in capsys.readouterr().out
        assert main([
            "store", "gc", "--store", store, "--drop-rejected",
        ]) == 0
        assert "1 rejected" in capsys.readouterr().out
        assert not blob.exists()

    def test_gc_ages_out_old_results(self, tmp_path, capsys):
        import os
        import time

        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        blob = next((tmp_path / "store" / "synthesis").glob("*.json"))
        old = time.time() - 48 * 3600
        os.utime(blob, (old, old))
        capsys.readouterr()
        assert main([
            "store", "gc", "--store", store, "--max-age-hours", "24",
        ]) == 0
        assert "1 aged out" in capsys.readouterr().out
        assert not blob.exists()


class TestTransportCli:
    def test_verify_reports_transport_telemetry(self, capsys):
        """``seance store verify`` on a networked store surfaces the
        per-op fault counters instead of degrading silently."""
        with FakeObjectStoreServer() as server:
            main(["synth", "lion", "--store", server.url])
            server.fail_next(1, mode="error")
            capsys.readouterr()
            assert main([
                "store", "verify", "--store", server.url,
                "--retry", "4", "--timeout", "5",
            ]) == 0
            out = capsys.readouterr().out
        assert "1 ok, 0 rejected" in out
        assert "transport:" in out
        assert "1 fault(s)" in out
        assert "breaker closed" in out

    def test_verify_on_a_local_store_has_no_transport_line(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        capsys.readouterr()
        assert main(["store", "verify", "--store", store]) == 0
        assert "transport:" not in capsys.readouterr().out

    def test_retry_and_timeout_flags_are_accepted_everywhere(
        self, tmp_path, capsys
    ):
        with FakeObjectStoreServer() as server:
            assert main([
                "batch", "lion", "--store", server.url,
                "--retry", "3", "--timeout", "5",
            ]) == 0
            capsys.readouterr()
            assert main([
                "queue", "publish", "lion", "--store", server.url,
                "--retry", "3", "--timeout", "5",
            ]) == 0
            assert main([
                "work", "--store", server.url,
                "--retry", "3", "--store-timeout", "5",
                "--timeout", "60",
            ]) == 0
            assert main([
                "queue", "status", "--store", server.url,
                "--retry", "3", "--timeout", "5",
            ]) == 0

    def test_retry_knobs_ride_the_store_url(self, capsys):
        with FakeObjectStoreServer() as server:
            server.fail_next(2, mode="drop")
            assert main([
                "synth", "lion", "--store", f"{server.url}?retry=6",
            ]) == 0


class TestSubmitCli:
    def test_submit_against_a_live_front_door(self, tmp_path, capsys):
        with SynthesisServer(store=tmp_path / "store") as server:
            assert main([
                "submit", "lion", "--server", server.url,
            ]) == 0
            out = capsys.readouterr().out
            assert "lion" in out and "local" in out

            # Warm resubmission: served from the store, zero passes.
            assert main([
                "submit", "lion", "--server", server.url,
            ]) == 0
            out = capsys.readouterr().out
            assert "store" in out
            assert "1 served without a synthesis" in out

    def test_submit_canonical_matches_batch(self, tmp_path, capsys):
        with SynthesisServer(store=tmp_path / "store") as server:
            assert main([
                "submit", "lion", "traffic",
                "--server", server.url, "--canonical",
            ]) == 0
            via_serve = capsys.readouterr().out
        assert main([
            "batch", "lion", "traffic", "--json", "--canonical",
        ]) == 0
        assert via_serve == capsys.readouterr().out

    def test_submit_with_token_file(self, tmp_path, capsys):
        token_file = tmp_path / "token"
        token_file.write_text("hunter2\n")
        with SynthesisServer(
            store=tmp_path / "store", token="hunter2"
        ) as server:
            # Unauthenticated: rejected cleanly.
            assert main([
                "submit", "lion", "--server", server.url,
            ]) == 2
            assert "401" in capsys.readouterr().err
            # With the token file: admitted.
            assert main([
                "submit", "lion", "--server", server.url,
                "--token-file", str(token_file),
                "--client-id", "ci",
            ]) == 0
            assert "lion" in capsys.readouterr().out

    def test_submit_with_missing_token_file_errors(self, tmp_path, capsys):
        assert main([
            "submit", "lion", "--server", "http://127.0.0.1:9",
            "--token-file", str(tmp_path / "absent"),
        ]) == 2
        assert "token-file" in capsys.readouterr().err

    def test_submit_to_a_dead_server_errors_cleanly(self, capsys):
        with SynthesisServer(store="/tmp") as server:
            url = server.url
        assert main([
            "submit", "lion", "--server", url, "--timeout", "0.5",
        ]) == 2
        assert "unreachable" in capsys.readouterr().err
