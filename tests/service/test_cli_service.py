"""CLI surface of the service fabric: queue, work, store lifecycle,
submit.

The long-running commands (``seance serve``, ``seance store
serve-fake``) are exercised through their underlying objects elsewhere
and end-to-end by the CI service smoke; here we pin the one-shot
commands and the submit client against an in-process front door.
"""

import pytest

from repro.cli import main
from repro.service import SynthesisServer


class TestQueueCli:
    def test_publish_then_work_then_status(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "queue", "publish", "lion", "traffic",
            "--store", store, "--queue", "q",
        ]) == 0
        assert "published 2 new unit(s)" in capsys.readouterr().out

        assert main([
            "work", "--store", store, "--queue", "q",
            "--timeout", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 unit(s)" in out and "2 synthesised" in out

        assert main([
            "queue", "status", "--store", store, "--queue", "q",
        ]) == 0
        assert "2 done, 0 remaining" in capsys.readouterr().out

    def test_drained_queue_merges_canonically(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["queue", "publish", "lion", "--store", store])
        main(["work", "--store", store, "--timeout", "60"])
        capsys.readouterr()
        assert main([
            "shard", "merge", "lion", "--store", store, "--json",
        ]) == 0
        merged = capsys.readouterr().out
        assert main(["batch", "lion", "--json", "--canonical"]) == 0
        assert merged == capsys.readouterr().out

    def test_publish_campaign_units(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "queue", "publish", "lion", "--campaign",
            "--sweep", "1", "--steps", "5", "--delay-model", "unit",
            "--store", store,
        ]) == 0
        assert "published 1 new unit(s)" in capsys.readouterr().out
        assert main(["work", "--store", store, "--timeout", "60"]) == 0
        assert "1 validated" in capsys.readouterr().out


class TestStoreLifecycleCli:
    def test_verify_clean_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        capsys.readouterr()
        assert main(["store", "verify", "--store", store]) == 0
        assert "1 ok, 0 rejected" in capsys.readouterr().out

    def test_verify_flags_corruption_and_gc_drops_it(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        blob = next((tmp_path / "store" / "synthesis").glob("*.json"))
        blob.write_bytes(b"corrupt")
        capsys.readouterr()
        assert main(["store", "verify", "--store", store]) == 1
        assert "REJECTED" in capsys.readouterr().out
        assert main([
            "store", "gc", "--store", store, "--drop-rejected",
        ]) == 0
        assert "1 rejected" in capsys.readouterr().out
        assert not blob.exists()

    def test_gc_ages_out_old_results(self, tmp_path, capsys):
        import os
        import time

        store = str(tmp_path / "store")
        main(["synth", "lion", "--store", store])
        blob = next((tmp_path / "store" / "synthesis").glob("*.json"))
        old = time.time() - 48 * 3600
        os.utime(blob, (old, old))
        capsys.readouterr()
        assert main([
            "store", "gc", "--store", store, "--max-age-hours", "24",
        ]) == 0
        assert "1 aged out" in capsys.readouterr().out
        assert not blob.exists()


class TestSubmitCli:
    def test_submit_against_a_live_front_door(self, tmp_path, capsys):
        with SynthesisServer(store=tmp_path / "store") as server:
            assert main([
                "submit", "lion", "--server", server.url,
            ]) == 0
            out = capsys.readouterr().out
            assert "lion" in out and "local" in out

            # Warm resubmission: served from the store, zero passes.
            assert main([
                "submit", "lion", "--server", server.url,
            ]) == 0
            out = capsys.readouterr().out
            assert "store" in out
            assert "1 served without a synthesis" in out

    def test_submit_canonical_matches_batch(self, tmp_path, capsys):
        with SynthesisServer(store=tmp_path / "store") as server:
            assert main([
                "submit", "lion", "traffic",
                "--server", server.url, "--canonical",
            ]) == 0
            via_serve = capsys.readouterr().out
        assert main([
            "batch", "lion", "traffic", "--json", "--canonical",
        ]) == 0
        assert via_serve == capsys.readouterr().out

    def test_submit_to_a_dead_server_errors_cleanly(self, capsys):
        with SynthesisServer(store="/tmp") as server:
            url = server.url
        assert main([
            "submit", "lion", "--server", url, "--timeout", "0.5",
        ]) == 2
        assert "unreachable" in capsys.readouterr().err
