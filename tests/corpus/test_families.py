"""Property tests over the corpus generator families.

Every family must emit *valid* flow tables (the
:func:`repro.flowtable.validation.validate` contract the whole pipeline
assumes), deterministically per key, with a fingerprint that survives
the JSON round-trip — that is what makes ``corpus:family:seed`` keys a
workload naming scheme rather than a random-table lottery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import table_from_dict, table_to_dict
from repro.corpus import (
    FAMILIES,
    CorpusKey,
    build_corpus,
    corpus_fingerprint,
    generate,
    make_key,
    parse_key,
)
from repro.flowtable.validation import validate


@st.composite
def corpus_keys(draw) -> CorpusKey:
    """A key for any family, over a spread of legal parameters."""
    family = draw(st.sampled_from(sorted(FAMILIES)))
    seed = draw(st.integers(0, 9999))
    if family == "random-flow":
        # Each state rests at its own input column, so the state count
        # is bounded by the column count.
        inputs = draw(st.integers(2, 3))
        params = {
            "inputs": inputs,
            "states": draw(st.integers(3, min(6, 1 << inputs))),
            "outputs": draw(st.integers(1, 2)),
        }
    elif family == "random-stg":
        # Two signals must alternate, which only closes an odd cycle.
        inputs = draw(st.integers(2, 3))
        phases = draw(
            st.sampled_from((5, 7)) if inputs == 2 else st.integers(4, 8)
        )
        params = {"phases": phases, "inputs": inputs}
    elif family == "burst-mode":
        params = {"states": draw(st.integers(4, 7))}
    elif family == "protocol-ring":
        params = {"stations": draw(st.integers(4, 12))}
    else:  # hazard-dense
        params = {
            "states": draw(st.integers(3, 6)),
            "inputs": draw(st.integers(2, 3)),
        }
    return make_key(family, seed, params)


class TestGeneration:
    @given(key=corpus_keys())
    @settings(max_examples=40, deadline=None)
    def test_valid_deterministic_and_round_trippable(self, key):
        table = generate(key)
        validate(table)
        assert table.name == str(key)
        # Same key -> same table, whether given as object or string.
        again = generate(str(key))
        assert table_to_dict(table) == table_to_dict(again)
        # Fingerprint survives the serialisation round-trip.
        fingerprint = corpus_fingerprint(table)
        rebuilt = table_from_dict(table_to_dict(table))
        assert corpus_fingerprint(rebuilt) == fingerprint
        # And the key itself round-trips through its string form.
        assert parse_key(str(key)) == key

    def test_distinct_seeds_are_distinct_workloads(self):
        """Consecutive seeds must not collapse to a handful of tables —
        otherwise ``--count N`` overstates coverage.  (Occasional
        coincidences are legal; wholesale collapse is a generator bug.)"""
        for family in sorted(FAMILIES):
            fingerprints = {
                corpus_fingerprint(generate(make_key(family, seed)))
                for seed in range(10)
            }
            assert len(fingerprints) >= 8, family


class TestBuildCorpus:
    def test_default_covers_every_family(self):
        keys = build_corpus(count=2, seed=5)
        assert len(keys) == 2 * len(FAMILIES)
        assert {key.family for key in keys} == set(FAMILIES)
        assert {key.seed for key in keys} == {5, 6}

    def test_infeasible_keys_fail_fast_with_a_clear_error(self):
        """``random-stg`` over two signals can only close odd cycles;
        the generator must say so instead of burning its rejection
        budget on an impossible draw."""
        import pytest

        from repro.errors import CorpusError

        with pytest.raises(CorpusError, match="odd"):
            generate("corpus:random-stg:inputs=2:0")
        # The odd neighbours are fine.
        validate(generate("corpus:random-stg:inputs=2,phases=5:0"))

    def test_families_and_params_are_validated(self):
        import pytest

        from repro.errors import CorpusError

        with pytest.raises(CorpusError, match="unknown corpus family"):
            build_corpus(["no-such-family"], count=1)
        with pytest.raises(CorpusError, match="count"):
            build_corpus(count=0)
