"""Minimiser unit tests, anchored on the pinned train11 anomaly.

``train11`` under the hostile model (seed 2, steps 30 — the exact
configuration ``tests/sim/test_anomalies.py`` pins) is the repo's
canonical *real* divergence, so it is the oracle here: the shrinker
must terminate within its budget, keep the anomaly alive at every
accepted step, and emit a loadable fixture with a non-empty VCD diff.
The campaign builds its machines with the unit-delay Gate A (the
anomaly is an output-latch staleness the Section-4.3 padding cures), so
the oracle predicate replicates the campaign cell rather than the fuzz
loop's padded machine.
"""

import pytest

from repro.api import synthesize
from repro.bench import benchmark
from repro.corpus import (
    Finding,
    dirty_cell_vcd_pair,
    load_fixture,
    minimize_table,
    minimize_walk,
    write_fixture,
)
from repro.corpus.shrink import Minimized
from repro.corpus.families import corpus_fingerprint
from repro.flowtable.validation import validate
from repro.netlist.fantom import build_fantom
from repro.sim.campaign import delay_model
from repro.sim.harness import random_legal_walk, validate_walk


def train11_walk(result):
    return random_legal_walk(result.reduction.table, 30, seed=2)


def train11_predicate(table) -> bool:
    """One campaign cell: (hostile, seed 2, steps 30), unit Gate A."""
    result = synthesize(table)
    machine = build_fantom(result, use_fsv=True)
    summary = validate_walk(
        machine,
        train11_walk(result),
        delay_model("hostile", 2, machine),
    )
    return not summary.all_clean


class TestTrain11Oracle:
    @pytest.fixture(scope="class")
    def shrink(self):
        accepted = []

        def recording(table):
            holds = train11_predicate(table)
            if holds:
                accepted.append(table)
            return holds

        table = benchmark("train11")
        assert train11_predicate(table)
        shrunk, history, calls = minimize_table(
            table, recording, budget=80
        )
        return table, shrunk, history, calls, accepted

    def test_terminates_within_budget_and_shrinks(self, shrink):
        table, shrunk, history, calls, _ = shrink
        assert calls <= 80
        assert history, "no shrink step accepted at all"
        assert len(shrunk.states) < len(table.states)

    def test_divergence_preserved_at_every_accepted_step(self, shrink):
        """Greedy first-improvement accepts exactly the candidates the
        predicate blessed — so the accepted chain *is* the history, each
        link a valid table that still shows the anomaly."""
        _, shrunk, history, _, accepted = shrink
        assert len(accepted) == len(history)
        for step, table in zip(history, accepted):
            validate(table)
            assert corpus_fingerprint(table) == step["fingerprint"]
        costs = [step["cost"] for step in history]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)  # strictly decreasing
        assert corpus_fingerprint(accepted[-1]) == corpus_fingerprint(
            shrunk
        )

    def test_emits_loadable_fixture_with_vcd_diff(self, shrink, tmp_path):
        _, shrunk, history, _, _ = shrink
        result = synthesize(shrunk)
        machine = build_fantom(result, use_fsv=True)
        walk = train11_walk(result)
        pair = dirty_cell_vcd_pair(machine, walk, "hostile", 2)
        finding = Finding(
            key="train11",
            check="dirty-cell",
            detail="hostile output-latch staleness (pinned anomaly)",
            fingerprint=corpus_fingerprint(benchmark("train11")),
            model="hostile",
            walk=tuple(walk),
            walk_seed=2,
            steps=30,
        )
        minimized = Minimized(
            table=shrunk,
            walk=tuple(walk),
            fingerprint=corpus_fingerprint(shrunk),
            history=history,
        )
        path = write_fixture(
            tmp_path, finding, minimized, vcd_pair=pair
        )
        loaded, meta = load_fixture(path)
        assert loaded.states == shrunk.states
        assert meta["history"] == history
        diff = path.with_suffix("").with_suffix(".diff").read_text()
        assert diff.strip(), "the anomaly must diff expected vs observed"
        # And the replayed minimal machine still shows the anomaly.
        assert train11_predicate(loaded)


class TestMinimizeWalk:
    def test_shrinks_to_the_essential_step(self):
        walk, calls = minimize_walk(
            [1, 2, 3, 7, 4, 5, 6, 2, 1, 7], lambda w: 7 in w
        )
        assert walk == [7]
        assert calls > 0

    def test_never_returns_an_empty_walk(self):
        walk, _ = minimize_walk([3, 3, 3], lambda w: True)
        assert walk == [3]

    def test_exceptions_reject_the_candidate(self):
        def fragile(w):
            if len(w) < 2:
                raise ValueError("boom")
            return True

        walk, _ = minimize_walk([1, 2, 3, 4], fragile)
        assert len(walk) == 2


class TestTableShrinkSafety:
    def test_never_accepts_an_invalid_table(self):
        """A predicate that blesses everything still only sees valid
        tables: structurally broken candidates are filtered before the
        predicate runs."""
        seen = []

        def greedy(table):
            validate(table)  # raises if shrink ever hands us junk
            seen.append(table)
            return True

        shrunk, history, _ = minimize_table(
            benchmark("hazard_demo"), greedy, budget=40
        )
        assert seen
        validate(shrunk)
        assert len(history) <= len(seen)
