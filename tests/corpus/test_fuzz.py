"""Fuzz-loop mechanics: keys, loaders, stores, shards, selftest, CLI.

The acceptance property of the whole subsystem lives here too: with
``REPRO_FUZZ_SELFTEST`` armed, a deliberately perturbed truth table is
caught as a divergence, auto-minimised to a handful of rows, and lands
as a loadable fixture with a non-empty VCD diff.
"""

from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.corpus import (
    SELFTEST_ENV,
    CorpusKey,
    fuzz_table,
    generate,
    load_fixture,
    make_key,
    parse_key,
    perturb_table,
    run_fuzz,
    selftest_enabled,
    write_finding_fixture,
)
from repro.errors import CorpusError


class TestKeys:
    def test_round_trip_with_params(self):
        key = make_key("random-flow", 7, {"states": 4, "inputs": 2})
        assert parse_key(str(key)) == key
        assert key.family == "random-flow" and key.seed == 7

    def test_default_equal_overrides_are_dropped(self):
        bare = make_key("random-stg", 1)
        spelled = make_key("random-stg", 1, {"phases": 6})
        assert str(bare) == str(spelled) == "corpus:random-stg:1"

    def test_unknown_family_names_the_alternatives(self):
        with pytest.raises(CorpusError, match="random-flow"):
            parse_key("corpus:bogus:0")

    def test_unknown_parameter_names_the_legal_ones(self):
        with pytest.raises(CorpusError, match="stations"):
            make_key("protocol-ring", 0, {"states": 4})


class TestLoaderIntegration:
    def test_corpus_keys_resolve_through_api_load(self):
        table = api.load_table("corpus:random-flow:0")
        assert table.name == "corpus:random-flow:0"
        # Identical to direct generation — the loader adds no state.
        from repro.core.serialize import table_to_dict

        assert table_to_dict(table) == table_to_dict(
            generate("corpus:random-flow:0")
        )

    def test_corpus_keys_synthesise_end_to_end(self):
        result = api.synthesize("corpus:hazard-dense:1")
        assert result.table.name.startswith("corpus:hazard-dense:1")

    def test_unknown_family_error_is_clear(self):
        with pytest.raises(CorpusError, match="unknown corpus family"):
            api.load_table("corpus:no-such-family:0")


class TestPerturbation:
    def test_inverts_every_specified_output0_bit(self):
        table = generate("corpus:random-flow:1")
        perturbed = perturb_table(table)
        for point, entry in table.entry_map().items():
            twin = perturbed.entry_map()[point]
            if entry.outputs and entry.outputs[0] is not None:
                assert twin.outputs[0] == 1 - entry.outputs[0]
            assert twin.outputs[1:] == entry.outputs[1:]
            assert twin.next_state == entry.next_state

    def test_none_when_nothing_to_flip(self):
        from repro.flowtable.table import Entry, FlowTable

        table = FlowTable(
            ("x1",),
            ("z1",),
            ("a",),
            {
                ("a", 0): Entry("a", (None,)),
                ("a", 1): Entry("a", (None,)),
            },
            "a",
        )
        assert perturb_table(table) is None


class TestSelftestAcceptance:
    def test_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv(SELFTEST_ENV, raising=False)
        assert not selftest_enabled()
        findings = fuzz_table(
            generate("corpus:random-flow:0"), models=("unit",)
        )
        assert not any(f.check.startswith("selftest") for f in findings)

    def test_injected_divergence_is_caught_minimised_and_fixtured(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE's acceptance property, end to end."""
        monkeypatch.setenv(SELFTEST_ENV, "1")
        assert selftest_enabled()
        table = generate("corpus:random-flow:3")
        findings = fuzz_table(table, models=("unit",))
        caught = [f for f in findings if f.check == "selftest"]
        assert caught, "armed selftest must catch the perturbation"
        assert not [f for f in findings if f.check == "selftest-miss"]
        path = write_finding_fixture(
            tmp_path, table, caught[0], budget=150
        )
        loaded, meta = load_fixture(path)
        assert loaded.num_states <= 6, "minimiser left too many rows"
        assert meta["expect"] == "divergent"
        assert meta["history"], "shrink history must be recorded"
        diff = path.with_suffix("").with_suffix(".diff").read_text()
        assert diff.strip(), "fixture must carry a non-empty VCD diff"
        from repro.corpus import check_fixture

        ok, detail = check_fixture(path)
        assert ok, detail
        # The fixture doubles as an ordinary table file.
        assert api.load_table(str(path)).num_states == loaded.num_states


class TestRunFuzz:
    CORPUS = [make_key("random-flow", s) for s in range(4)] + [
        make_key("hazard-dense", s) for s in range(2)
    ]

    def test_store_caching_skips_warm_machines(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        cold = run_fuzz(self.CORPUS, store=store)
        warm = run_fuzz(self.CORPUS, store=store)
        assert cold.store_hits == 0
        assert warm.store_hits == warm.machines == cold.machines
        assert warm.findings == cold.findings == []

    def test_shards_partition_the_corpus_disjointly(self):
        seen: dict[int, list[str]] = {0: [], 1: []}
        for index in (0, 1):
            run_fuzz(
                self.CORPUS,
                shard=(index, 2),
                progress=lambda key, _f, index=index: seen[index].append(
                    key
                ),
            )
        assert not set(seen[0]) & set(seen[1])
        assert sorted(seen[0] + seen[1]) == sorted(
            str(key) for key in self.CORPUS
        )

    def test_flow_tables_fuzz_under_their_own_name(self):
        report = run_fuzz([api.load_table("hazard_demo")])
        assert report.machines == 1
        assert report.clean

    def test_family_seconds_cover_every_family(self):
        report = run_fuzz(self.CORPUS)
        assert set(report.family_seconds) == {
            "random-flow",
            "hazard-dense",
        }
        assert report.checks == report.machines * 11  # 2 + 3 models * 3


class TestCorpusCli:
    def test_corpus_list(self, capsys):
        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        assert "random-flow" in out and "protocol-ring" in out

    def test_corpus_build_manifest_and_json(self, tmp_path, capsys):
        manifest = tmp_path / "corpus.txt"
        assert (
            main(
                [
                    "corpus",
                    "build",
                    "--family",
                    "random-stg",
                    "--count",
                    "3",
                    "--seed",
                    "5",
                    "--manifest",
                    str(manifest),
                    "--json",
                ]
            )
            == 0
        )
        keys = manifest.read_text().split()
        assert keys == [f"corpus:random-stg:{s}" for s in (5, 6, 7)]
        import json

        rows = json.loads(capsys.readouterr().out)
        assert [row["key"] for row in rows] == keys
        assert all(len(row["fingerprint"]) == 64 for row in rows)

    def test_fuzz_manifest_timing_and_exit_code(self, tmp_path, capsys):
        manifest = tmp_path / "corpus.txt"
        manifest.write_text("corpus:random-flow:0\ncorpus:random-flow:1\n")
        timing = tmp_path / "timing.json"
        assert (
            main(
                [
                    "fuzz",
                    "--manifest",
                    str(manifest),
                    "--timing",
                    str(timing),
                ]
            )
            == 0
        )
        assert "no divergences" in capsys.readouterr().out
        import json

        payload = json.loads(timing.read_text())
        assert payload["corpus_fuzz_machines"] == 2
        assert payload["corpus_fuzz_findings"] == 0
        assert payload["corpus_fuzz_seconds"] > 0

    def test_fuzz_bad_param_is_a_clean_error(self, capsys):
        assert main(["fuzz", "--family", "random-flow", "--param", "x"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_fuzz_nothing_to_do_is_a_clean_error(self, capsys):
        assert main(["fuzz"]) == 2
        assert "nothing to fuzz" in capsys.readouterr().err

    def test_vcd_diff_cli(self, tmp_path, capsys):
        fixtures = Path(__file__).parent / "fixtures"
        pairs = sorted(fixtures.glob("*.a.vcd"))
        assert pairs, "committed fixture must ship its VCD pair"
        a = pairs[0]
        b = a.with_suffix("").with_suffix(".b.vcd")
        assert main(["vcd", "diff", str(a), str(a)]) == 0
        assert "equivalent" in capsys.readouterr().out
        assert main(["vcd", "diff", str(a), str(b)]) == 1
        assert capsys.readouterr().out.strip()
