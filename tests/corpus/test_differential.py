"""Tier-1 differential gate: the pinned mini-corpus fuzzes clean.

Fifty generated machines — ten fixed seeds from each family — go
through every redundant engine pair on every run of the suite: the
bitset logic engine vs the reference engine (byte-identical primes and
covers), the compiled simulation kernel vs the event-ring kernel on
both its tick and calendar paths (trace-equivalent walks), and the
Huffman baseline's consensus covers.  Zero hard findings is the gate;
``burst-mode`` is the one family allowed *known* dirty cells (the
characterised MIC dynamic-hazard synthesis gap it deliberately keeps
reproducing — see :data:`repro.corpus.fuzz.KNOWN_DIRTY_FAMILIES`), and
even those count only while both kernels agree on the trace.

The committed fixtures under ``fixtures/`` are auto-collected and
replayed: a ``divergent`` fixture must keep diverging, a ``clean`` one
must stay clean.
"""

from pathlib import Path

import pytest

from repro.api import synthesize
from repro.corpus import (
    FAMILIES,
    build_corpus,
    check_fixture,
    collect_fixtures,
    generate,
    run_fuzz,
)
from repro.logic import _reference as ref
from repro.logic.cover import minimal_cover

FIXTURES_DIR = Path(__file__).parent / "fixtures"

#: The pinned gate corpus: ten fixed seeds per family.
MINI_CORPUS = build_corpus(count=10, seed=0)


class TestMiniCorpus:
    def test_fifty_machines_fuzz_clean(self):
        report = run_fuzz(MINI_CORPUS)
        assert report.machines == 10 * len(FAMILIES) == 50
        details = [finding.to_dict() for finding in report.findings]
        assert report.findings == [], details
        # Known anomalies may only come from the families documented as
        # standing reproducers of the MIC hazard gap.
        assert {f.key.split(":")[1] for f in report.known_findings} <= {
            "burst-mode"
        }

    def test_strict_mode_promotes_known_findings(self):
        """--strict turns a pinned burst-mode anomaly into a hard
        finding.  ``corpus:burst-mode:70`` is the live reproducer of
        the MIC dynamic-hazard gap (the LION9 pinning convention: if a
        generator change moves the anomaly, re-scan and re-pin
        deliberately; if a synthesis fix clears it, celebrate and
        update)."""
        key = "corpus:burst-mode:70"
        relaxed = run_fuzz([key])
        strict = run_fuzz([key], strict=True)
        assert relaxed.findings == []
        assert relaxed.known_findings, "reproducer went clean"
        assert {f.check for f in relaxed.known_findings} == {"dirty-cell"}
        assert len(strict.findings) == len(relaxed.known_findings)
        assert strict.known_findings == []

    def test_covers_are_byte_identical_across_engines(self):
        """The property the ``logic-*`` checks rest on, asserted
        directly for one machine per family: covers travel as cube
        strings, and both engines must emit the same bytes."""
        for family in sorted(FAMILIES):
            result = synthesize(generate(f"corpus:{family}:0"))
            for n, fn in enumerate(result.spec.excitations()):
                fast = minimal_cover(fn)
                slow_cubes, slow_essential, slow_exact = (
                    ref.minimal_cover_reference(fn)
                )
                assert [str(c) for c in fast.cubes] == [
                    str(c) for c in slow_cubes
                ], (family, n)
                assert fast.exact == slow_exact


class TestCommittedFixtures:
    def test_fixture_directory_is_populated(self):
        assert collect_fixtures(FIXTURES_DIR), (
            "tests/corpus/fixtures/ must hold at least the minimised "
            "protocol-ring MIC-race reproducer"
        )

    @pytest.mark.parametrize(
        "path",
        collect_fixtures(FIXTURES_DIR),
        ids=lambda path: path.name,
    )
    def test_fixture_replays_as_recorded(self, path):
        ok, detail = check_fixture(path)
        assert ok, detail

    @pytest.mark.parametrize(
        "path",
        collect_fixtures(FIXTURES_DIR),
        ids=lambda path: path.name,
    )
    def test_fixture_is_loadable_by_the_generic_loader(self, path):
        """A fixture is a plain flow-table JSON with an extra block —
        every ``seance`` command must be able to load it directly."""
        from repro import api

        table = api.load_table(str(path))
        assert table.num_states >= 1
