"""Tests for the burst-mode front end."""

import pytest

from repro.errors import SpecificationError
from repro.flowtable.burst import BurstSpec, BurstTransition
from repro.flowtable.validation import validate


def dme_like_spec():
    """A small burst-mode controller: request/grant with a done burst.

    idle --(req+)--> granted --(done+, req-)--> clearing --(done-)--> idle
    The two-edge burst is the multiple-input change under test.
    """
    spec = BurstSpec(
        inputs=["req", "done"],
        outputs=["grant"],
        initial_state="idle",
        initial_inputs={"req": 0, "done": 0},
    )
    spec.state("idle", "0")
    spec.state("granted", "1")
    spec.state("clearing", "0")
    spec.burst("idle", "granted", ["req+"])
    spec.burst("granted", "clearing", ["done+", "req-"])
    spec.burst("clearing", "idle", ["done-"])
    return spec


class TestBurstTransition:
    def test_empty_burst_rejected(self):
        with pytest.raises(SpecificationError):
            BurstTransition("a", "b", frozenset())

    def test_bad_edge_rejected(self):
        with pytest.raises(SpecificationError):
            BurstTransition("a", "b", frozenset({"req"}))

    def test_double_signal_rejected(self):
        with pytest.raises(SpecificationError):
            BurstTransition("a", "b", frozenset({"req+", "req-"}))

    def test_signals(self):
        t = BurstTransition("a", "b", frozenset({"req+", "done-"}))
        assert t.signals == frozenset({"req", "done"})


class TestSpecConstruction:
    def test_undeclared_state_rejected(self):
        spec = BurstSpec(["a"], ["z"], "s0", {"a": 0})
        with pytest.raises(SpecificationError):
            spec.burst("s0", "ghost", ["a+"])

    def test_unknown_signal_rejected(self):
        spec = BurstSpec(["a"], ["z"], "s0", {"a": 0})
        spec.state("s1")
        with pytest.raises(SpecificationError):
            spec.burst("s0", "s1", ["b+"])

    def test_missing_initial_input(self):
        with pytest.raises(SpecificationError):
            BurstSpec(["a", "b"], ["z"], "s0", {"a": 0})


class TestEntryVectors:
    def test_propagation(self):
        vectors = dme_like_spec().entry_vectors()
        assert vectors["idle"] == {"req": 0, "done": 0}
        assert vectors["granted"] == {"req": 1, "done": 0}
        assert vectors["clearing"] == {"req": 0, "done": 1}

    def test_wrong_polarity_detected(self):
        spec = BurstSpec(["a"], ["z"], "s0", {"a": 1})
        spec.state("s1")
        spec.burst("s0", "s1", ["a+"])  # a is already 1
        with pytest.raises(SpecificationError):
            spec.entry_vectors()

    def test_conflicting_entry_detected(self):
        spec = BurstSpec(["a", "b"], ["z"], "s0", {"a": 0, "b": 0})
        spec.state("s1")
        spec.burst("s0", "s1", ["a+"])
        spec.burst("s0", "s1", ["b+"])
        with pytest.raises(SpecificationError):
            spec.entry_vectors()

    def test_unreachable_state_detected(self):
        spec = BurstSpec(["a"], ["z"], "s0", {"a": 0})
        spec.state("island")
        with pytest.raises(SpecificationError):
            spec.entry_vectors()


class TestMaximalSetProperty:
    def test_subset_bursts_rejected(self):
        spec = BurstSpec(
            ["a", "b"], ["z"], "s0", {"a": 0, "b": 0}
        )
        spec.state("s1").state("s2")
        spec.burst("s0", "s1", ["a+"])
        spec.burst("s0", "s2", ["a+", "b+"])  # superset of the first
        with pytest.raises(SpecificationError) as err:
            spec.check_maximal_set_property()
        assert "maximal set" in str(err.value)

    def test_disjoint_bursts_allowed(self):
        spec = BurstSpec(
            ["a", "b"], ["z"], "s0", {"a": 0, "b": 0}
        )
        spec.state("s1").state("s2")
        spec.burst("s0", "s1", ["a+"])
        spec.burst("s0", "s2", ["b+"])
        spec.check_maximal_set_property()  # no exception


class TestToFlowTable:
    def test_valid_normal_mode_table(self):
        table = dme_like_spec().to_flow_table(name="dme")
        validate(table)  # normal mode, strongly connected, restable

    def test_partial_bursts_hold(self):
        table = dme_like_spec().to_flow_table()
        # granted's burst is {done+, req-} from vector (req=1, done=0):
        # the two partial columns must be stable holds.
        col_done_only = table.column_of({"req": 1, "done": 1})
        col_req_only = table.column_of({"req": 0, "done": 0})
        assert table.is_stable("granted", col_done_only)
        assert table.is_stable("granted", col_req_only)

    def test_complete_burst_moves(self):
        table = dme_like_spec().to_flow_table()
        col_complete = table.column_of({"req": 0, "done": 1})
        assert table.next_state("granted", col_complete) == "clearing"

    def test_outputs_held_during_partials(self):
        table = dme_like_spec().to_flow_table()
        col_done_only = table.column_of({"req": 1, "done": 1})
        assert table.output_vector("granted", col_done_only) == (1,)

    def test_burst_tables_have_mic_transitions(self):
        table = dme_like_spec().to_flow_table()
        assert list(table.transitions(min_input_distance=2))


class TestEndToEnd:
    def test_synthesise_and_simulate(self):
        from repro.core.seance import synthesize
        from repro.netlist.fantom import build_fantom
        from repro.sim.delays import skewed_random
        from repro.sim.harness import validate_against_reference

        table = dme_like_spec().to_flow_table(name="dme")
        result = synthesize(table)
        # the two-edge burst guarantees hazard analysis has work to do
        assert result.analysis.has_hazards
        machine = build_fantom(result)
        summary = validate_against_reference(
            machine, steps=15, seeds=(0, 1), delays_factory=skewed_random
        )
        assert summary.all_clean, summary.describe()
