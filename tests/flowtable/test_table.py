"""Unit tests for repro.flowtable.table."""

import pytest

from repro.errors import FlowTableError
from repro.flowtable.builder import FlowTableBuilder
from repro.flowtable.table import Entry, FlowTable, TableStats, Transition


def gray4() -> FlowTable:
    """Four states around the Gray cycle 00-10-11-01 with diagonal jumps."""
    b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
    b.stable("s0", "00", "0").add("s0", "10", "s1").add("s0", "01", "s3")
    b.add("s0", "11", "s2")
    b.stable("s1", "10", "0").add("s1", "11", "s2").add("s1", "00", "s0")
    b.add("s1", "01", "s3")
    b.stable("s2", "11", "1").add("s2", "01", "s3").add("s2", "10", "s1")
    b.add("s2", "00", "s0")
    b.stable("s3", "01", "1").add("s3", "00", "s0").add("s3", "11", "s2")
    b.add("s3", "10", "s1")
    return b.build(reset="s0", name="gray4")


class TestEntry:
    def test_rejects_bad_output_bit(self):
        with pytest.raises(ValueError):
            Entry("s0", (2,))

    def test_is_specified(self):
        assert Entry("s0", (None,)).is_specified
        assert not Entry(None, (None,)).is_specified


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a", "a"], {})

    def test_unknown_state_in_entry(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a"], {("b", 0): Entry("a", (0,))})

    def test_unknown_next_state(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a"], {("a", 0): Entry("b", (0,))})

    def test_column_out_of_range(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a"], {("a", 2): Entry("a", (0,))})

    def test_wrong_output_width(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a"], {("a", 0): Entry("a", (0, 1))})

    def test_unknown_reset_state(self):
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], ["a"], {}, reset_state="zzz")

    def test_needs_inputs_and_states(self):
        with pytest.raises(FlowTableError):
            FlowTable([], ["z"], ["a"], {})
        with pytest.raises(FlowTableError):
            FlowTable(["x"], ["z"], [], {})


class TestColumns:
    def test_column_of_string(self):
        table = gray4()
        assert table.column_of("00") == 0
        assert table.column_of("10") == 1  # x1 is bit 0
        assert table.column_of("01") == 2
        assert table.column_of("11") == 3

    def test_column_of_mapping(self):
        table = gray4()
        assert table.column_of({"x1": 1, "x2": 0}) == 1

    def test_column_of_bad_pattern(self):
        with pytest.raises(FlowTableError):
            gray4().column_of("0")
        with pytest.raises(FlowTableError):
            gray4().column_of("0-")
        with pytest.raises(FlowTableError):
            gray4().column_of({"x1": 1})

    def test_column_string_roundtrip(self):
        table = gray4()
        for c in table.columns:
            assert table.column_of(table.column_string(c)) == c


class TestEntries:
    def test_stability(self):
        table = gray4()
        assert table.is_stable("s0", table.column_of("00"))
        assert not table.is_stable("s0", table.column_of("10"))
        assert table.stable_columns("s2") == [table.column_of("11")]

    def test_unspecified_cells_are_blank(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b").stable("b", "1", "1")
        b.add("b", "0", "a")
        table = b.build(name="two", check=False)
        # no cell is missing here, so extend with a fresh state view
        entry = table.entry("a", 0)
        assert entry.is_specified

    def test_stable_points(self):
        table = gray4()
        points = set(table.stable_points())
        assert ("s0", 0) in points
        assert len(points) == 4

    def test_unknown_state_raises(self):
        with pytest.raises(FlowTableError):
            gray4().entry("zzz", 0)

    def test_specified_entries_order_deterministic(self):
        table = gray4()
        listed = list(table.specified_entries())
        assert listed == list(table.specified_entries())
        assert len(listed) == 16


class TestTransitions:
    def test_all_transitions_counted(self):
        table = gray4()
        transitions = list(table.transitions())
        # 4 stable points x 3 other columns, all specified.
        assert len(transitions) == 12

    def test_min_distance_filter(self):
        table = gray4()
        mic = list(table.transitions(min_input_distance=2))
        assert len(mic) == 4
        assert all(t.input_distance() == 2 for t in mic)

    def test_transition_dest(self):
        table = gray4()
        t = next(
            t for t in table.transitions()
            if t.state == "s0" and t.to_column == table.column_of("11")
        )
        assert t.dest == "s2"
        assert t.from_column == table.column_of("00")

    def test_intermediate_columns(self):
        t = Transition("s0", 0b00, 0b11, "s2")
        assert sorted(t.intermediate_columns()) == [0b01, 0b10]

    def test_intermediate_columns_three_bit_change(self):
        t = Transition("s", 0b000, 0b111, "t")
        inter = sorted(t.intermediate_columns())
        assert len(inter) == 6  # 2^3 - 2 endpoints
        assert 0b000 not in inter and 0b111 not in inter

    def test_intermediate_respects_unchanged_bits(self):
        # from 100 to 111: bit 0 stays 1 in every intermediate.
        t = Transition("s", 0b001, 0b111, "t")
        for c in t.intermediate_columns():
            assert c & 0b001


class TestPrettyAndStats:
    def test_pretty_contains_stable_parens(self):
        text = gray4().pretty()
        assert "(s0)" in text
        assert "s1" in text

    def test_stats(self):
        stats = TableStats.of(gray4())
        assert stats.num_states == 4
        assert stats.num_specified == 16
        assert stats.num_stable == 4
        assert stats.num_transitions == 12
        assert stats.num_mic_transitions == 4

    def test_replace_entries_roundtrip(self):
        table = gray4()
        clone = table.replace_entries(table.entry_map())
        assert clone.entry_map() == table.entry_map()

    def test_with_name(self):
        assert gray4().with_name("renamed").name == "renamed"
