"""Unit tests for repro.flowtable.kiss."""

import pytest

from repro.errors import KissFormatError
from repro.flowtable.kiss import parse_kiss, write_kiss

GRAY4 = """\
# four states around the Gray cycle with diagonal jumps
.i 2
.o 1
.s 4
.p 16
.r s0
00 s0 s0 0
10 s0 s1 -
01 s0 s3 -
11 s0 s2 -
10 s1 s1 0
11 s1 s2 -
00 s1 s0 -
01 s1 s3 -
11 s2 s2 1
01 s2 s3 -
10 s2 s1 -
00 s2 s0 -
01 s3 s3 1
00 s3 s0 -
11 s3 s2 -
10 s3 s1 -
.e
"""


class TestParse:
    def test_shape(self):
        table = parse_kiss(GRAY4, name="gray4")
        assert table.num_inputs == 2
        assert table.num_outputs == 1
        assert table.num_states == 4
        assert table.reset_state == "s0"
        assert table.inputs == ("x1", "x2")

    def test_entries(self):
        table = parse_kiss(GRAY4)
        assert table.next_state("s0", table.column_of("11")) == "s2"
        assert table.is_stable("s2", table.column_of("11"))
        assert table.output_vector("s2", table.column_of("11")) == (1,)
        assert table.output_vector("s0", table.column_of("10")) == (None,)

    def test_wildcard_expansion(self):
        text = """\
.i 2
.o 1
0- a a 0
1- a b -
1- b b 1
0- b a -
.e
"""
        table = parse_kiss(text)
        # '0-' covers columns 00 and 01
        assert table.is_stable("a", table.column_of("00"))
        assert table.is_stable("a", table.column_of("01"))
        assert table.next_state("a", table.column_of("10")) == "b"
        assert table.next_state("a", table.column_of("11")) == "b"

    def test_comment_and_blank_lines_ignored(self):
        text = "\n# hi\n.i 1\n.o 1\n\n0 a a 0 # trailing\n1 a b -\n1 b b 1\n0 b a -\n.e\n"
        table = parse_kiss(text)
        assert table.num_states == 2

    def test_state_order_is_first_appearance(self):
        table = parse_kiss(GRAY4)
        # s3 appears (as a destination) before s2 in the source text.
        assert table.states == ("s0", "s1", "s3", "s2")


class TestParseErrors:
    def test_missing_io(self):
        with pytest.raises(KissFormatError):
            parse_kiss("0 a a 0\n")

    def test_wrong_field_count(self):
        with pytest.raises(KissFormatError) as err:
            parse_kiss(".i 1\n.o 1\n0 a a\n")
        assert "4 fields" in str(err.value)

    def test_wrong_input_width(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 2\n.o 1\n0 a a 0\n")

    def test_wrong_output_width(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 2\n0 a a 0\n")

    def test_bad_pattern_char(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".i 1\n.o 1\n2 a a 0\n")

    def test_conflicting_entries(self):
        text = ".i 1\n.o 1\n0 a a 0\n0 a b -\n"
        with pytest.raises(KissFormatError) as err:
            parse_kiss(text)
        assert "conflicting" in str(err.value)

    def test_duplicate_identical_lines_allowed(self):
        text = ".i 1\n.o 1\n.p 4\n0 a a 0\n0 a a 0\n1 a b 1\n1 b b 1\n"
        with pytest.raises(KissFormatError):
            # .p says 4 but wildcard duplicates are identical: still 4 lines,
            # so this parses; force the error with a wrong count instead.
            parse_kiss(text.replace(".p 4", ".p 3"))

    def test_product_count_mismatch(self):
        text = ".i 1\n.o 1\n.p 5\n0 a a 0\n1 a b -\n1 b b 1\n0 b a -\n"
        with pytest.raises(KissFormatError):
            parse_kiss(text)

    def test_state_count_mismatch(self):
        text = ".i 1\n.o 1\n.s 3\n0 a a 0\n1 a b -\n1 b b 1\n0 b a -\n"
        with pytest.raises(KissFormatError):
            parse_kiss(text)

    def test_unknown_reset(self):
        text = ".i 1\n.o 1\n.r zz\n0 a a 0\n1 a b -\n1 b b 1\n0 b a -\n"
        with pytest.raises(KissFormatError):
            parse_kiss(text)

    def test_unknown_directive(self):
        with pytest.raises(KissFormatError):
            parse_kiss(".q 2\n.i 1\n.o 1\n0 a a 0\n")

    def test_line_number_reported(self):
        with pytest.raises(KissFormatError) as err:
            parse_kiss(".i 1\n.o 1\nbad line here also\n")
        assert err.value.line == 3


class TestRoundtrip:
    def test_write_then_parse_identical(self):
        table = parse_kiss(GRAY4, name="gray4")
        text = write_kiss(table)
        again = parse_kiss(text, name="gray4")
        assert again.states == table.states
        assert again.reset_state == table.reset_state
        assert again.entry_map() == table.entry_map()

    def test_written_form_declares_counts(self):
        table = parse_kiss(GRAY4)
        text = write_kiss(table)
        assert ".i 2" in text
        assert ".s 4" in text
        assert ".p 16" in text
        assert text.strip().endswith(".e")
