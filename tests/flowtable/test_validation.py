"""Unit tests for repro.flowtable.validation."""

import pytest

from repro.errors import FlowTableError
from repro.flowtable.builder import FlowTableBuilder
from repro.flowtable.validation import (
    check_normal_mode,
    check_output_consistency,
    check_stability,
    check_strongly_connected,
    validate,
)


def valid_two_state():
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b")
    b.stable("b", "1", "1").add("b", "0", "a")
    return b


class TestNormalMode:
    def test_valid_table_passes(self):
        table = valid_two_state().build(check=False)
        assert check_normal_mode(table) == []

    def test_unstable_destination_flagged(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.add("a", "1", "b")
        b.add("b", "1", "c")  # b not stable under 1: a->b is not normal mode
        b.stable("c", "1", "1")
        b.add("b", "0", "a").add("c", "0", "a")
        table = b.build(check=False)
        problems = check_normal_mode(table)
        assert len(problems) == 1
        assert "not stable" in problems[0]

    def test_unspecified_destination_column_flagged(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.add("a", "1", "b")  # b has no entry at column 1 at all
        b.add("b", "0", "a")
        table = b.build(check=False)
        assert check_normal_mode(table)


class TestStrongConnectivity:
    def test_valid_table_passes(self):
        table = valid_two_state().build(check=False)
        assert check_strongly_connected(table) == []

    def test_sink_state_flagged(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").stable("b", "0", "1")  # b never leaves
        table = b.build(check=False)
        problems = check_strongly_connected(table)
        assert any("unreachable from b" in p for p in problems)


class TestStability:
    def test_state_with_no_stable_column_flagged(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.add("a", "1", "b")
        b.stable("b", "1", "1")
        b.add("b", "0", "a")
        b.state("ghost")
        b.add("ghost", "0", "a")
        table = b.build(check=False)
        problems = check_stability(table)
        assert problems == ["state ghost has no stable column"]


class TestOutputConsistency:
    def test_unspecified_stable_outputs_flagged(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0")  # no outputs given
        b.add("a", "1", "b")
        b.stable("b", "1", "1")
        b.add("b", "0", "a")
        table = b.build(check=False)
        problems = check_output_consistency(table)
        assert len(problems) == 1


class TestValidate:
    def test_valid_table_silently_passes(self):
        validate(valid_two_state().build(check=False))

    def test_all_problems_reported_together(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.add("a", "1", "b")
        b.add("b", "1", "a")  # not normal mode AND b has no stable column
        table = b.build(check=False)
        with pytest.raises(FlowTableError) as err:
            validate(table)
        message = str(err.value)
        assert "not stable" in message
        assert "no stable column" in message

    def test_builder_build_invokes_validation(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.add("a", "1", "b")
        b.add("b", "1", "a")
        with pytest.raises(FlowTableError):
            b.build()
