"""Unit tests for repro.flowtable.stg."""

import pytest

from repro.errors import SpecificationError
from repro.flowtable.stg import Arc, Stg


def handshake_stg() -> Stg:
    """A 4-phase handshake observer: req/ack in, busy out."""
    stg = Stg(
        inputs=["req", "ack"],
        outputs=["busy"],
        initial_phase="idle",
        initial_inputs={"req": 0, "ack": 0},
    )
    stg.phase("idle", "0")
    stg.phase("working", "1")
    stg.phase("done", "0")
    stg.arc("idle", "working", ["req+"])
    stg.arc("working", "done", ["ack+", "req-"])  # multi-bit change
    stg.arc("done", "idle", ["ack-"])
    return stg


class TestArc:
    def test_rejects_empty_changes(self):
        with pytest.raises(SpecificationError):
            Arc("a", "b", frozenset())

    def test_rejects_bad_edge_syntax(self):
        with pytest.raises(SpecificationError):
            Arc("a", "b", frozenset({"x1"}))

    def test_rejects_double_change_of_signal(self):
        with pytest.raises(SpecificationError):
            Arc("a", "b", frozenset({"x1+", "x1-"}))

    def test_signals_and_multibit(self):
        arc = Arc("a", "b", frozenset({"x1+", "x2-"}))
        assert arc.signals == frozenset({"x1", "x2"})
        assert arc.is_multi_bit
        assert not Arc("a", "b", frozenset({"x1+"})).is_multi_bit


class TestStgConstruction:
    def test_arc_to_undeclared_phase(self):
        stg = Stg(["x"], ["z"], "p", {"x": 0})
        with pytest.raises(SpecificationError):
            stg.arc("p", "q", ["x+"])

    def test_arc_with_unknown_signal(self):
        stg = Stg(["x"], ["z"], "p", {"x": 0})
        stg.phase("q")
        with pytest.raises(SpecificationError):
            stg.arc("p", "q", ["y+"])

    def test_missing_initial_input(self):
        with pytest.raises(SpecificationError):
            Stg(["x", "y"], ["z"], "p", {"x": 0})


class TestPhaseVectors:
    def test_vectors_propagate(self):
        vectors = handshake_stg().phase_vectors()
        assert vectors["idle"] == {"req": 0, "ack": 0}
        assert vectors["working"] == {"req": 1, "ack": 0}
        assert vectors["done"] == {"req": 0, "ack": 1}

    def test_wrong_polarity_detected(self):
        stg = Stg(["x"], ["z"], "p", {"x": 0})
        stg.phase("q")
        stg.arc("p", "q", ["x-"])  # x is 0, cannot fall
        with pytest.raises(SpecificationError):
            stg.phase_vectors()

    def test_conflicting_vectors_detected(self):
        stg = Stg(["x", "y"], ["z"], "p", {"x": 0, "y": 0})
        stg.phase("q")
        stg.arc("p", "q", ["x+"])
        stg.arc("p", "q", ["y+"])  # q reached with two different vectors
        with pytest.raises(SpecificationError):
            stg.phase_vectors()

    def test_unreachable_phase_detected(self):
        stg = Stg(["x"], ["z"], "p", {"x": 0})
        stg.phase("island")
        stg.phase("q")
        stg.arc("p", "q", ["x+"])
        stg.arc("q", "p", ["x-"])
        with pytest.raises(SpecificationError):
            stg.phase_vectors()


class TestToFlowTable:
    def test_basic_conversion(self):
        table = handshake_stg().to_flow_table(name="hs")
        assert table.num_states == 3
        assert table.is_stable("idle", table.column_of({"req": 0, "ack": 0}))
        col = table.column_of({"req": 0, "ack": 1})
        assert table.next_state("working", col) == "done"
        assert table.output_vector("idle", table.column_of("00")) == (0,)

    def test_conversion_is_normal_mode(self):
        # build(check=True) validates normal mode; no exception = pass.
        handshake_stg().to_flow_table()

    def test_multibit_arc_preserved(self):
        table = handshake_stg().to_flow_table()
        transitions = [
            t for t in table.transitions(min_input_distance=2)
            if t.state == "working"
        ]
        assert any(t.dest == "done" for t in transitions)


class TestExpandSingleBit:
    def test_expansion_adds_phases_and_arcs(self):
        stg = handshake_stg()
        expanded = stg.expand_single_bit()
        # one multi-bit arc of 2 edges -> 1 fresh phase, arcs 3 -> 4
        assert len(expanded.phases) == len(stg.phases) + 1
        assert len(expanded.arcs) == len(stg.arcs) + 1
        assert all(not arc.is_multi_bit for arc in expanded.arcs)

    def test_expansion_respects_order(self):
        stg = handshake_stg()
        expanded = stg.expand_single_bit(
            orders={("working", "done"): ["req-", "ack+"]}
        )
        first = next(
            arc for arc in expanded.arcs if arc.source == "working"
        )
        assert first.changes == frozenset({"req-"})

    def test_expansion_rejects_wrong_order(self):
        stg = handshake_stg()
        with pytest.raises(SpecificationError):
            stg.expand_single_bit(
                orders={("working", "done"): ["req-", "req-"]}
            )

    def test_expanded_graph_has_consistent_vectors(self):
        expanded = handshake_stg().expand_single_bit()
        vectors = expanded.phase_vectors()
        assert vectors["idle"] == {"req": 0, "ack": 0}

    def test_intermediate_phase_inherits_source_outputs(self):
        expanded = handshake_stg().expand_single_bit()
        fresh = [p for p in expanded.phases if p.startswith("_")]
        assert len(fresh) == 1
        table = expanded.to_flow_table(check=False)
        col = [
            c for c in table.columns if table.is_stable(fresh[0], c)
        ]
        assert len(col) == 1
        # "working" rests at output busy=1; the intermediate keeps it.
        assert table.output_vector(fresh[0], col[0]) == (1,)
