"""Hypothesis property tests for the flow-table layer."""

from hypothesis import given, settings

from repro.flowtable.kiss import parse_kiss, write_kiss
from repro.flowtable.table import TableStats, Transition

from ..strategies import normal_mode_tables

SETTINGS = settings(max_examples=80, deadline=None)


@given(normal_mode_tables())
@SETTINGS
def test_kiss_roundtrip_preserves_entries(table):
    """write_kiss -> parse_kiss is the identity on entries.

    State names survive; input/output names are canonicalised by the
    KISS reader (x1.., z1..), which the strategy already uses.
    """
    text = write_kiss(table)
    again = parse_kiss(text, name=table.name)
    assert set(again.states) == set(table.states)
    assert again.num_inputs == table.num_inputs
    assert again.entry_map() == table.entry_map()


@given(normal_mode_tables())
@SETTINGS
def test_generated_tables_are_normal_mode(table):
    from repro.flowtable.validation import check_normal_mode

    assert check_normal_mode(table) == []


@given(normal_mode_tables())
@SETTINGS
def test_every_state_restable(table):
    from repro.flowtable.validation import check_stability

    assert check_stability(table) == []


@given(normal_mode_tables())
@SETTINGS
def test_transitions_land_on_stable_points(table):
    for transition in table.transitions():
        assert table.is_stable(transition.dest, transition.to_column)


@given(normal_mode_tables())
@SETTINGS
def test_intermediate_columns_lie_inside_the_change_cube(table):
    for transition in table.transitions(min_input_distance=2):
        diff = transition.from_column ^ transition.to_column
        for column in transition.intermediate_columns():
            # only changing bits may differ from the start column
            assert (column ^ transition.from_column) & ~diff == 0
            assert column not in (
                transition.from_column,
                transition.to_column,
            )


@given(normal_mode_tables())
@SETTINGS
def test_stats_are_consistent(table):
    stats = TableStats.of(table)
    assert stats.num_stable <= stats.num_specified
    assert stats.num_mic_transitions <= stats.num_transitions
    assert stats.num_states == table.num_states


@given(normal_mode_tables(max_inputs=3))
@SETTINGS
def test_intermediate_count_matches_distance(table):
    for transition in table.transitions(min_input_distance=2):
        d = transition.input_distance()
        count = sum(1 for _ in transition.intermediate_columns())
        assert count == (1 << d) - 2


def test_transition_distance_zero_has_no_intermediates():
    t = Transition("s", 5, 5, "s")
    assert list(t.intermediate_columns()) == []
