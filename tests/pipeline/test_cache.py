"""Stage-cache behaviour: hits, misses, keys, disk persistence."""

import pytest

from repro.bench import benchmark
from repro.pipeline import (
    PassManager,
    StageCache,
    SynthesisOptions,
    run_fingerprint,
    stage_key,
    table_fingerprint,
)

ALL_STAGES = (
    "validate", "reduce", "assign", "outputs", "hazards", "fsv", "factor",
)


def stripped(result):
    d = result.to_dict()
    d.pop("stage_seconds")
    return d


class TestHitMiss:
    def test_first_run_misses_second_run_hits_everything(self):
        cache = StageCache()
        manager = PassManager(cache=cache)
        table = benchmark("lion")

        _, cold = manager.run_with_report(table)
        assert cold.cache_hits == ()
        assert cache.stores == len(ALL_STAGES)

        _, warm = manager.run_with_report(table)
        assert warm.cache_hits == ALL_STAGES
        assert cache.hits == len(ALL_STAGES)

    def test_cached_result_equals_uncached(self):
        cache = StageCache()
        manager = PassManager(cache=cache)
        table = benchmark("traffic")
        first = manager.run(table)
        second = manager.run(table)
        assert stripped(first) == stripped(second)

    def test_different_options_share_nothing(self):
        cache = StageCache()
        manager = PassManager(cache=cache)
        table = benchmark("lion")
        manager.run(table)
        _, report = manager.run_with_report(
            table, SynthesisOptions(reduce_mode="joint")
        )
        assert report.cache_hits == ()

    def test_different_tables_share_nothing(self):
        cache = StageCache()
        manager = PassManager(cache=cache)
        manager.run(benchmark("lion"))
        _, report = manager.run_with_report(benchmark("traffic"))
        assert report.cache_hits == ()

    def test_no_cache_means_no_hits_ever(self):
        manager = PassManager()  # cache=None
        table = benchmark("lion")
        manager.run(table)
        _, report = manager.run_with_report(table)
        assert report.cache_hits == ()


class TestKeys:
    def test_fingerprint_distinguishes_signal_names(self):
        table = benchmark("lion")
        renamed = table.with_name("other")
        assert table_fingerprint(table) != table_fingerprint(renamed)

    def test_fingerprint_stable_across_calls(self):
        table = benchmark("lion9")
        assert table_fingerprint(table) == table_fingerprint(table)

    def test_fingerprint_sees_outputs_of_unspecified_successor_cells(self):
        from repro.flowtable.table import Entry, FlowTable

        def cage(dont_care_bit):
            return FlowTable(
                inputs=["x"],
                outputs=["z"],
                states=["a", "b"],
                entries={
                    ("a", 0): Entry("a", (0,)),
                    ("a", 1): Entry("b", (None,)),
                    ("b", 1): Entry("b", (1,)),
                    ("b", 0): Entry(None, (dont_care_bit,)),
                },
                reset_state="a",
                name="cage",
            )

        # The cells differ only in the output bit of an
        # unspecified-successor entry — which still feeds output
        # compatibility during reduction, so the keys must differ.
        assert table_fingerprint(cage(0)) != table_fingerprint(cage(1))

    def test_run_fingerprint_covers_options(self):
        table = benchmark("lion")
        a = run_fingerprint(table, SynthesisOptions())
        b = run_fingerprint(table, SynthesisOptions(minimize=False))
        assert a != b

    def test_stage_key_depends_on_pass_prefix(self):
        prefix = run_fingerprint(benchmark("lion"), SynthesisOptions())
        assert stage_key(prefix, ("validate",)) != stage_key(
            prefix, ("validate", "reduce")
        )
        # reordering the prefix is a different lineage
        assert stage_key(prefix, ("reduce", "validate")) != stage_key(
            prefix, ("validate", "reduce")
        )
        # delimiter ambiguity: a pass literally named "a/b" must not
        # collide with the two-pass lineage ("a", "b")
        assert stage_key(prefix, ("a/b",)) != stage_key(prefix, ("a", "b"))

    def test_custom_pass_reusing_a_default_name_gets_no_hits(self):
        from repro.pipeline import PassManager, default_passes
        from repro.pipeline.passes import ReducePass

        class MyReducePass(ReducePass):
            """Same name, different implementation class."""

        cache = StageCache()
        table = benchmark("lion")
        PassManager(cache=cache).run(table)  # warm with the defaults

        swapped = [
            MyReducePass() if p.name == "reduce" else p
            for p in default_passes()
        ]
        _, report = PassManager(
            passes=swapped, cache=cache
        ).run_with_report(table)
        # keys carry the implementing class, so the substituted pass and
        # everything downstream of it must miss
        assert "validate" in report.cache_hits
        assert "reduce" not in report.cache_hits
        assert "assign" not in report.cache_hits


class TestDiskTier:
    def test_warm_disk_cache_survives_a_new_cache_object(self, tmp_path):
        table = benchmark("lion")
        first = PassManager(cache=StageCache(path=tmp_path)).run(table)

        fresh = StageCache(path=tmp_path)
        manager = PassManager(cache=fresh)
        second, report = manager.run_with_report(table)
        assert report.cache_hits == ALL_STAGES
        assert stripped(first) == stripped(second)

    def test_corrupt_disk_entries_are_misses(self, tmp_path):
        table = benchmark("lion")
        PassManager(cache=StageCache(path=tmp_path)).run(table)
        for entry in tmp_path.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        _, report = PassManager(
            cache=StageCache(path=tmp_path)
        ).run_with_report(table)
        assert report.cache_hits == ()

    def test_memory_tier_is_bounded(self):
        cache = StageCache(max_entries=2)
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        cache.put("c", {"x": 3})
        assert len(cache) == 2
        assert cache.get("a") is None  # evicted (FIFO)
        assert cache.get("c") == {"x": 3}


class TestFacadeCache:
    def test_seance_threads_a_cache_through(self):
        from repro.core.seance import Seance

        tool = Seance(cache=StageCache())
        table = benchmark("lion")
        tool.run(table)
        result = tool.run(table)
        # warm run: every stage restored, so the total is tiny but the
        # stage keys are all still present
        assert tuple(result.stage_seconds) == ALL_STAGES
