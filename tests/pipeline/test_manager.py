"""PassManager contract tests: ordering, timing, error wrapping."""

import pytest

from repro.bench import benchmark
from repro.errors import FlowTableError, SynthesisError
from repro.pipeline import (
    PassError,
    PassManager,
    PipelineContext,
    SynthesisOptions,
    default_passes,
)

EXPECTED_ORDER = (
    "validate", "reduce", "assign", "outputs", "hazards", "fsv", "factor",
)


class RecordingPass:
    """A stub pass that appends its name to a shared log."""

    cacheable = True

    def __init__(self, name, log, requires=(), provides=(), fail=None):
        self.name = name
        self.requires = tuple(requires)
        self.provides = tuple(provides)
        self.log = log
        self.fail = fail

    def run(self, ctx: PipelineContext) -> None:
        self.log.append(self.name)
        if self.fail is not None:
            raise self.fail
        for key in self.provides:
            ctx.set(key, f"artifact:{key}")


def run_stub_pipeline(passes):
    """Run a stub pass list over a real table, without result assembly."""
    manager = PassManager(passes=passes)
    table = benchmark("lion")
    ctx = PipelineContext(table, SynthesisOptions())
    # Exercise the manager loop without the SynthesisResult assembly,
    # which stub passes don't feed.
    with pytest.raises(SynthesisError, match="artifact"):
        manager.run(table)
    return ctx


class TestDefaultPipeline:
    def test_passes_run_in_figure3_order(self):
        assert tuple(p.name for p in default_passes()) == EXPECTED_ORDER

    def test_stage_seconds_keyed_by_pass_name(self):
        result = PassManager().run(benchmark("lion"))
        assert tuple(result.stage_seconds) == EXPECTED_ORDER
        assert all(s >= 0 for s in result.stage_seconds.values())

    def test_report_events_match_stages(self):
        manager = PassManager()
        result, report = manager.run_with_report(benchmark("traffic"))
        assert [e.name for e in report.events] == list(EXPECTED_ORDER)
        assert report.cache_hits == ()  # no cache configured
        assert report.total_seconds == pytest.approx(
            sum(result.stage_seconds.values())
        )
        assert manager.last_report is report

    def test_report_describe_mentions_every_pass(self):
        manager = PassManager()
        _, report = manager.run_with_report(benchmark("lion"))
        text = report.describe()
        for name in EXPECTED_ORDER:
            assert name in text


class TestCustomPassLists:
    def test_stub_passes_execute_in_list_order(self):
        log = []
        passes = [
            RecordingPass("a", log, provides=("x",)),
            RecordingPass("b", log, requires=("x",), provides=("y",)),
            RecordingPass("c", log, requires=("x", "y")),
        ]
        run_stub_pipeline(passes)
        assert log == ["a", "b", "c"]

    def test_missing_requirement_is_reported_with_pass_name(self):
        log = []
        passes = [RecordingPass("needs_x", log, requires=("x",))]
        manager = PassManager(passes=passes)
        with pytest.raises(SynthesisError, match="needs_x"):
            manager.run(benchmark("lion"))
        assert log == []  # never executed

    def test_undeclared_provides_is_an_error(self):
        class LyingPass(RecordingPass):
            def run(self, ctx):
                self.log.append(self.name)  # provides nothing

        manager = PassManager(
            passes=[LyingPass("liar", [], provides=("ghost",))]
        )
        with pytest.raises(SynthesisError, match="liar"):
            manager.run(benchmark("lion"))

    def test_duplicate_pass_names_rejected(self):
        log = []
        with pytest.raises(SynthesisError, match="duplicate"):
            PassManager(
                passes=[RecordingPass("p", log), RecordingPass("p", log)]
            )


class TestErrorWrapping:
    def test_unexpected_exception_wrapped_with_pass_name(self):
        log = []
        boom = ValueError("boom")
        manager = PassManager(
            passes=[RecordingPass("exploder", log, fail=boom)]
        )
        with pytest.raises(PassError, match="exploder") as info:
            manager.run(benchmark("lion"))
        assert info.value.pass_name == "exploder"
        assert info.value.__cause__ is boom

    def test_domain_errors_propagate_unwrapped(self):
        log = []
        failure = FlowTableError("bad table")
        manager = PassManager(
            passes=[RecordingPass("checker", log, fail=failure)]
        )
        with pytest.raises(FlowTableError, match="bad table"):
            manager.run(benchmark("lion"))

    def test_pass_error_is_a_synthesis_error(self):
        assert issubclass(PassError, SynthesisError)


class TestContext:
    def test_artifacts_are_write_once(self):
        ctx = PipelineContext(benchmark("lion"), SynthesisOptions())
        ctx.set("k", "v1")
        ctx.set("k", "v1")  # idempotent re-set of the same object is fine
        with pytest.raises(SynthesisError, match="overwrite"):
            ctx.set("k", "v2")

    def test_get_missing_artifact_names_available_keys(self):
        ctx = PipelineContext(benchmark("lion"), SynthesisOptions())
        ctx.set("present", 1)
        with pytest.raises(SynthesisError, match="present"):
            ctx.get("absent")
