"""Golden regression: the pipeline reproduces the pre-refactor monolith.

``golden_seed.json`` was captured from the seed's monolithic
``Seance.run`` (one ``to_dict()`` per built-in benchmark, with the
non-deterministic ``stage_seconds`` dropped) *before* the pass-manager
refactor.  These tests pin today's pipeline — facade, PassManager,
cached, and batch paths — to those bytes, so any behavioural drift in
the refactored engine is caught against the original implementation,
not against itself.

When ``to_dict`` grew its full ``artifacts`` section (the JSON
round-trip wire format), the file was regenerated *additively*: the
regeneration asserted that every pre-existing summary section was
byte-identical to the seed capture before writing, so the pin's anchor
is unchanged.  The golden now also pins the artifacts wire format
(tests/pipeline/test_roundtrip.py reads the same file).
"""

import json
from pathlib import Path

import pytest

from repro.bench import benchmark, benchmark_names
from repro.core.seance import synthesize
from repro.pipeline import BatchRunner, PassManager, StageCache

GOLDEN_PATH = Path(__file__).with_name("golden_seed.json")
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: (benchmark, fsv depth, Y depth, total depth) as the seed produced them.
GOLDEN_TABLE1_ROWS = {
    "test_example": ("test_example", 3, 4, 8),
    "traffic": ("traffic", 3, 5, 9),
    "lion": ("lion", 3, 5, 9),
    "lion9": ("lion9", 3, 5, 9),
    "train11": ("train11", 3, 5, 9),
    "dme": ("dme", 2, 5, 8),
    "hazard_demo": ("hazard_demo", 2, 4, 7),
    "parity": ("parity", 2, 5, 8),
    "train4": ("train4", 3, 5, 9),
}


def canonical(result) -> str:
    d = result.to_dict()
    d.pop("stage_seconds")
    return json.dumps(d, sort_keys=True)


def golden(name) -> str:
    return json.dumps(GOLDEN[name], sort_keys=True)


def test_golden_covers_the_whole_suite():
    assert set(GOLDEN) == set(benchmark_names())
    assert set(GOLDEN_TABLE1_ROWS) == set(benchmark_names())


@pytest.mark.parametrize("name", benchmark_names())
def test_facade_is_byte_identical_to_seed(name):
    assert canonical(synthesize(benchmark(name))) == golden(name)


@pytest.mark.parametrize("name", benchmark_names())
def test_table1_rows_pinned_to_seed(name):
    result = PassManager().run(benchmark(name))
    assert result.table1_row() == GOLDEN_TABLE1_ROWS[name]


def test_cached_pipeline_is_byte_identical_to_seed():
    manager = PassManager(cache=StageCache())
    for name in benchmark_names():
        manager.run(benchmark(name))  # prime
    for name in benchmark_names():
        result, report = manager.run_with_report(benchmark(name))
        assert len(report.cache_hits) == 7, "expected a fully warm run"
        assert canonical(result) == golden(name)


def test_parallel_batch_is_byte_identical_to_seed():
    tables = [benchmark(name) for name in benchmark_names()]
    for item in BatchRunner(jobs=2).run(tables):
        assert item.ok, item.error
        assert canonical(item.result) == golden(item.name)
