"""PipelineSpec and the named-pass registry: contracts and round-trips."""

import dataclasses
import json

import pytest

from repro.errors import SynthesisError
from repro.pipeline import (
    DEFAULT_PIPELINE,
    CacheSpec,
    PipelineSpec,
    StageCache,
    SynthesisOptions,
    base_name,
    create_pass,
    default_passes,
    register_pass,
    registered_passes,
    substitute,
)
from repro.pipeline.passes import JointFactorPass


class TestRegistry:
    def test_default_pipeline_is_registered(self):
        registered = set(registered_passes())
        for key in DEFAULT_PIPELINE:
            assert key in registered

    def test_create_pass_stamps_registry_key(self):
        p = create_pass("factor:joint")
        assert isinstance(p, JointFactorPass)
        assert p.registry_key == "factor:joint"
        assert p.name == "factor"

    def test_unknown_key_lists_registered_passes(self):
        with pytest.raises(SynthesisError, match="registered passes"):
            create_pass("no_such_pass")

    def test_base_name(self):
        assert base_name("factor:joint") == "factor"
        assert base_name("factor") == "factor"

    def test_substitute_replaces_by_base_name(self):
        swapped = substitute(DEFAULT_PIPELINE, "factor:joint", "hazards:off")
        assert swapped[-1] == "factor:joint"
        assert "hazards:off" in swapped
        assert len(swapped) == len(DEFAULT_PIPELINE)

    def test_substitute_unmatched_stage_is_an_error(self):
        with pytest.raises(SynthesisError, match="matches no pipeline"):
            substitute(("validate", "reduce"), "factor:joint")

    def test_reregistration_is_an_error(self):
        with pytest.raises(SynthesisError, match="already registered"):
            register_pass("factor:joint")(JointFactorPass)

    def test_variants_must_keep_their_base_name(self):
        @register_pass("_bogus_stage:variant")
        class Misnamed:
            name = "something_else"
            requires = ()
            provides = ()
            cacheable = True

            def run(self, ctx):
                pass

        try:
            with pytest.raises(SynthesisError, match="base name"):
                create_pass("_bogus_stage:variant")
        finally:
            from repro.pipeline import registry

            registry._REGISTRY.pop("_bogus_stage:variant")

    def test_default_passes_come_from_the_registry(self):
        for p, key in zip(default_passes(), DEFAULT_PIPELINE):
            assert p.registry_key == key


class TestPipelineSpec:
    def test_default_spec_resolves_to_the_paper_pipeline(self):
        spec = PipelineSpec()
        assert spec.passes == DEFAULT_PIPELINE
        assert [type(p) for p in spec.resolve()] == [
            type(p) for p in default_passes()
        ]

    def test_unknown_pass_name_fails_at_construction(self):
        with pytest.raises(SynthesisError, match="unknown pass name"):
            PipelineSpec(passes=("validate", "typo"))

    def test_empty_pipeline_is_an_error(self):
        with pytest.raises(SynthesisError, match="at least one pass"):
            PipelineSpec(passes=())

    def test_substitute_builder(self):
        spec = PipelineSpec().substitute("fsv:unprotected")
        assert "fsv:unprotected" in spec.passes
        assert PipelineSpec().passes == DEFAULT_PIPELINE  # immutable

    def test_with_options_overrides_fields(self):
        spec = PipelineSpec().with_options(minimize=False)
        assert spec.options.minimize is False
        assert spec.options.hazard_correction is True
        with pytest.raises(SynthesisError, match="bad options"):
            PipelineSpec().with_options(bogus=1)

    def test_with_cache_forms(self):
        assert PipelineSpec().with_cache(None).cache == CacheSpec(enabled=False)
        assert PipelineSpec().with_cache("/tmp/x").cache.path == "/tmp/x"

    def test_build_manager_runs(self):
        from repro.bench import benchmark

        result = PipelineSpec().build_manager(cache=None).run(
            benchmark("lion")
        )
        assert result.table1_row() == ("lion", 3, 5, 9)

    def test_build_manager_cache_override(self, tmp_path):
        cache = StageCache()
        manager = PipelineSpec().build_manager(cache=cache)
        assert manager.cache is cache
        assert PipelineSpec().with_cache(None).build_manager().cache is None

    def test_fingerprint_tracks_passes_and_options_not_cache(self):
        base = PipelineSpec()
        assert base.fingerprint() == PipelineSpec().fingerprint()
        assert (
            base.substitute("factor:joint").fingerprint()
            != base.fingerprint()
        )
        assert (
            base.with_options(minimize=False).fingerprint()
            != base.fingerprint()
        )
        assert (
            base.with_cache("/tmp/somewhere").fingerprint()
            == base.fingerprint()
        )


class TestSpecRoundTrip:
    def specs(self):
        return [
            PipelineSpec(),
            PipelineSpec().substitute("factor:joint", "hazards:off"),
            PipelineSpec(
                passes=("validate:off", "reduce", "assign", "outputs",
                        "hazards", "fsv:unprotected", "factor:split"),
                options=SynthesisOptions(
                    minimize=False, reduce_mode="joint",
                    output_policy="as_specified",
                ),
                cache=CacheSpec(enabled=True, path="stages", max_entries=7),
            ),
        ]

    def test_to_from_dict_identity(self):
        for spec in self.specs():
            assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_byte_identical_reserialisation(self):
        for spec in self.specs():
            first = json.dumps(spec.to_dict(), sort_keys=True)
            again = json.dumps(
                PipelineSpec.from_dict(json.loads(first)).to_dict(),
                sort_keys=True,
            )
            assert first == again

    def test_json_text_round_trip(self):
        for spec in self.specs():
            assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_save_load(self, tmp_path):
        spec = PipelineSpec().substitute("factor:joint")
        path = tmp_path / "spec.json"
        spec.save(path)
        assert PipelineSpec.load(path) == spec

    def test_unknown_key_is_strictly_rejected(self):
        payload = PipelineSpec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(SynthesisError, match="unknown pipeline spec"):
            PipelineSpec.from_dict(payload)

    def test_unknown_option_is_strictly_rejected(self):
        payload = PipelineSpec().to_dict()
        payload["options"]["surprise"] = 1
        with pytest.raises(SynthesisError, match="unknown options"):
            PipelineSpec.from_dict(payload)

    def test_unknown_cache_key_is_strictly_rejected(self):
        payload = PipelineSpec().to_dict()
        payload["cache"]["surprise"] = 1
        with pytest.raises(SynthesisError, match="unknown cache spec"):
            PipelineSpec.from_dict(payload)

    def test_future_format_is_rejected(self):
        payload = PipelineSpec().to_dict()
        payload["format"] = 99
        with pytest.raises(SynthesisError, match="unsupported"):
            PipelineSpec.from_dict(payload)

    def test_options_fields_all_serialised(self):
        payload = PipelineSpec().to_dict()
        assert set(payload["options"]) == {
            f.name for f in dataclasses.fields(SynthesisOptions)
        }
