"""StageCache persistent tier: verified envelopes over any backend.

The persistent tier now speaks :class:`~repro.store.backend
.StoreBackend`, so ``--cache-dir`` can be a directory, an
``http(s)://`` object store, or a ``cache://`` TTL cache — and every
blob is a self-describing envelope (``repro-stage <version> <key>``
header + pickle) verified on read.  Corruption in any form is a miss
counted in ``rejected``, never an error and never a wrong artifact.
"""

import pickle

import pytest

from repro.bench import benchmark
from repro.pipeline.batch import BatchRunner
from repro.pipeline.cache import StageCache
from repro.pipeline.spec import PipelineSpec
from repro.service import FakeObjectStoreServer
from repro.store.backend import MemoryBackend


class TestEnvelope:
    def test_round_trip_through_a_backend(self):
        cache = StageCache(backend=MemoryBackend())
        cache.put("k1", {"stage": "artifact"})
        fresh = StageCache(backend=cache.backend)
        assert fresh.get("k1") == {"stage": "artifact"}
        assert fresh.hits == 1 and fresh.rejected == 0

    def test_blob_carries_the_envelope_header(self):
        backend = MemoryBackend()
        StageCache(backend=backend).put("k1", {"a": 1})
        blob = backend.read("k1.pkl")
        assert blob.startswith(b"repro-stage 1 k1\n")

    def test_legacy_raw_pickle_is_a_clean_miss(self, tmp_path):
        """Pre-envelope cache directories (bare pickles) read as
        misses, not crashes — old caches degrade to recompute."""
        (tmp_path / "oldkey.pkl").write_bytes(
            pickle.dumps({"stale": True})
        )
        cache = StageCache(path=tmp_path)
        assert cache.get("oldkey") is None
        assert cache.rejected == 1

    def test_truncated_blob_is_a_clean_miss(self):
        backend = MemoryBackend()
        cache = StageCache(backend=backend)
        cache.put("k1", {"a": 1})
        blob = backend.read("k1.pkl")
        backend.write("k1.pkl", blob[: len(blob) - 4])
        fresh = StageCache(backend=backend)
        assert fresh.get("k1") is None
        assert fresh.rejected == 1

    def test_cross_wired_blob_is_a_clean_miss(self):
        """A blob copied under another key's name fails the header's
        key check — the cache can never serve the wrong stage."""
        backend = MemoryBackend()
        cache = StageCache(backend=backend)
        cache.put("k1", {"a": 1})
        backend.write("k2.pkl", backend.read("k1.pkl"))
        fresh = StageCache(backend=backend)
        assert fresh.get("k2") is None
        assert fresh.rejected == 1

    def test_non_dict_payload_is_a_clean_miss(self):
        backend = MemoryBackend()
        cache = StageCache(backend=backend)
        backend.write(
            "k1.pkl",
            cache._header("k1") + pickle.dumps(["not", "a", "dict"]),
        )
        assert cache.get("k1") is None
        assert cache.rejected == 1

    def test_directory_tier_still_globs_as_pkl(self, tmp_path):
        """Compat pin: a cache directory remains flat ``<key>.pkl``."""
        cache = StageCache(path=tmp_path)
        cache.put("abc123", {"x": 1})
        assert [p.name for p in tmp_path.glob("*.pkl")] == ["abc123.pkl"]


class TestNetworkedTier:
    def test_fleet_shares_warm_stages_over_the_wire(self):
        """Two separate cache instances (two 'machines') against one
        object store: the second run's stages are all warm."""
        table = benchmark("lion")
        spec = PipelineSpec()
        with FakeObjectStoreServer() as server:
            first = StageCache(path=server.url)
            BatchRunner(spec=spec, jobs=1, cache=first).run([table])
            assert first.stores > 0

            second = StageCache(path=server.url)
            [item] = BatchRunner(
                spec=spec, jobs=1, cache=second
            ).run([table])
            assert item.ok
            assert second.hits > 0
            assert len(item.cache_hits) == len(item.result.stage_seconds)

    def test_unreachable_tier_degrades_to_recompute(self):
        with FakeObjectStoreServer() as server:
            url = server.url
        cache = StageCache(path=url)
        cache._backend._timeout = 0.5
        cache.put("k1", {"a": 1})  # write degrades silently
        assert cache.get("k1") == {"a": 1}  # memory tier still serves
        assert StageCache(path=url)._backend is not None
