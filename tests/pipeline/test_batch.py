"""BatchRunner: ordered deterministic streams, serial/parallel parity."""

import pytest

from repro.bench import benchmark, benchmark_names, synthesize_suite
from repro.errors import SynthesisError
from repro.flowtable.table import Entry, FlowTable
from repro.pipeline import (
    BatchRunner,
    StageCache,
    SynthesisOptions,
    synthesize_batch,
)

NAMES = ("lion", "traffic", "hazard_demo", "test_example")


def stripped(result):
    d = result.to_dict()
    d.pop("stage_seconds")
    return d


def invalid_table():
    """A table that fails pipeline validation (not strongly connected).

    Built through the raw constructor — the builder front end would
    reject it eagerly, but the pipeline's validate pass must also catch
    tables arriving from other front ends.
    """
    return FlowTable(
        inputs=["x"],
        outputs=["z"],
        states=["a", "b"],
        entries={
            ("a", 0): Entry("a", (0,)),
            ("b", 1): Entry("b", (1,)),  # unreachable from a
        },
        reset_state="a",
        name="broken",
    )


class TestSerial:
    def test_results_in_input_order(self):
        tables = [benchmark(name) for name in NAMES]
        items = BatchRunner(jobs=1).run(tables)
        assert [item.name for item in items] == list(NAMES)
        assert [item.index for item in items] == list(range(len(NAMES)))
        assert all(item.ok for item in items)

    def test_failure_does_not_abort_the_batch(self):
        tables = [benchmark("lion"), invalid_table(), benchmark("traffic")]
        items = BatchRunner(jobs=1).run(tables)
        assert [item.ok for item in items] == [True, False, True]
        assert items[1].result is None
        assert items[1].error

    def test_shared_cache_across_batch_runs(self):
        cache = StageCache()
        runner = BatchRunner(jobs=1, cache=cache)
        runner.run_names(NAMES)
        items = runner.run_names(NAMES)
        assert all(len(item.cache_hits) == 7 for item in items)


class TestParallel:
    def test_parallel_matches_serial_byte_for_byte(self):
        tables = [benchmark(name) for name in NAMES]
        serial = BatchRunner(jobs=1).run(tables)
        parallel = BatchRunner(jobs=2).run(tables)
        assert [i.name for i in parallel] == [i.name for i in serial]
        for a, b in zip(serial, parallel):
            assert stripped(a.result) == stripped(b.result)

    def test_parallel_carries_failures_in_place(self):
        tables = [benchmark("lion"), invalid_table(), benchmark("traffic")]
        items = BatchRunner(jobs=2).run(tables)
        assert [item.ok for item in items] == [True, False, True]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchRunner(jobs=0)

    def test_abandoned_stream_cancels_pending_work(self):
        tables = [benchmark(name) for name in NAMES]
        stream = BatchRunner(jobs=2).iter_results(tables)
        first = next(stream)
        assert first.name == NAMES[0]
        stream.close()  # must cancel queued futures, not block on them

    def test_parallel_workers_share_a_disk_cache(self, tmp_path):
        tables = [benchmark(name) for name in NAMES]
        cache = StageCache(path=tmp_path)
        BatchRunner(jobs=2, cache=cache).run(tables)
        items = BatchRunner(jobs=2, cache=cache).run(tables)
        assert all(len(item.cache_hits) == 7 for item in items)

    def test_parallel_workers_keep_a_memory_cache_for_repeats(self):
        # the same table twice with a memory-only cache: at least one
        # worker sees the repeat and serves it from its in-memory tier
        tables = [benchmark("lion")] * 4
        items = BatchRunner(jobs=2, cache=StageCache()).run(tables)
        assert any(len(item.cache_hits) == 7 for item in items)


class TestMatrix:
    def test_matrix_is_option_major_and_complete(self):
        tables = [benchmark("lion"), benchmark("traffic")]
        options = [
            SynthesisOptions(),
            SynthesisOptions(hazard_correction=False),
        ]
        items = BatchRunner(jobs=1).run_matrix(tables, options)
        assert [i.name for i in items] == ["lion", "traffic"] * 2
        assert all(item.ok for item in items)
        # the ablated half really used its options: fsv is constant 0
        assert items[2].result.fsv.expr.to_string() == "0"
        assert items[0].result.fsv.expr.to_string() != "0"


class TestConveniences:
    def test_synthesize_batch_one_shot(self):
        items = synthesize_batch([benchmark("lion")])
        assert len(items) == 1 and items[0].ok

    def test_synthesize_suite_defaults_to_every_benchmark(self):
        results = synthesize_suite(cache=StageCache())
        assert tuple(results) == benchmark_names()

    def test_synthesize_suite_raises_on_failure(self):
        # monkey-free: feed a bogus name through the names parameter
        with pytest.raises(KeyError):
            synthesize_suite(names=("no_such_machine",))

    def test_synthesize_suite_matches_direct_synthesis(self):
        from repro.core.seance import synthesize

        results = synthesize_suite(names=("lion",))
        assert stripped(results["lion"]) == stripped(
            synthesize(benchmark("lion"))
        )
