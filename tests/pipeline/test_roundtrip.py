"""SynthesisResult JSON round-trips, pinned against ``golden_seed.json``.

The acceptance contract: ``SynthesisResult.from_dict(r.to_dict())``
re-serialises **byte-identically** on the full built-in suite, and the
wire format itself is pinned by the golden file (whose summary sections
are in turn pinned to the seed implementation — see test_golden.py).
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.bench import benchmark, benchmark_names
from repro.core.result import SynthesisResult
from repro.errors import SynthesisError

GOLDEN = json.loads(
    Path(__file__).with_name("golden_seed.json").read_text()
)


def canonical(payload: dict) -> str:
    payload = {k: v for k, v in payload.items() if k != "stage_seconds"}
    return json.dumps(payload, sort_keys=True)


@pytest.mark.parametrize("name", benchmark_names())
def test_result_roundtrip_is_byte_identical(name):
    result = api.synthesize(benchmark(name))
    first = result.to_dict()
    rebuilt = SynthesisResult.from_dict(first)
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == json.dumps(
        first, sort_keys=True
    )
    # and through actual JSON text (the wire), including stage_seconds
    wire = json.dumps(first, sort_keys=True)
    rewired = SynthesisResult.from_dict(json.loads(wire))
    assert json.dumps(rewired.to_dict(), sort_keys=True) == wire


@pytest.mark.parametrize("name", benchmark_names())
def test_wire_format_pinned_to_golden(name):
    result = api.synthesize(benchmark(name))
    assert canonical(result.to_dict()) == json.dumps(
        GOLDEN[name], sort_keys=True
    )


@pytest.mark.parametrize("name", benchmark_names())
def test_rebuilt_results_are_functionally_whole(name):
    """The deserialised object supports every derived view."""
    original = api.synthesize(benchmark(name))
    rebuilt = SynthesisResult.from_dict(original.to_dict())
    assert rebuilt.table1_row() == original.table1_row()
    assert rebuilt.equations().keys() == original.equations().keys()
    for signal, expr in rebuilt.equations().items():
        assert expr.to_string() == original.equations()[signal].to_string()
    assert rebuilt.covers() == original.covers()
    assert rebuilt.describe() == original.describe()
    assert rebuilt.assignment.encoding == original.assignment.encoding
    assert rebuilt.analysis.fl == original.analysis.fl
    assert rebuilt.spec.names == original.spec.names
    assert rebuilt.stage_seconds == original.stage_seconds


def test_rebuilt_result_rebuilds_the_fantom_machine():
    """A deserialised result drives the netlist builder like a live one."""
    from repro.netlist.fantom import build_fantom

    original = api.synthesize(benchmark("lion"))
    rebuilt = SynthesisResult.from_dict(
        json.loads(json.dumps(original.to_dict()))
    )
    machine = build_fantom(rebuilt)
    assert machine.netlist.stats() == build_fantom(original).netlist.stats()


def test_golden_artifacts_deserialise():
    """The golden file's artifacts sections are live wire payloads."""
    for name, payload in GOLDEN.items():
        rebuilt = SynthesisResult.from_dict(payload)
        assert canonical(rebuilt.to_dict()) == json.dumps(
            GOLDEN[name], sort_keys=True
        )


def test_unreduced_table_identity_is_restored():
    """describe() relies on `reduction.table is source` for unreduced
    machines; the round trip must restore that identity."""
    result = api.synthesize(benchmark("lion"))
    assert result.reduction.table is result.source  # lion is minimal
    rebuilt = SynthesisResult.from_dict(result.to_dict())
    assert rebuilt.reduction.table is rebuilt.source


def test_reduced_table_stays_distinct():
    result = api.synthesize(benchmark("test_example"))
    assert result.reduction.table is not result.source
    rebuilt = SynthesisResult.from_dict(result.to_dict())
    assert rebuilt.reduction.table is not rebuilt.source
    assert rebuilt.table.num_states == result.table.num_states


def test_malformed_payload_raises_domain_error():
    with pytest.raises(SynthesisError, match="malformed synthesis-result"):
        SynthesisResult.from_dict({"not": "a result"})
    broken = api.synthesize(benchmark("lion")).to_dict()
    del broken["artifacts"]["fsv"]
    with pytest.raises(SynthesisError, match="malformed synthesis-result"):
        SynthesisResult.from_dict(broken)
