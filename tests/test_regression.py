"""Regression pins: the pipeline is deterministic; hold it to its word.

Every stage of SEANCE is deterministic (sorted iteration orders, seeded
search tie-breaks), so the synthesis of each benchmark must reproduce
bit-identical metrics run over run — and changes to any algorithm that
shift these numbers should be deliberate, reviewed events, not drift.

The values below are the reproduction's published numbers (they also
appear in EXPERIMENTS.md); update them only together with that file.
"""

import pytest

from repro.bench import benchmark
from repro.core.seance import synthesize

#: name -> (fsv depth, Y depth, total depth, |FL|, states after Step 2,
#: state variables)
PINNED = {
    "test_example": (3, 4, 8, 2, 3, 2),
    "traffic": (3, 5, 9, 2, 4, 2),
    "lion": (3, 5, 9, 2, 4, 2),
    "lion9": (3, 5, 9, 15, 9, 4),
    "train11": (3, 5, 9, 13, 11, 5),
    "train4": (3, 5, 9, 2, 4, 2),
    "hazard_demo": (2, 4, 7, 1, 2, 1),
    "dme": (2, 5, 8, 1, 2, 1),
    "parity": (2, 5, 8, 1, 3, 3),
}


@pytest.mark.parametrize("name", sorted(PINNED))
def test_pinned_metrics(name):
    expected = PINNED[name]
    result = synthesize(benchmark(name))
    _, fsv_depth, y_depth, total = result.table1_row()
    observed = (
        fsv_depth,
        y_depth,
        total,
        len(result.analysis.fl),
        result.table.num_states,
        result.assignment.encoding.num_variables,
    )
    assert observed == expected, (
        f"{name}: metrics drifted from the published values "
        f"{expected} -> {observed}; if intentional, update "
        f"tests/test_regression.py and EXPERIMENTS.md together"
    )


def test_synthesis_is_deterministic():
    """Two runs of the same machine produce identical artifacts."""
    first = synthesize(benchmark("lion"))
    second = synthesize(benchmark("lion"))
    assert first.assignment.encoding.codes == second.assignment.encoding.codes
    assert first.analysis.fl == second.analysis.fl
    assert {
        name: expr.to_string() for name, expr in first.equations().items()
    } == {
        name: expr.to_string() for name, expr in second.equations().items()
    }
