"""Unit tests for the Tracey USTT assignment package."""

import itertools

import pytest

from repro.errors import StateAssignmentError
from repro.assign.dichotomy import (
    Dichotomy,
    maximal_merged_dichotomies,
    merge_all,
)
from repro.assign.encoding import StateEncoding
from repro.assign.tracey import assign_states, seed_dichotomies
from repro.assign.verify import is_valid_ustt, ustt_violations
from repro.flowtable.builder import FlowTableBuilder


def gray4():
    b = FlowTableBuilder(inputs=["x1", "x2"], outputs=["z"])
    b.stable("s0", "00", "0").add("s0", "10", "s1").add("s0", "01", "s3")
    b.add("s0", "11", "s2")
    b.stable("s1", "10", "0").add("s1", "11", "s2").add("s1", "00", "s0")
    b.add("s1", "01", "s3")
    b.stable("s2", "11", "1").add("s2", "01", "s3").add("s2", "10", "s1")
    b.add("s2", "00", "s0")
    b.stable("s3", "01", "1").add("s3", "00", "s0").add("s3", "11", "s2")
    b.add("s3", "10", "s1")
    return b.build(reset="s0", name="gray4")


def toggle2():
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b")
    b.stable("b", "1", "1").add("b", "0", "a")
    return b.build(name="toggle2")


def minimal_vars_brute_force(table, max_vars=4):
    """Smallest variable count admitting a valid USTT encoding."""
    states = table.states
    for n in range(1, max_vars + 1):
        space = 1 << n
        if space < len(states):
            continue
        for codes in itertools.permutations(range(space), len(states)):
            encoding = StateEncoding(
                tuple(f"y{i+1}" for i in range(n)),
                dict(zip(states, codes)),
            )
            if is_valid_ustt(table, encoding):
                return n
    raise AssertionError(f"no USTT encoding within {max_vars} variables")


class TestDichotomy:
    def test_rejects_empty_block(self):
        with pytest.raises(StateAssignmentError):
            Dichotomy(frozenset(), frozenset({"a"}))

    def test_rejects_overlap(self):
        with pytest.raises(StateAssignmentError):
            Dichotomy(frozenset({"a"}), frozenset({"a", "b"}))

    def test_reversed_and_canonical(self):
        d = Dichotomy(frozenset({"b"}), frozenset({"a"}))
        assert d.reversed() == Dichotomy(frozenset({"a"}), frozenset({"b"}))
        assert d.canonical().left == frozenset({"a"})

    def test_compatibility_and_merge(self):
        d1 = Dichotomy(frozenset({"a"}), frozenset({"b"}))
        d2 = Dichotomy(frozenset({"c"}), frozenset({"b", "d"}))
        assert d1.compatible(d2)
        merged = d1.merge(d2)
        assert merged.left == frozenset({"a", "c"})
        assert merged.right == frozenset({"b", "d"})

    def test_incompatible_merge_raises(self):
        d1 = Dichotomy(frozenset({"a"}), frozenset({"b"}))
        d2 = Dichotomy(frozenset({"b"}), frozenset({"a"}))
        assert not d1.compatible(d2)
        with pytest.raises(StateAssignmentError):
            d1.merge(d2)

    def test_covers_either_orientation(self):
        big = Dichotomy(frozenset({"a", "c"}), frozenset({"b", "d"}))
        assert big.covers(Dichotomy(frozenset({"a"}), frozenset({"b"})))
        assert big.covers(Dichotomy(frozenset({"b"}), frozenset({"a"})))
        assert not big.covers(Dichotomy(frozenset({"a"}), frozenset({"c"})))

    def test_merge_all(self):
        d1 = Dichotomy(frozenset({"a"}), frozenset({"b"}))
        d2 = Dichotomy(frozenset({"c"}), frozenset({"d"}))
        merged = merge_all([d1, d2])
        assert merged.states == frozenset("abcd")

    def test_maximal_merged_dichotomies_cover_all_seeds(self):
        seeds = [
            Dichotomy(frozenset({"a"}), frozenset({"b"})),
            Dichotomy(frozenset({"c"}), frozenset({"d"})),
            Dichotomy(frozenset({"a"}), frozenset({"d"})),
        ]
        merged = maximal_merged_dichotomies(seeds)
        for seed in seeds:
            assert any(m.covers(seed) for m in merged)


class TestSeedDichotomies:
    def test_transition_pair_seeds_present(self):
        table = gray4()
        seeds = seed_dichotomies(table, uniqueness=False)
        # column 00: moves s0->s0, s1->s0, s2->s0, s3->s0: all same dest,
        # no seeds from that column.
        # column 11: s0->s2, s1->s2, s2->s2, s3->s2: same dest too.
        # column 10: s0->s1, s1->s1, s2->s1, s3->s1: same dest.
        # gray4's diagonal structure makes every column single-destination
        # except... verify at least uniqueness-free seeds behave sanely.
        for seed in seeds:
            assert seed.left.isdisjoint(seed.right)

    def test_uniqueness_seeds_included(self):
        table = toggle2()
        seeds = seed_dichotomies(table, uniqueness=True)
        assert Dichotomy(frozenset({"a"}), frozenset({"b"})) in seeds

    def test_multi_destination_column_seeds(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "0").add("b", "0", "a")
        b.stable("c", "1", "1").add("c", "0", "d")
        b.stable("d", "0", "1").add("d", "1", "c")
        table = b.build(check=False)
        seeds = seed_dichotomies(table, uniqueness=False)
        # column 1: a->b and d->c (and stables b->b, c->c):
        # pairs with different destinations must appear.
        assert any(
            seed.covers(
                Dichotomy(frozenset({"a", "b"}), frozenset({"c", "d"}))
            )
            or Dichotomy(frozenset({"a", "b"}), frozenset({"c", "d"})).covers(seed)
            for seed in seeds
        )


class TestAssignStates:
    def test_gray4_assignment_is_valid(self):
        table = gray4()
        result = assign_states(table)
        assert is_valid_ustt(table, result.encoding)

    def test_toggle2_single_variable(self):
        table = toggle2()
        result = assign_states(table)
        assert result.encoding.num_variables == 1
        assert is_valid_ustt(table, result.encoding)

    def test_minimality_against_brute_force(self):
        for table in [toggle2(), gray4()]:
            result = assign_states(table)
            assert result.encoding.num_variables == minimal_vars_brute_force(
                table
            )

    def test_all_states_coded_uniquely(self):
        result = assign_states(gray4())
        codes = [result.encoding.code(s) for s in gray4().states]
        assert len(set(codes)) == len(codes)

    def test_single_state_machine(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("only", "0", "0").stable("only", "1", "1")
        table = b.build(name="single")
        result = assign_states(table)
        assert result.encoding.num_variables == 1
        assert result.encoding.code("only") == 0


class TestEncoding:
    def test_duplicate_codes_rejected(self):
        with pytest.raises(StateAssignmentError):
            StateEncoding(("y1",), {"a": 0, "b": 0})

    def test_code_out_of_range(self):
        with pytest.raises(StateAssignmentError):
            StateEncoding(("y1",), {"a": 2})

    def test_bits_and_strings(self):
        enc = StateEncoding(("y1", "y2"), {"a": 0b10, "b": 0b01})
        assert enc.bits("a") == (0, 1)
        assert enc.code_string("a") == "01"
        assert enc.bit("a", 1) == 1

    def test_state_of_and_unused(self):
        enc = StateEncoding(("y1", "y2"), {"a": 0, "b": 3})
        assert enc.state_of(0) == "a"
        assert enc.state_of(1) is None
        assert enc.unused_codes() == frozenset({1, 2})

    def test_transition_cube(self):
        enc = StateEncoding(("y1", "y2"), {"a": 0b00, "b": 0b01})
        mask, value = enc.transition_cube("a", "b")
        # codes agree on variable 1 (both 0), differ on variable 0.
        assert mask == 0b10
        assert value == 0b00

    def test_describe_mentions_all_states(self):
        enc = StateEncoding(("y1",), {"a": 0, "b": 1})
        text = enc.describe()
        assert "a: 0" in text and "b: 1" in text


class TestVerify:
    def test_detects_racing_transition_cubes(self):
        # column 1: a->b and c->d; encode so the spanned cubes overlap.
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "0").add("b", "0", "a")
        b.stable("c", "0", "1").add("c", "1", "d")
        b.stable("d", "1", "1").add("d", "0", "c")
        table = b.build(check=False)
        bad = StateEncoding(
            ("y1", "y2"), {"a": 0b00, "b": 0b11, "c": 0b01, "d": 0b10}
        )
        violations = ustt_violations(table, bad)
        assert violations
        assert "intersect" in violations[0]

    def test_valid_encoding_passes(self):
        table = toggle2()
        enc = StateEncoding(("y1",), {"a": 0, "b": 1})
        assert is_valid_ustt(table, enc)
