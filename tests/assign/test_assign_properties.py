"""Hypothesis property tests: Tracey assignment on random normal-mode tables."""

from hypothesis import given, settings

from repro.assign.tracey import assign_states
from repro.assign.verify import is_valid_ustt

from ..strategies import normal_mode_tables


@given(normal_mode_tables(max_states=5, max_inputs=2))
@settings(max_examples=80, deadline=None)
def test_assignment_is_always_valid_ustt(table):
    result = assign_states(table)
    assert is_valid_ustt(table, result.encoding)


@given(normal_mode_tables(max_states=5, max_inputs=2))
@settings(max_examples=80, deadline=None)
def test_assignment_codes_unique_and_in_range(table):
    result = assign_states(table)
    encoding = result.encoding
    codes = [encoding.code(s) for s in table.states]
    assert len(set(codes)) == len(codes)
    assert all(0 <= c < (1 << encoding.num_variables) for c in codes)


@given(normal_mode_tables(max_states=4, max_inputs=2))
@settings(max_examples=60, deadline=None)
def test_every_seed_covered_by_some_chosen_dichotomy(table):
    result = assign_states(table)
    for seed in result.seeds:
        assert any(chosen.covers(seed) for chosen in result.chosen), (
            f"seed {seed} uncovered"
        )
