"""Unit tests for the generic minimum set-cover solver."""

import itertools
import random

import pytest

from repro.errors import CoveringError
from repro.util.setcover import minimum_set_cover


def brute_force_min(universe, candidates):
    for k in range(0, len(candidates) + 1):
        for combo in itertools.combinations(range(len(candidates)), k):
            union = set()
            for i in combo:
                union |= candidates[i]
            if universe <= union:
                return k
    raise AssertionError("not coverable")


class TestBasics:
    def test_empty_universe(self):
        result = minimum_set_cover(set(), [frozenset({1})])
        assert result.chosen == ()
        assert result.exact

    def test_single_candidate(self):
        result = minimum_set_cover({1, 2}, [frozenset({1, 2})])
        assert result.chosen == (0,)

    def test_uncoverable_raises(self):
        with pytest.raises(CoveringError):
            minimum_set_cover({1, 2}, [frozenset({1})])

    def test_essential_forcing(self):
        # element 3 only in candidate 2: it must be chosen.
        candidates = [frozenset({1}), frozenset({2}), frozenset({2, 3})]
        result = minimum_set_cover({1, 2, 3}, candidates)
        assert 2 in result.chosen
        assert len(result.chosen) == 2

    def test_dominated_candidate_ignored(self):
        candidates = [frozenset({1}), frozenset({1, 2}), frozenset({2})]
        result = minimum_set_cover({1, 2}, candidates)
        assert result.chosen == (1,)

    def test_cyclic_cover_exact(self):
        # triangle cover: {a,b},{b,c},{c,a} over {a,b,c}: minimum is 2.
        candidates = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "a"}),
        ]
        result = minimum_set_cover({"a", "b", "c"}, candidates)
        assert len(result.chosen) == 2
        assert result.exact


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        universe = set(range(rng.randint(1, 8)))
        candidates = []
        for _ in range(rng.randint(1, 10)):
            size = rng.randint(1, max(1, len(universe)))
            candidates.append(frozenset(rng.sample(sorted(universe), size)))
        union = set().union(*candidates) if candidates else set()
        if not universe <= union:
            with pytest.raises(CoveringError):
                minimum_set_cover(universe, candidates)
            return
        result = minimum_set_cover(universe, candidates)
        covered = set()
        for i in result.chosen:
            covered |= candidates[i]
        assert universe <= covered
        assert len(result.chosen) == brute_force_min(universe, candidates)


class TestGreedy:
    def test_greedy_mode_still_covers(self):
        universe = set(range(12))
        candidates = [frozenset({i, (i + 1) % 12}) for i in range(12)]
        result = minimum_set_cover(universe, candidates, exact=False)
        covered = set()
        for i in result.chosen:
            covered |= candidates[i]
        assert universe <= covered
        assert not result.exact
