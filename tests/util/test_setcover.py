"""Unit tests for the generic minimum set-cover solver."""

import itertools
import random

import pytest

from repro.errors import CoveringError
from repro.util.setcover import (
    DOMINANCE_LIMIT,
    _undominated_indexed,
    minimum_set_cover,
)


def brute_force_min(universe, candidates):
    for k in range(0, len(candidates) + 1):
        for combo in itertools.combinations(range(len(candidates)), k):
            union = set()
            for i in combo:
                union |= candidates[i]
            if universe <= union:
                return k
    raise AssertionError("not coverable")


class TestBasics:
    def test_empty_universe(self):
        result = minimum_set_cover(set(), [frozenset({1})])
        assert result.chosen == ()
        assert result.exact

    def test_single_candidate(self):
        result = minimum_set_cover({1, 2}, [frozenset({1, 2})])
        assert result.chosen == (0,)

    def test_uncoverable_raises(self):
        with pytest.raises(CoveringError):
            minimum_set_cover({1, 2}, [frozenset({1})])

    def test_essential_forcing(self):
        # element 3 only in candidate 2: it must be chosen.
        candidates = [frozenset({1}), frozenset({2}), frozenset({2, 3})]
        result = minimum_set_cover({1, 2, 3}, candidates)
        assert 2 in result.chosen
        assert len(result.chosen) == 2

    def test_dominated_candidate_ignored(self):
        candidates = [frozenset({1}), frozenset({1, 2}), frozenset({2})]
        result = minimum_set_cover({1, 2}, candidates)
        assert result.chosen == (1,)

    def test_cyclic_cover_exact(self):
        # triangle cover: {a,b},{b,c},{c,a} over {a,b,c}: minimum is 2.
        candidates = [
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "a"}),
        ]
        result = minimum_set_cover({"a", "b", "c"}, candidates)
        assert len(result.chosen) == 2
        assert result.exact


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        universe = set(range(rng.randint(1, 8)))
        candidates = []
        for _ in range(rng.randint(1, 10)):
            size = rng.randint(1, max(1, len(universe)))
            candidates.append(frozenset(rng.sample(sorted(universe), size)))
        union = set().union(*candidates) if candidates else set()
        if not universe <= union:
            with pytest.raises(CoveringError):
                minimum_set_cover(universe, candidates)
            return
        result = minimum_set_cover(universe, candidates)
        covered = set()
        for i in result.chosen:
            covered |= candidates[i]
        assert universe <= covered
        assert len(result.chosen) == brute_force_min(universe, candidates)


def quadratic_undominated(live, useful):
    """The direct all-pairs predicate the indexed elimination replaces."""
    out = []
    for i in live:
        ui = useful[i]
        dominated = any(
            ui | useful[j] == useful[j] and (ui != useful[j] or j < i)
            for j in live
            if j != i
        )
        if not dominated:
            out.append(i)
    return out


class TestDominanceIndex:
    """`_undominated_indexed` computes exactly the quadratic survivors."""

    @pytest.mark.parametrize("seed", range(30))
    def test_matches_quadratic_predicate(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 18)  # universe bits
        count = rng.randint(1, 80)
        live = sorted(rng.sample(range(3 * count), count))
        useful = {
            i: rng.getrandbits(n) | 1 << rng.randrange(n) for i in live
        }
        assert _undominated_indexed(live, useful) == quadratic_undominated(
            live, useful
        )

    def test_duplicates_keep_lowest_index(self):
        live = [2, 5, 9]
        useful = {2: 0b011, 5: 0b011, 9: 0b011}
        assert _undominated_indexed(live, useful) == [2]

    def test_subset_chains_collapse_to_maximal(self):
        live = list(range(4))
        useful = {0: 0b0001, 1: 0b0011, 2: 0b0111, 3: 0b1000}
        assert _undominated_indexed(live, useful) == [2, 3]

    def test_incomparable_masks_all_survive(self):
        live = list(range(3))
        useful = {0: 0b011, 1: 0b110, 2: 0b101}
        assert _undominated_indexed(live, useful) == live

    def test_above_limit_instance_same_cover_as_forced_quadratic(
        self, monkeypatch
    ):
        # Enough candidates to cross DOMINANCE_LIMIT and engage the
        # index inside minimum_set_cover; the chosen cover must match a
        # run with the limit raised out of reach (quadratic path).
        rng = random.Random(17)
        universe = set(range(16))
        candidates = []
        while len(candidates) <= DOMINANCE_LIMIT:
            size = rng.randint(1, 6)
            candidates.append(frozenset(rng.sample(sorted(universe), size)))
        indexed = minimum_set_cover(universe, candidates)

        import repro.util.setcover as sc

        monkeypatch.setattr(sc, "DOMINANCE_LIMIT", len(candidates) + 1)
        quadratic = minimum_set_cover(universe, candidates)
        assert indexed == quadratic
        covered = set()
        for i in indexed.chosen:
            covered |= candidates[i]
        assert universe <= covered


class TestGreedy:
    def test_greedy_mode_still_covers(self):
        universe = set(range(12))
        candidates = [frozenset({i, (i + 1) % 12}) for i in range(12)]
        result = minimum_set_cover(universe, candidates, exact=False)
        covered = set()
        for i in result.chosen:
            covered |= candidates[i]
        assert universe <= covered
        assert not result.exact
