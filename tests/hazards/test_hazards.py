"""Unit tests for the hazard-theory package."""

import pytest

from repro.flowtable.builder import FlowTableBuilder
from repro.hazards.essential import essential_hazards, has_essential_hazards
from repro.hazards.function_hazards import (
    changing_bits,
    function_hazard_transitions,
    has_dynamic_function_hazard,
    has_function_hazard,
    has_static_function_hazard,
    max_value_changes,
    transition_vertices,
)
from repro.hazards.logic_hazards import (
    is_sic_hazard_free,
    mic_static_one_hazard,
    static_one_hazards,
)
from repro.hazards.races import critical_races, find_races, is_critical_race_free
from repro.assign.encoding import StateEncoding
from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction
from repro.logic.quine_mccluskey import all_primes_cover


class TestTransitionGeometry:
    def test_changing_bits(self):
        assert changing_bits(0b000, 0b101) == [0, 2]
        assert changing_bits(5, 5) == []

    def test_transition_vertices(self):
        vertices = transition_vertices(0b00, 0b11)
        assert sorted(vertices) == [0, 1, 2, 3]

    def test_vertices_fix_unchanged_bits(self):
        vertices = transition_vertices(0b100, 0b101)
        assert sorted(vertices) == [0b100, 0b101]


class TestFunctionHazards:
    def test_xor_transition_static_hazard(self):
        # f = XOR: f(00) = f(11) = 0 but intermediates are 1.
        f = BooleanFunction(("a", "b"), on=frozenset({0b01, 0b10}))
        assert has_static_function_hazard(f, 0b00, 0b11)
        assert has_function_hazard(f, 0b00, 0b11)

    def test_monotone_function_no_hazard(self):
        # f = a OR b: along 00 -> 11 the value rises once.
        f = BooleanFunction(("a", "b"), on=frozenset({0b01, 0b10, 0b11}))
        assert not has_static_function_hazard(f, 0b00, 0b11)
        assert not has_dynamic_function_hazard(f, 0b00, 0b11)

    def test_dynamic_hazard_three_bits(self):
        # f(000)=0, f(111)=1 but a path may bounce: choose values so one
        # ordering goes 0 -> 1 -> 0 -> 1.
        on = {0b001, 0b111, 0b100, 0b110}
        f = BooleanFunction(("a", "b", "c"), on=frozenset(on))
        assert has_dynamic_function_hazard(f, 0b000, 0b111)

    def test_max_value_changes_counts_worst_ordering(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b01, 0b10}))
        assert max_value_changes(f, 0b00, 0b11) == 2

    def test_dont_cares_are_benign(self):
        # intermediate vertices unspecified: resolvable hazard-free.
        f = BooleanFunction(
            ("a", "b"), on=frozenset({0b00, 0b11}), dc=frozenset({0b01, 0b10})
        )
        assert not has_static_function_hazard(f, 0b00, 0b11)

    def test_single_bit_change_never_function_hazard(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b01}))
        assert not has_function_hazard(f, 0b00, 0b01)

    def test_enumeration(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b01, 0b10}))
        assert (0b00, 0b11) in function_hazard_transitions(f)


class TestLogicHazards:
    def test_minimal_cover_of_consensus_function_has_hazard(self):
        # f = a·b + a'·c, minimal cover misses the consensus b·c:
        # transition between minterms 011 (a'bc... wait bit0=a) kept
        # abstract: check by construction.
        cubes = [Cube.from_string("11-"), Cube.from_string("0-1")]
        hazards = static_one_hazards(cubes, 3)
        assert hazards, "expected the classic consensus hazard"
        assert not is_sic_hazard_free(cubes, 3)

    def test_all_primes_cover_is_hazard_free(self):
        f = BooleanFunction.from_cubes(
            ("a", "b", "c"),
            on_cubes=[Cube.from_string("11-"), Cube.from_string("0-1")],
        )
        cover = all_primes_cover(f)
        assert is_sic_hazard_free(cover, 3)

    def test_mic_hazard_needs_single_spanning_cube(self):
        # whole square 00-11 covered, but by two cubes: MIC hazard.
        cubes = [Cube.from_string("1-"), Cube.from_string("01")]
        # vertices all covered? 1-: {1,3}; 01: {2}; 00 missing -> use 0-
        cubes = [Cube.from_string("1-"), Cube.from_string("0-")]
        assert mic_static_one_hazard(cubes, 0b00, 0b11)
        assert not mic_static_one_hazard([Cube.from_string("--")], 0b00, 0b11)

    def test_mic_hazard_rejects_uncovered_cube(self):
        with pytest.raises(ValueError):
            mic_static_one_hazard([Cube.from_string("11")], 0b00, 0b11)


def essential_hazard_table():
    """Textbook d-trio: toggling x once vs three times diverges.

    Column x=1 sends a->b; back at x=0 b->c; x=1 again c->d (stable d).
    So one change of x settles in b, three changes settle in d.
    """
    builder = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    builder.stable("a", "0", "0").add("a", "1", "b")
    builder.stable("b", "1", "0").add("b", "0", "c")
    builder.stable("c", "0", "1").add("c", "1", "d")
    builder.stable("d", "1", "1").add("d", "0", "c")
    return builder.build(check=False, name="dtrio")


class TestEssentialHazards:
    def test_dtrio_detected(self):
        table = essential_hazard_table()
        hazards = essential_hazards(table)
        assert any(h.state == "a" and h.input_index == 0 for h in hazards)
        assert has_essential_hazards(table)

    def test_toggle_free_table(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "a")
        table = b.build(name="toggle")
        assert essential_hazards(table) == []

    def test_describe(self):
        table = essential_hazard_table()
        hazard = essential_hazards(table)[0]
        assert "essential hazard" in hazard.describe(table)


class TestRaces:
    def race_table(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "d")
        b.stable("b", "1", "0").add("b", "0", "a")
        b.stable("c", "0", "1").add("c", "1", "d")
        b.stable("d", "1", "1").add("d", "0", "c")
        return b.build(check=False, name="racy")

    def test_critical_race_detected(self):
        table = self.race_table()
        # a=00 -> d=11 in column 1 passes through 01 or 10; give 01 to b,
        # whose column-1 entry is stable b (not d) -> critical.
        enc = StateEncoding(
            ("y1", "y2"), {"a": 0b00, "b": 0b01, "c": 0b10, "d": 0b11}
        )
        races = find_races(table, enc)
        assert races
        assert critical_races(table, enc)
        assert not is_critical_race_free(table, enc)

    def test_benign_exposure_not_critical(self):
        table = self.race_table()
        # choose codes so intermediate codes are unused.
        enc = StateEncoding(
            ("y1", "y2", "y3"),
            {"a": 0b000, "b": 0b010, "c": 0b111, "d": 0b101},
        )
        # a(000) -> d(101): intermediates 001 and 100 are unused codes.
        races = [
            r for r in find_races(table, enc) if r.state == "a"
        ]
        assert races
        assert all(not r.critical for r in races)

    def test_single_bit_transitions_have_no_races(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "a")
        table = b.build(name="toggle")
        enc = StateEncoding(("y1",), {"a": 0, "b": 1})
        assert find_races(table, enc) == []
