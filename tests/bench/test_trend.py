"""The trend-gate median logic in :mod:`benchmarks.trend`.

The scheduled CI job feeds downloaded per-commit rows through
``trend.py --gate``; these tests pin the decision procedure — what
counts as a sustained regression, what a single noisy commit does, and
how new or sparse series are treated.
"""

import json
import subprocess
import sys
from pathlib import Path

BENCHMARKS = Path(__file__).resolve().parent.parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import trend


def rows_of(*suite_seconds: float) -> list[dict]:
    return [
        {"sha": f"c{i}", "logic_suite_seconds": s}
        for i, s in enumerate(suite_seconds)
    ]


class TestGateFailures:
    def test_flat_series_passes(self):
        assert trend.gate_failures(rows_of(1.0, 1.0, 1.0, 1.0, 1.0)) == []

    def test_sustained_regression_fails(self):
        rows = rows_of(1.0, 1.0, 1.0, 1.5, 1.5, 1.5)
        failures = trend.gate_failures(rows)
        assert failures == [("logic_suite_seconds", 1.5, 1.0)]

    def test_single_noisy_commit_is_invisible(self):
        # One 10x spike inside the window: the median of the newest 3
        # is still on-trend, so the gate stays green.
        rows = rows_of(1.0, 1.0, 1.0, 1.0, 10.0, 1.0)
        assert trend.gate_failures(rows) == []

    def test_below_threshold_drift_passes(self):
        rows = rows_of(1.0, 1.0, 1.0, 1.15, 1.15, 1.15)
        assert trend.gate_failures(rows, threshold=0.20) == []
        assert trend.gate_failures(rows, threshold=0.10)

    def test_improvement_never_fails(self):
        rows = rows_of(2.0, 2.0, 2.0, 1.0, 1.0, 1.0)
        assert trend.gate_failures(rows) == []

    def test_speedup_fields_are_not_gated(self):
        # Speedups go *down* when things regress; only *_seconds series
        # are time-like, so a collapsing speedup alone never trips the
        # median gate (the single-commit --check floors own that).
        rows = [
            {"sha": f"c{i}", "sim_ring_speedup": s}
            for i, s in enumerate((4.0, 4.0, 4.0, 1.0, 1.0, 1.0))
        ]
        assert trend.gate_failures(rows) == []

    def test_new_series_needs_history(self):
        # A benchmark tier that only exists in the newest rows has no
        # baseline — it must not fail (or crash) the gate.
        rows = rows_of(1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
        for row in rows[-3:]:
            row["sim_ring_seconds"] = 9.9
        assert trend.gate_failures(rows) == []

    def test_sparse_series_uses_available_points(self):
        # Rows that miss a point contribute nothing; the series still
        # gates once >= window recent points and any baseline exist.
        rows = rows_of(1.0, 1.0, 1.0, 1.5, 1.5, 1.5)
        del rows[1]["logic_suite_seconds"]
        failures = trend.gate_failures(rows)
        assert failures == [("logic_suite_seconds", 1.5, 1.0)]

    def test_per_width_and_per_pass_labels_gate_independently(self):
        rows = []
        for i in range(6):
            late = i >= 3
            rows.append(
                {
                    "sha": f"c{i}",
                    "logic_width_seconds": {
                        "12": 0.03,
                        "24": 0.4 if late else 0.1,
                    },
                    "batch_pass_seconds": {
                        "assign": 0.02,
                        "cover": 0.09 if late else 0.05,
                    },
                }
            )
        names = [name for name, _, _ in trend.gate_failures(rows)]
        assert names == [
            "batch_pass_seconds[cover]",
            "logic_width_seconds[24]",
        ]

    def test_zero_baseline_is_skipped(self):
        rows = rows_of(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
        assert trend.gate_failures(rows) == []


class TestOrdering:
    def test_rows_sorted_by_order_stamp(self, tmp_path):
        paths = []
        for i, (order, s) in enumerate([(3, 9.0), (1, 1.0), (2, 2.0)]):
            p = tmp_path / f"row{i}.json"
            p.write_text(
                json.dumps(
                    {"sha": f"c{order}", "order": order, "x_seconds": s}
                )
            )
            paths.append(str(p))
        rows = trend.ordered_rows(paths)
        assert [row["sha"] for row in rows] == ["c1", "c2", "c3"]

    def test_argument_order_kept_without_stamps(self, tmp_path):
        paths = []
        for i in range(3):
            p = tmp_path / f"row{i}.json"
            p.write_text(json.dumps({"sha": f"c{i}"}))
            paths.append(str(p))
        rows = trend.ordered_rows(list(reversed(paths)))
        assert [row["sha"] for row in rows] == ["c2", "c1", "c0"]


class TestCommandLine:
    """End-to-end through the CLI, exactly as the scheduled job runs it."""

    def _run(self, tmp_path, series, extra=()):
        paths = []
        for i, s in enumerate(series):
            p = tmp_path / f"row{i}.json"
            p.write_text(
                json.dumps(
                    {"sha": f"c{i}", "order": i, "logic_suite_seconds": s}
                )
            )
            paths.append(str(p))
        return subprocess.run(
            [
                sys.executable,
                str(BENCHMARKS / "trend.py"),
                "--gate",
                *paths,
                *extra,
            ],
            capture_output=True,
            text=True,
        )

    def test_gate_green(self, tmp_path):
        result = self._run(tmp_path, (1.0, 1.0, 1.0, 1.0, 1.0, 1.0))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ok: no sustained regression" in result.stdout

    def test_gate_red(self, tmp_path):
        result = self._run(tmp_path, (1.0, 1.0, 1.0, 1.6, 1.6, 1.6))
        assert result.returncode == 1
        assert "FAIL: logic_suite_seconds" in result.stdout

    def test_too_few_rows_pass(self, tmp_path):
        result = self._run(tmp_path, (1.0, 1.6))
        assert result.returncode == 0
        assert "nothing to compare yet" in result.stdout
