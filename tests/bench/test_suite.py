"""Tests for the benchmark suite: structure, fidelity and irreducibility."""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    TABLE1_BENCHMARKS,
    benchmark,
    benchmark_names,
    kiss_source,
    load_all,
)
from repro.flowtable.kiss import parse_kiss
from repro.flowtable.validation import validate
from repro.minimize.compatibility import compute_compatibility


class TestCatalogue:
    def test_table1_names_present(self):
        names = benchmark_names()
        for name in TABLE1_BENCHMARKS:
            assert name in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark("nonexistent")

    def test_load_all(self):
        tables = load_all()
        assert set(tables) == set(benchmark_names())

    def test_paper_values_cover_table1(self):
        assert set(PAPER_TABLE1) == set(TABLE1_BENCHMARKS)


class TestShapes:
    """State/input/output counts must match the MCNC originals."""

    @pytest.mark.parametrize(
        "name,states,inputs,outputs",
        [
            ("lion", 4, 2, 1),
            ("lion9", 9, 2, 1),
            ("train11", 11, 2, 1),
            ("train4", 4, 2, 1),
            ("test_example", 4, 2, 1),
            ("traffic", 4, 2, 2),
            ("hazard_demo", 2, 2, 1),
            ("dme", 3, 2, 1),
            ("parity", 6, 2, 1),
        ],
    )
    def test_counts(self, name, states, inputs, outputs):
        table = benchmark(name)
        assert table.num_states == states
        assert table.num_inputs == inputs
        assert table.num_outputs == outputs

    def test_all_validate(self):
        for name, table in load_all().items():
            validate(table)  # normal mode, connectivity, restability

    def test_all_have_reset_states(self):
        for name, table in load_all().items():
            assert table.reset_state is not None, name


class TestMultipleInputChanges:
    """Every machine must exercise the paper's subject matter."""

    def test_all_have_mic_transitions(self):
        for name, table in load_all().items():
            mic = list(table.transitions(min_input_distance=2))
            assert mic, f"{name} has no multiple-input changes"

    def test_incompletely_specified_members_exist(self):
        # the paper stresses SEANCE handles incomplete specification;
        # lion and test_example must exercise it.
        lion = benchmark("lion")
        unspecified = [
            (s, c)
            for s in lion.states
            for c in lion.columns
            if not lion.is_specified(s, c)
        ]
        assert unspecified


class TestIrreducibility:
    """Table-1 machines are observationally minimal, like the originals
    (test_example is the deliberate exception — it exercises Step 2)."""

    @pytest.mark.parametrize(
        "name", ["lion", "lion9", "train11", "traffic", "train4"]
    )
    def test_no_compatible_pairs(self, name):
        table = benchmark(name)
        result = compute_compatibility(table)
        assert result.compatible_pairs == frozenset(), (
            f"{name} has mergeable states: "
            f"{sorted(result.compatible_pairs)}"
        )

    def test_test_example_reduces(self):
        table = benchmark("test_example")
        result = compute_compatibility(table)
        assert ("done", "req") in result.compatible_pairs


class TestKissSources:
    def test_kiss_roundtrip(self):
        for name in benchmark_names():
            text = kiss_source(name)
            table = parse_kiss(text, name=name)
            original = benchmark(name)
            assert table.num_states == original.num_states
            assert table.num_inputs == original.num_inputs

    def test_generated_sources_declare_counts(self):
        text = kiss_source("lion9")
        assert ".i 2" in text
        assert ".s 9" in text
