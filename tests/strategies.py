"""Shared hypothesis strategies for flow-table-level property tests.

Also home of :func:`cached_synthesize`, the session-scoped stage-cached
synthesis the property suites route through: hypothesis re-synthesises
the same (shrunk) tables constantly, and the content-hash
:class:`~repro.pipeline.cache.StageCache` makes every repeat nearly
free (``benchmarks/bench_runtime.py`` measures the speedup and records
it in ``BENCH_pipeline.json``).  Set ``REPRO_TEST_CACHE=off`` to run
the suites uncached (e.g. when debugging a suspected cache soundness
issue).
"""

import os

from hypothesis import strategies as st

from repro.api import PipelineSpec
from repro.flowtable.table import Entry, FlowTable
from repro.pipeline import StageCache

#: One cache for the whole test session; keys are content hashes of
#: (table, options, pass lineage), so sharing across tests is sound.
_SESSION_CACHE = (
    None if os.environ.get("REPRO_TEST_CACHE") == "off" else StageCache()
)


def cached_synthesize(table, options=None):
    """Synthesise through the session-shared stage cache."""
    manager = PipelineSpec().build_manager(cache=_SESSION_CACHE)
    return manager.run(table, options)


@st.composite
def normal_mode_tables(
    draw,
    min_states: int = 2,
    max_states: int = 5,
    min_inputs: int = 1,
    max_inputs: int = 3,
    num_outputs: int = 1,
    allow_unspecified: bool = True,
):
    """Random normal-mode flow tables.

    Construction guarantees normal mode by first choosing, per column, a
    non-empty set of stable states, then pointing every other specified
    entry at one of them.  Every state is made stable in at least one
    column (re-drawing the column sets until that holds).  Strong
    connectivity is NOT guaranteed — tests that need it should filter.
    """
    num_states = draw(st.integers(min_states, max_states))
    num_inputs = draw(st.integers(min_inputs, max_inputs))
    states = tuple(f"s{i}" for i in range(num_states))
    inputs = tuple(f"x{i + 1}" for i in range(num_inputs))
    outputs = tuple(f"z{i + 1}" for i in range(num_outputs))
    num_columns = 1 << num_inputs

    # Stable sets per column; redraw until every state is stable somewhere.
    stable_sets = []
    for column in range(num_columns):
        subset = draw(
            st.sets(st.sampled_from(states), min_size=1, max_size=num_states)
        )
        stable_sets.append(frozenset(subset))
    uncovered = set(states) - set().union(*stable_sets)
    for state in sorted(uncovered):
        column = draw(st.integers(0, num_columns - 1))
        stable_sets[column] = stable_sets[column] | {state}

    entries = {}
    for column in range(num_columns):
        stable_here = sorted(stable_sets[column])
        for state in states:
            if state in stable_sets[column]:
                out_bits = tuple(
                    draw(st.sampled_from([0, 1])) for _ in outputs
                )
                entries[(state, column)] = Entry(state, out_bits)
                continue
            if allow_unspecified and draw(st.booleans()):
                continue  # unspecified cell
            dest = draw(st.sampled_from(stable_here))
            out_bits = tuple(
                draw(st.sampled_from([0, 1, None])) for _ in outputs
            )
            entries[(state, column)] = Entry(dest, out_bits)
    return FlowTable(inputs, outputs, states, entries, name="random")
