"""Hypothesis property tests for the two-level logic engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cover import minimal_cover
from repro.logic.cube import Cube
from repro.logic.expr import expr_truth, sop_to_expr
from repro.logic.factor import bridge_consensus, first_level
from repro.logic.function import BooleanFunction
from repro.logic.quine_mccluskey import all_primes_cover, prime_implicants


@st.composite
def functions(draw, max_width=5):
    width = draw(st.integers(min_value=1, max_value=max_width))
    space = 1 << width
    values = draw(
        st.lists(
            st.sampled_from([0, 1, None]), min_size=space, max_size=space
        )
    )
    on = frozenset(m for m, v in enumerate(values) if v == 1)
    dc = frozenset(m for m, v in enumerate(values) if v is None)
    names = tuple(f"v{i}" for i in range(width))
    return BooleanFunction(names, on, dc)


@st.composite
def cubes_pair(draw, width=4):
    def one():
        text = "".join(draw(st.sampled_from("01-")) for _ in range(width))
        return Cube.from_string(text)

    return one(), one()


@given(functions())
@settings(max_examples=150, deadline=None)
def test_primes_contain_no_off_minterm(f):
    for prime in prime_implicants(f.on, f.dc, f.width):
        for m in prime.minterms():
            assert m not in f.off


@given(functions())
@settings(max_examples=150, deadline=None)
def test_primes_are_maximal(f):
    primes = prime_implicants(f.on, f.dc, f.width)
    prime_set = set(primes)
    for prime in primes:
        # Freeing any bound variable must leave the care set.
        for var in range(f.width):
            if prime.literal(var) is None:
                continue
            bigger = prime.drop(var)
            assert any(m in f.off for m in bigger.minterms()), (
                f"{prime} expandable on {var}, not prime"
            )
        assert prime in prime_set


@given(functions())
@settings(max_examples=120, deadline=None)
def test_minimal_cover_is_valid(f):
    result = minimal_cover(f)
    assert f.is_cover(result.cubes)
    assert f.cover_equals_on_care_set(result.cubes)


@given(functions())
@settings(max_examples=100, deadline=None)
def test_all_primes_cover_is_single_change_hazard_free(f):
    cover = all_primes_cover(f)
    assert f.is_cover(cover)
    covered = {m for c in cover for m in c.minterms()}
    for m in f.on:
        for bit in range(f.width):
            other = m ^ (1 << bit)
            if other in f.on:
                assert any(c.contains(m) and c.contains(other) for c in cover)
    # Every covered minterm is on or dc.
    assert covered <= f.on | f.dc


@given(functions(max_width=4))
@settings(max_examples=100, deadline=None)
def test_sop_expr_matches_cover(f):
    cover = minimal_cover(f).cubes
    expr = sop_to_expr(cover, f.names)
    table = expr_truth(expr, f.names)
    for m in range(f.space):
        spec = f.value(m)
        if spec is not None:
            assert table[m] == spec


@given(functions(max_width=4))
@settings(max_examples=100, deadline=None)
def test_first_level_preserves_truth(f):
    cover = minimal_cover(f).cubes
    expr = sop_to_expr(cover, f.names)
    converted = first_level(expr)
    assert expr_truth(expr, f.names) == expr_truth(converted, f.names)
    assert not any(neg for _, neg in converted.literals())


@given(cubes_pair())
@settings(max_examples=200, deadline=None)
def test_consensus_is_implicant_of_union(pair):
    a, b = pair
    c = a.consensus(b)
    if c is not None:
        for m in c.minterms():
            assert a.contains(m) or b.contains(m)


@given(cubes_pair())
@settings(max_examples=200, deadline=None)
def test_supercube_contains_both(pair):
    a, b = pair
    s = a.supercube(b)
    assert s.contains_cube(a)
    assert s.contains_cube(b)


@given(cubes_pair())
@settings(max_examples=200, deadline=None)
def test_intersect_agrees_with_minterm_sets(pair):
    a, b = pair
    inter = a.intersect(b)
    set_a = set(a.minterms())
    set_b = set(b.minterms())
    if inter is None:
        assert not (set_a & set_b)
    else:
        assert set(inter.minterms()) == set_a & set_b


@given(
    st.lists(
        st.text(alphabet="01-", min_size=4, max_size=4).map(Cube.from_string),
        min_size=1,
        max_size=6,
    ),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=150, deadline=None)
def test_bridge_consensus_preserves_function(cubes, pivot):
    bridged = bridge_consensus(cubes, pivot)
    before = {m for c in cubes for m in c.minterms()}
    after = {m for c in bridged for m in c.minterms()}
    assert before == after
