"""Unit tests for repro.logic.function."""

import pytest

from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction, truth_table


def xor2() -> BooleanFunction:
    return BooleanFunction(("a", "b"), on=frozenset({0b01, 0b10}))


class TestConstruction:
    def test_basic(self):
        f = xor2()
        assert f.width == 2
        assert f.space == 4
        assert f.off == frozenset({0b00, 0b11})

    def test_rejects_overlapping_sets(self):
        with pytest.raises(ValueError):
            BooleanFunction(("a",), on=frozenset({1}), dc=frozenset({1}))

    def test_rejects_out_of_range_minterm(self):
        with pytest.raises(ValueError):
            BooleanFunction(("a",), on=frozenset({2}))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            BooleanFunction(("a", "a"))

    def test_rejects_too_wide(self):
        from repro.logic.function import MAX_WIDTH

        with pytest.raises(ValueError):
            BooleanFunction(tuple(f"v{i}" for i in range(MAX_WIDTH + 1)))

    def test_accepts_wide_chunked_width(self):
        # Widths above DENSE_WIDTH_LIMIT (but within MAX_WIDTH) are valid
        # and use the chunked-mask representation.
        f = BooleanFunction(
            tuple(f"v{i}" for i in range(23)), on=frozenset({0, 5_000_000})
        )
        assert f.wide
        assert f.on_mask.bit_count() == 2

    def test_constant(self):
        one = BooleanFunction.constant(("a", "b"), 1)
        zero = BooleanFunction.constant(("a", "b"), 0)
        assert one.on == frozenset(range(4))
        assert zero.on == frozenset()
        assert zero.off == frozenset(range(4))

    def test_from_cubes(self):
        f = BooleanFunction.from_cubes(
            ("a", "b", "c"),
            on_cubes=[Cube.from_string("1--")],
            dc_cubes=[Cube.from_string("-1-")],
        )
        assert f.value(0b001) == 1
        # dc cube does not demote on-set minterms
        assert f.value(0b011) == 1
        assert f.value(0b010) is None
        assert f.value(0b000) == 0

    def test_from_cubes_width_mismatch(self):
        with pytest.raises(ValueError):
            BooleanFunction.from_cubes(("a",), on_cubes=[Cube.from_string("1-")])


class TestQueries:
    def test_value(self):
        f = BooleanFunction(("a", "b"), on=frozenset({1}), dc=frozenset({2}))
        assert f.value(1) == 1
        assert f.value(2) is None
        assert f.value(0) == 0
        with pytest.raises(ValueError):
            f.value(4)

    def test_encode_decode_roundtrip(self):
        f = xor2()
        for m in range(4):
            assert f.encode(f.decode(m)) == m

    def test_encode_bit_order(self):
        f = BooleanFunction(("a", "b", "c"))
        # variable i is bit i: a=1,b=0,c=1 -> 0b101
        assert f.encode({"a": 1, "b": 0, "c": 1}) == 0b101

    def test_encode_missing_var(self):
        with pytest.raises(ValueError):
            xor2().encode({"a": 1})

    def test_value_at(self):
        assert xor2().value_at({"a": 1, "b": 0}) == 1
        assert xor2().value_at({"a": 1, "b": 1}) == 0

    def test_var_index(self):
        f = xor2()
        assert f.var_index("b") == 1
        with pytest.raises(ValueError):
            f.var_index("zzz")


class TestCoverRelations:
    def test_is_implicant(self):
        f = xor2()
        assert f.is_implicant(Cube.from_string("10"))  # a=1,b=0 -> on
        assert not f.is_implicant(Cube.from_string("1-"))  # hits 11 (off)

    def test_is_cover(self):
        f = xor2()
        good = [Cube.from_string("10"), Cube.from_string("01")]
        assert f.is_cover(good)
        assert not f.is_cover([Cube.from_string("10")])  # misses 01
        assert not f.is_cover([Cube.from_string("1-")])  # hits off-set

    def test_cover_with_dc_flexibility(self):
        # dc minterm 0b01 is (a=1, b=0), so the cube a=1 ("1-") is usable.
        f = BooleanFunction(("a", "b"), on=frozenset({0b11}), dc=frozenset({0b01}))
        assert f.is_cover([Cube.from_string("1-")])

    def test_cover_equals_on_care_set(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b11}), dc=frozenset({0b01}))
        assert f.cover_equals_on_care_set([Cube.from_string("1-")])
        assert not f.cover_equals_on_care_set([Cube.from_string("--")])


class TestAlgebra:
    def test_complement(self):
        f = BooleanFunction(("a", "b"), on=frozenset({1}), dc=frozenset({2}))
        g = f.complement()
        assert g.on == frozenset({0, 3})
        assert g.dc == frozenset({2})
        assert g.complement().on == f.on

    def test_specify(self):
        f = BooleanFunction(("a",), dc=frozenset({0, 1}))
        g = f.specify(0, 1).specify(1, 0)
        assert g.value(0) == 1
        assert g.value(1) == 0

    def test_fill_dc(self):
        f = BooleanFunction(("a", "b"), on=frozenset({1}), dc=frozenset({2}))
        assert f.fill_dc(1).on == frozenset({1, 2})
        assert f.fill_dc(0).on == frozenset({1})
        assert f.fill_dc(0).dc == frozenset()

    def test_cofactor(self):
        # f = a XOR b; f|a=1 = b'
        f = xor2()
        g = f.cofactor("a", 1)
        assert g.names == ("b",)
        assert g.value(0) == 1
        assert g.value(1) == 0

    def test_cofactor_middle_variable_squeeze(self):
        # f over (a, b, c) with on = {a=1,b=1,c=0 -> 0b011}; cofactor b=1
        f = BooleanFunction(("a", "b", "c"), on=frozenset({0b011}))
        g = f.cofactor("b", 1)
        assert g.names == ("a", "c")
        # a=1, c=0 -> minterm 0b01
        assert g.value(0b01) == 1

    def test_rename(self):
        f = xor2().rename({"a": "x1"})
        assert f.names == ("x1", "b")
        assert f.on == xor2().on


def test_truth_table():
    assert truth_table(xor2()) == [0, 1, 1, 0]
    f = BooleanFunction(("a",), on=frozenset({1}), dc=frozenset({0}))
    assert truth_table(f) == [None, 1]
