"""Unit tests for repro.logic.cube."""

import pytest

from repro.logic.cube import Cube, cover_contains, remove_contained


class TestConstruction:
    def test_from_string_roundtrip(self):
        for text in ["", "0", "1", "-", "10-", "-01-", "1111", "0000", "--"]:
            assert Cube.from_string(text).to_string() == text

    def test_from_string_rejects_bad_char(self):
        with pytest.raises(ValueError):
            Cube.from_string("10z")

    def test_from_string_accepts_x_as_dc(self):
        assert Cube.from_string("1x0") == Cube.from_string("1-0")

    def test_from_minterm(self):
        cube = Cube.from_minterm(5, 3)
        assert cube.to_string() == "101"
        assert list(cube.minterms()) == [5]

    def test_from_minterm_out_of_range(self):
        with pytest.raises(ValueError):
            Cube.from_minterm(8, 3)

    def test_universe(self):
        cube = Cube.universe(3)
        assert cube.to_string() == "---"
        assert cube.size == 8

    def test_from_bits(self):
        cube = Cube.from_bits({0: 1, 2: 0}, 4)
        assert cube.to_string() == "1-0-"

    def test_from_bits_rejects_out_of_range_var(self):
        with pytest.raises(ValueError):
            Cube.from_bits({4: 1}, 4)

    def test_value_canonicalised_under_mask(self):
        # Bits of `value` outside `mask` must not affect equality.
        a = Cube(3, 0b001, 0b001)
        b = Cube(3, 0b001, 0b011)  # junk bit outside the mask
        assert a == b

    def test_mask_outside_width_rejected(self):
        with pytest.raises(ValueError):
            Cube(2, 0b100, 0)


class TestQueries:
    def test_literal(self):
        cube = Cube.from_string("1-0")
        assert cube.literal(0) == 1
        assert cube.literal(1) is None
        assert cube.literal(2) == 0

    def test_counts(self):
        cube = Cube.from_string("1--0")
        assert cube.num_literals == 2
        assert cube.num_free == 2
        assert cube.size == 4

    def test_contains_minterm(self):
        cube = Cube.from_string("1-0")
        # variable 0 = 1, variable 2 = 0 -> minterms 0b001 and 0b011.
        assert cube.contains(0b001)
        assert cube.contains(0b011)
        assert not cube.contains(0b000)
        assert not cube.contains(0b101)

    def test_minterms_enumeration(self):
        cube = Cube.from_string("-0-")
        assert sorted(cube.minterms()) == [0b000, 0b001, 0b100, 0b101]

    def test_contains_cube(self):
        big = Cube.from_string("1--")
        small = Cube.from_string("1-0")
        assert big.contains_cube(small)
        assert not small.contains_cube(big)
        assert big.contains_cube(big)

    def test_intersects(self):
        assert Cube.from_string("1-").intersects(Cube.from_string("-0"))
        assert not Cube.from_string("1-").intersects(Cube.from_string("0-"))

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-").intersects(Cube.from_string("1--"))


class TestAlgebra:
    def test_intersect(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-0-")
        assert a.intersect(b) == Cube.from_string("10-")

    def test_intersect_conflict_is_none(self):
        assert Cube.from_string("1--").intersect(Cube.from_string("0--")) is None

    def test_supercube(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        assert a.supercube(b) == Cube.from_string("10-")

    def test_supercube_of_disjoint(self):
        a = Cube.from_string("11")
        b = Cube.from_string("00")
        assert a.supercube(b) == Cube.from_string("--")

    def test_distance(self):
        a = Cube.from_string("10-")
        b = Cube.from_string("01-")
        assert a.distance(b) == 2
        assert a.distance(a) == 0

    def test_merge_adjacent(self):
        a = Cube.from_string("101")
        b = Cube.from_string("100")
        assert a.merge(b) == Cube.from_string("10-")

    def test_merge_requires_same_mask(self):
        assert Cube.from_string("10-").merge(Cube.from_string("101")) is None

    def test_merge_requires_distance_one(self):
        assert Cube.from_string("11").merge(Cube.from_string("00")) is None

    def test_consensus(self):
        # x·z' and x'·y -> consensus y·z' (conflict on variable 0).
        a = Cube.from_string("1-0")
        b = Cube.from_string("01-")
        assert a.consensus(b) == Cube.from_string("-10")

    def test_consensus_undefined_when_no_conflict(self):
        a = Cube.from_string("1--")
        b = Cube.from_string("-1-")
        assert a.consensus(b) is None

    def test_consensus_undefined_when_two_conflicts(self):
        a = Cube.from_string("11-")
        b = Cube.from_string("00-")
        assert a.consensus(b) is None

    def test_consensus_is_implicant_of_union(self):
        a = Cube.from_string("1-0-")
        b = Cube.from_string("01--")
        c = a.consensus(b)
        assert c is not None
        for m in c.minterms():
            assert a.contains(m) or b.contains(m)

    def test_cofactor(self):
        cube = Cube.from_string("1-0")
        assert cube.cofactor(0, 1) == Cube.from_string("--0")
        assert cube.cofactor(0, 0) is None
        assert cube.cofactor(1, 1) == Cube.from_string("1-0")

    def test_expand(self):
        cube = Cube.from_string("1--")
        assert cube.expand(1, 0) == Cube.from_string("10-")
        with pytest.raises(ValueError):
            cube.expand(0, 0)

    def test_drop(self):
        assert Cube.from_string("10-").drop(1) == Cube.from_string("1--")

    def test_restricted_to(self):
        cube = Cube.from_string("101")
        assert cube.restricted_to(0b101) == Cube.from_string("1-1")


class TestRendering:
    def test_to_term(self):
        cube = Cube.from_string("1-0")
        assert cube.to_term(["a", "b", "c"]) == "a·c'"

    def test_to_term_universe(self):
        assert Cube.universe(2).to_term(["a", "b"]) == "1"

    def test_to_term_wrong_names(self):
        with pytest.raises(ValueError):
            Cube.from_string("1-").to_term(["a"])

    def test_repr(self):
        assert repr(Cube.from_string("1-")) == "Cube('1-')"


class TestCoverHelpers:
    def test_cover_contains(self):
        cover = [Cube.from_string("1-"), Cube.from_string("-0")]
        assert cover_contains(cover, 0b01)
        assert cover_contains(cover, 0b00)
        assert not cover_contains(cover, 0b10)

    def test_remove_contained(self):
        cover = [
            Cube.from_string("1--"),
            Cube.from_string("1-0"),  # inside the first
            Cube.from_string("-1-"),
        ]
        assert remove_contained(cover) == [
            Cube.from_string("1--"),
            Cube.from_string("-1-"),
        ]

    def test_remove_contained_keeps_one_duplicate(self):
        cover = [Cube.from_string("1-"), Cube.from_string("1-")]
        assert remove_contained(cover) == [Cube.from_string("1-")]
