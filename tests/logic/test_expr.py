"""Unit tests for repro.logic.expr."""

import pytest

from repro.logic.cube import Cube
from repro.logic.expr import (
    And,
    Const,
    Lit,
    Nor,
    Or,
    cube_to_expr,
    expr_truth,
    make_and,
    make_or,
    sop_to_expr,
)


class TestLiteralsAndConstants:
    def test_lit_evaluate(self):
        assert Lit("a").evaluate({"a": 1}) == 1
        assert Lit("a").evaluate({"a": 0}) == 0
        assert Lit("a", negated=True).evaluate({"a": 1}) == 0

    def test_lit_missing_variable(self):
        with pytest.raises(ValueError):
            Lit("a").evaluate({})

    def test_const(self):
        assert Const(1).evaluate({}) == 1
        assert Const(0).evaluate({}) == 0
        with pytest.raises(ValueError):
            Const(2)

    def test_lit_depth_convention(self):
        assert Lit("a").depth() == 0
        assert Lit("a", negated=True).depth() == 1

    def test_to_string(self):
        assert Lit("y1").to_string() == "y1"
        assert Lit("y1", negated=True).to_string() == "y1'"


class TestGates:
    def test_and_or_nor_evaluate(self):
        env = {"a": 1, "b": 0}
        assert And([Lit("a"), Lit("b")]).evaluate(env) == 0
        assert Or([Lit("a"), Lit("b")]).evaluate(env) == 1
        assert Nor([Lit("a"), Lit("b")]).evaluate(env) == 0
        assert Nor([Lit("b")]).evaluate(env) == 1  # NOR as inverter

    def test_gate_needs_inputs(self):
        with pytest.raises(ValueError):
            And([])

    def test_depth_counts_levels(self):
        # OR(AND(a, NOR(b)), c): NOR=1, AND=2, OR=3
        expr = Or([And([Lit("a"), Nor([Lit("b")])]), Lit("c")])
        assert expr.depth() == 3

    def test_depth_with_negated_literal_matches_nor_form(self):
        direct = And([Lit("a"), Lit("b", negated=True)])
        folded = And([Lit("a"), Nor([Lit("b")])])
        assert direct.depth() == folded.depth() == 2

    def test_literals_and_variables(self):
        expr = Or([And([Lit("a"), Lit("b", negated=True)]), Lit("a")])
        assert expr.literals() == [("a", False), ("b", True), ("a", False)]
        assert expr.variables() == {"a", "b"}

    def test_gate_count(self):
        expr = Or([And([Lit("a"), Lit("b")]), Lit("c")])
        assert expr.gate_count() == 2
        neg = And([Lit("a"), Lit("b", negated=True)])
        assert neg.gate_count() == 2  # AND plus the folded inverter

    def test_equality_and_hash(self):
        a = And([Lit("x"), Lit("y")])
        b = And([Lit("x"), Lit("y")])
        c = Or([Lit("x"), Lit("y")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_to_string_nesting(self):
        expr = Or([And([Lit("a"), Lit("b")]), Lit("c")])
        assert expr.to_string() == "(a·b) + c"


class TestBuilders:
    def test_make_and_simplifications(self):
        assert make_and([Const(1), Lit("a")]) == Lit("a")
        assert make_and([Const(0), Lit("a")]) == Const(0)
        assert make_and([]) == Const(1)
        assert make_and([Lit("a"), Lit("b")]) == And([Lit("a"), Lit("b")])

    def test_make_or_simplifications(self):
        assert make_or([Const(0), Lit("a")]) == Lit("a")
        assert make_or([Const(1), Lit("a")]) == Const(1)
        assert make_or([]) == Const(0)

    def test_cube_to_expr(self):
        expr = cube_to_expr(Cube.from_string("1-0"), ["a", "b", "c"])
        assert expr == And([Lit("a"), Lit("c", negated=True)])

    def test_cube_to_expr_universe(self):
        assert cube_to_expr(Cube.universe(2), ["a", "b"]) == Const(1)

    def test_sop_to_expr_matches_cover_semantics(self):
        cubes = [Cube.from_string("11-"), Cube.from_string("0-1")]
        names = ["a", "b", "c"]
        expr = sop_to_expr(cubes, names)
        for m in range(8):
            env = {n: m >> i & 1 for i, n in enumerate(names)}
            expected = int(any(c.contains(m) for c in cubes))
            assert expr.evaluate(env) == expected

    def test_sop_to_expr_empty(self):
        assert sop_to_expr([], ["a"]) == Const(0)


def test_expr_truth_bit_order():
    # expr = a (variable 0) -> truth table 0,1,0,1 over (a,b)
    assert expr_truth(Lit("a"), ["a", "b"]) == [0, 1, 0, 1]
    assert expr_truth(Lit("b"), ["a", "b"]) == [0, 0, 1, 1]
