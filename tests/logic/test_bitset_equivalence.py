"""Hypothesis cross-checks: bitset engine vs the retained reference engine.

The packed-bitset hot paths (:mod:`repro.logic.quine_mccluskey`,
:mod:`repro.logic.cover`, :mod:`repro.util.setcover`,
:mod:`repro.hazards.logic_hazards`) must be *drop-in* replacements for the
original set-based implementations kept in :mod:`repro.logic._reference`:
identical primes, identical useful-prime filters, identical covers
(cubes, essentials and the ``exact`` flag), identical set-cover index
selections and identical hazard reports — not merely equivalent cost.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import _reference as ref
from repro.logic.cover import minimal_cover
from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction
from repro.logic.quine_mccluskey import prime_implicants, useful_primes
from repro.hazards.logic_hazards import static_one_hazards
from repro.util.setcover import minimum_set_cover


@st.composite
def minterm_functions(draw, max_width=8):
    """Dense random on/dc sets over small widths (adversarial values)."""
    width = draw(st.integers(min_value=1, max_value=max_width))
    space = 1 << width
    on = draw(st.sets(st.integers(min_value=0, max_value=space - 1)))
    dc = draw(st.sets(st.integers(min_value=0, max_value=space - 1))) - on
    names = tuple(f"v{i}" for i in range(width))
    return BooleanFunction(names, frozenset(on), frozenset(dc))


@st.composite
def cube_functions(draw, min_width=9, max_width=12):
    """Merge-heavy functions up to width 12, built from random cubes.

    Wide spaces are where the engines could plausibly diverge (big-int
    carries, shift doubling), but dense random minterm sets there are too
    slow for the reference engine — unions of a few wide cubes give large
    coverage with structure instead.
    """
    width = draw(st.integers(min_value=min_width, max_value=max_width))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)

    def cube() -> Cube:
        bound = rng.randint(width - 3, width)
        positions = rng.sample(range(width), bound)
        mask = sum(1 << p for p in positions)
        value = rng.getrandbits(width) & mask
        return Cube(width, mask, value)

    on_cubes = [cube() for _ in range(rng.randint(1, 6))]
    dc_cubes = [cube() for _ in range(rng.randint(0, 3))]
    names = tuple(f"v{i}" for i in range(width))
    return BooleanFunction.from_cubes(names, on_cubes, dc_cubes)


def assert_same_primes(f):
    fast = prime_implicants(f.on, f.dc, f.width)
    slow = ref.prime_implicants_reference(f.on, f.dc, f.width)
    assert fast == slow


def assert_same_useful(f):
    primes = prime_implicants(f.on, f.dc, f.width)
    assert useful_primes(primes, f.on) == ref.useful_primes_reference(
        primes, f.on
    )
    assert useful_primes(primes, f.on_mask) == ref.useful_primes_reference(
        primes, f.on
    )


def assert_same_cover(f):
    result = minimal_cover(f)
    cubes, essential, exact = ref.minimal_cover_reference(f)
    assert result.cubes == cubes
    assert result.essential == essential
    assert result.exact == exact


@given(minterm_functions())
@settings(max_examples=150, deadline=None)
def test_primes_identical_dense(f):
    assert_same_primes(f)


@given(cube_functions())
@settings(max_examples=25, deadline=None)
def test_primes_identical_wide(f):
    assert_same_primes(f)


@given(minterm_functions())
@settings(max_examples=100, deadline=None)
def test_useful_primes_identical(f):
    assert_same_useful(f)


@given(minterm_functions(max_width=6))
@settings(max_examples=100, deadline=None)
def test_minimal_cover_identical_dense(f):
    assert_same_cover(f)


@given(cube_functions(min_width=7, max_width=10))
@settings(max_examples=25, deadline=None)
def test_minimal_cover_identical_wide(f):
    assert_same_cover(f)


@given(minterm_functions(max_width=6))
@settings(max_examples=100, deadline=None)
def test_static_one_hazards_identical(f):
    cubes = useful_primes(prime_implicants(f.on, f.dc, f.width), f.on)
    fast = static_one_hazards(cubes, f.width)
    slow = ref.static_one_hazards_reference(cubes, f.width)
    assert [(h.minterm_a, h.minterm_b, h.variable) for h in fast] == slow


@given(
    st.integers(min_value=1, max_value=10),
    st.lists(
        st.sets(st.integers(min_value=0, max_value=9)), max_size=14
    ),
)
@settings(max_examples=150, deadline=None)
def test_minimum_set_cover_identical(universe_size, cand_sets):
    universe = set(range(universe_size))
    candidates = [frozenset(c) for c in cand_sets]
    union = set().union(*candidates) if candidates else set()
    if not universe <= union:
        return  # uncoverable: both raise, covered by the unit suite
    result = minimum_set_cover(universe, candidates)
    chosen, exact = ref.minimum_set_cover_reference(universe, candidates)
    assert result.chosen == chosen
    assert result.exact == exact


@given(
    st.lists(
        st.sets(st.text(alphabet="abcdef", min_size=1, max_size=1)),
        max_size=10,
    )
)
@settings(max_examples=100, deadline=None)
def test_minimum_set_cover_identical_hashable_elements(cand_sets):
    # Non-int elements exercise the repr-ordered element numbering.
    candidates = [frozenset(c) for c in cand_sets]
    universe = set().union(*candidates) if candidates else set()
    if not universe:
        return
    result = minimum_set_cover(universe, candidates)
    chosen, exact = ref.minimum_set_cover_reference(universe, candidates)
    assert result.chosen == chosen
    assert result.exact == exact
