"""Unit tests for repro.logic.quine_mccluskey against brute-force checks."""

import itertools

import pytest

from repro.logic.cube import Cube
from repro.logic.function import BooleanFunction
from repro.logic.quine_mccluskey import (
    all_primes_cover,
    prime_implicants,
    primes_of,
    useful_primes,
)


def brute_force_primes(care: set[int], width: int) -> set[Cube]:
    """All prime implicants by exhaustive cube enumeration."""
    implicants = set()
    for mask_bits in itertools.product([0, 1], repeat=width):
        mask = sum(bit << i for i, bit in enumerate(mask_bits))
        seen_values = set()
        for value in range(1 << width):
            value &= mask
            if value in seen_values:
                continue
            seen_values.add(value)
            cube = Cube(width, mask, value)
            if all(m in care for m in cube.minterms()):
                implicants.add(cube)
    primes = set()
    for cube in implicants:
        if not any(
            other != cube and other.contains_cube(cube) for other in implicants
        ):
            primes.add(cube)
    return primes


class TestPrimeImplicants:
    def test_classic_example(self):
        # f(a,b,c,d) with on = {4,8,10,11,12,15}, dc = {9,14}
        # (the standard textbook QM example; variable 0 is the LSB).
        on = {4, 8, 10, 11, 12, 15}
        dc = {9, 14}
        primes = prime_implicants(on, dc, 4)
        assert set(primes) == brute_force_primes(on | dc, 4)

    def test_empty_function(self):
        assert prime_implicants(set(), set(), 3) == []

    def test_tautology(self):
        assert prime_implicants(set(range(8)), set(), 3) == [Cube.universe(3)]

    def test_tautology_via_dc(self):
        assert prime_implicants({0, 1}, {2, 3}, 2) == [Cube.universe(2)]

    def test_single_minterm(self):
        primes = prime_implicants({5}, set(), 3)
        assert primes == [Cube.from_minterm(5, 3)]

    def test_xor_has_no_merging(self):
        primes = prime_implicants({0b01, 0b10}, set(), 2)
        assert set(primes) == {Cube.from_string("10"), Cube.from_string("01")}

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            prime_implicants({1}, {1}, 2)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_functions_match_brute_force(self, seed):
        import random

        rng = random.Random(seed)
        width = rng.randint(1, 4)
        space = 1 << width
        on = {m for m in range(space) if rng.random() < 0.4}
        dc = {m for m in range(space) if m not in on and rng.random() < 0.2}
        primes = prime_implicants(on, dc, width)
        assert set(primes) == brute_force_primes(on | dc, width)

    def test_primes_cover_every_care_minterm(self):
        on = {1, 2, 5, 6, 7}
        primes = prime_implicants(on, set(), 3)
        for m in on:
            assert any(p.contains(m) for p in primes)

    def test_primes_stay_inside_care_set(self):
        on = {1, 2, 5}
        dc = {7}
        for p in prime_implicants(on, dc, 3):
            for m in p.minterms():
                assert m in on | dc


class TestUsefulPrimes:
    def test_drops_dc_only_primes(self):
        # on = {0}, dc = {3}: prime '11' covers only the dc minterm.
        primes = prime_implicants({0}, {3}, 2)
        useful = useful_primes(primes, {0})
        assert Cube.from_string("00") in useful
        assert all(any(m == 0 for m in p.minterms()) for p in useful)

    def test_primes_of_wrapper(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b01, 0b11}))
        assert primes_of(f) == [Cube.from_string("1-")]


class TestAllPrimesCover:
    def test_consensus_term_present(self):
        # f = a·b + a'·c has the hazard-covering consensus b·c.
        f = BooleanFunction.from_cubes(
            ("a", "b", "c"),
            on_cubes=[Cube.from_string("11-"), Cube.from_string("0-1")],
        )
        cover = all_primes_cover(f)
        assert Cube.from_string("-11") in cover
        assert f.is_cover(cover)

    def test_static_hazard_free_for_single_bit_changes(self):
        # In an all-primes cover, any two adjacent on-set minterms share a
        # cube, so no static-1 hazard exists for single-bit changes.
        f = BooleanFunction.from_cubes(
            ("a", "b", "c"),
            on_cubes=[Cube.from_string("11-"), Cube.from_string("0-1")],
        )
        cover = all_primes_cover(f)
        on = sorted(f.on)
        for m in on:
            for bit in range(f.width):
                other = m ^ (1 << bit)
                if other in f.on:
                    assert any(
                        p.contains(m) and p.contains(other) for p in cover
                    ), f"minterm pair {m},{other} not jointly covered"


class TestInputValidation:
    def test_out_of_range_minterm_rejected(self):
        with pytest.raises(ValueError):
            prime_implicants({0, 5}, set(), 2)

    def test_out_of_range_minterm_rejected_even_when_count_fills_space(self):
        # {0,1,2,5} has 2**2 members but is not the full 2-variable space;
        # the full-space shortcut must not fire on cardinality alone.
        with pytest.raises(ValueError):
            prime_implicants({0, 1, 2, 5}, set(), 2)

    def test_negative_minterm_rejected(self):
        with pytest.raises(ValueError):
            prime_implicants({-1}, set(), 2)
