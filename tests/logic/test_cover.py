"""Unit tests for repro.logic.cover."""

import itertools
import random

import pytest

from repro.errors import CoveringError
from repro.logic.cube import Cube
from repro.logic.cover import (
    CoverResult,
    essential_primes,
    essential_sop,
    minimal_cover,
)
from repro.logic.function import BooleanFunction
from repro.logic.quine_mccluskey import primes_of, useful_primes


def brute_force_min_terms(f: BooleanFunction) -> int:
    """Minimum number of primes needed to cover f, by exhaustive search."""
    primes = useful_primes(primes_of(f), f.on)
    if not f.on:
        return 0
    for k in range(1, len(primes) + 1):
        for combo in itertools.combinations(primes, k):
            covered = set()
            for cube in combo:
                covered.update(cube.minterms())
            if f.on <= covered:
                return k
    raise AssertionError("primes cannot cover the function")


class TestEssentialPrimes:
    def test_textbook_essentials(self):
        f = BooleanFunction(("a", "b", "c", "d"),
                            on=frozenset({4, 8, 10, 11, 12, 15}),
                            dc=frozenset({9, 14}))
        primes = primes_of(f)
        essentials = essential_primes(primes, f.on)
        # Every essential prime must be the sole cover of some on minterm.
        for e in essentials:
            assert any(
                sum(1 for p in primes if p.contains(m)) == 1 and e.contains(m)
                for m in f.on
            )

    def test_no_essentials_in_cyclic_cover(self):
        # The classic cyclic function: every minterm covered by 2 primes.
        on = {0b001, 0b011, 0b010, 0b110, 0b100, 0b101}
        f = BooleanFunction(("a", "b", "c"), on=frozenset(on))
        primes = primes_of(f)
        assert essential_primes(primes, f.on) == []


class TestMinimalCover:
    def test_result_is_valid_cover(self):
        f = BooleanFunction(("a", "b", "c", "d"),
                            on=frozenset({4, 8, 10, 11, 12, 15}),
                            dc=frozenset({9, 14}))
        result = minimal_cover(f)
        assert f.is_cover(result.cubes)
        assert result.exact

    def test_minimality_matches_brute_force(self):
        rng = random.Random(7)
        for _ in range(15):
            width = rng.randint(2, 4)
            space = 1 << width
            on = frozenset(m for m in range(space) if rng.random() < 0.45)
            dc = frozenset(
                m for m in range(space) if m not in on and rng.random() < 0.15
            )
            f = BooleanFunction(tuple(f"v{i}" for i in range(width)), on, dc)
            result = minimal_cover(f)
            assert f.is_cover(result.cubes)
            assert result.num_terms == brute_force_min_terms(f)

    def test_cyclic_core_solved_exactly(self):
        on = {0b001, 0b011, 0b010, 0b110, 0b100, 0b101}
        f = BooleanFunction(("a", "b", "c"), on=frozenset(on))
        result = minimal_cover(f)
        assert f.is_cover(result.cubes)
        assert result.num_terms == 3  # known optimum for the cyclic cover

    def test_empty_function(self):
        f = BooleanFunction(("a", "b"))
        result = minimal_cover(f)
        assert result.cubes == ()
        assert result.exact

    def test_constant_one(self):
        f = BooleanFunction.constant(("a", "b"), 1)
        result = minimal_cover(f)
        assert result.cubes == (Cube.universe(2),)

    def test_insufficient_candidates_raise(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b00, 0b11}))
        with pytest.raises(CoveringError):
            minimal_cover(f, primes=[Cube.from_string("11")])

    def test_non_implicant_candidate_raises(self):
        f = BooleanFunction(("a", "b"), on=frozenset({0b11}))
        with pytest.raises(CoveringError):
            minimal_cover(f, primes=[Cube.from_string("1-"), Cube.from_string("11")])

    def test_greedy_fallback(self):
        f = BooleanFunction(("a", "b", "c"), on=frozenset(range(7)))
        result = minimal_cover(f, exact=False)
        assert f.is_cover(result.cubes)

    def test_essentials_recorded(self):
        # f = a·b with on = {3}: the only prime is essential.
        f = BooleanFunction(("a", "b"), on=frozenset({0b11}))
        result = minimal_cover(f)
        assert result.essential == (Cube.from_string("11"),)

    def test_num_literals(self):
        result = CoverResult(
            cubes=(Cube.from_string("1-"), Cube.from_string("01")),
            essential=(),
            exact=True,
        )
        assert result.num_terms == 2
        assert result.num_literals == 3


class TestEssentialSop:
    def test_wrapper_equivalence(self):
        f = BooleanFunction(("a", "b", "c"), on=frozenset({1, 3, 5, 7}))
        result = essential_sop(f)
        # f = a (variable 0): single-cube cover.
        assert result.cubes == (Cube.from_string("1--"),)

    def test_uses_dont_cares(self):
        # dc minterm 0b01 is (a=1, b=0): merging it with on minterm 0b11
        # yields the single-literal cube a=1 ("1-").
        f = BooleanFunction(("a", "b"), on=frozenset({0b11}), dc=frozenset({0b01}))
        result = essential_sop(f)
        assert result.cubes == (Cube.from_string("1-"),)


class TestCandidateValidation:
    def test_wrong_width_candidate_rejected(self):
        f = BooleanFunction(("a", "b", "c"), frozenset({0, 1, 2, 3}))
        with pytest.raises(ValueError):
            minimal_cover(f, primes=[Cube.universe(2)])
