"""Unit tests for repro.logic.factor."""

import pytest

from repro.logic.cube import Cube
from repro.logic.expr import And, Lit, Nor, Or, expr_truth, sop_to_expr
from repro.logic.factor import (
    bridge_consensus,
    common_cube,
    divide_cube,
    factor_groups,
    factored_sop_expr,
    first_level,
    has_complemented_inputs,
)


class TestFirstLevel:
    def test_folds_complemented_literals_into_nor(self):
        # a·b'·c' -> AND(a, NOR(b, c))
        expr = And([Lit("a"), Lit("b", negated=True), Lit("c", negated=True)])
        converted = first_level(expr)
        assert converted == And([Lit("a"), Nor([Lit("b"), Lit("c")])])

    def test_pure_true_term_unchanged(self):
        expr = And([Lit("a"), Lit("b")])
        assert first_level(expr) == expr

    def test_lone_negated_literal(self):
        assert first_level(Lit("a", negated=True)) == Nor([Lit("a")])

    def test_preserves_function(self):
        names = ["a", "b", "c"]
        cubes = [Cube.from_string("10-"), Cube.from_string("0-1")]
        expr = sop_to_expr(cubes, names)
        converted = first_level(expr)
        assert expr_truth(expr, names) == expr_truth(converted, names)

    def test_preserves_depth(self):
        names = ["a", "b", "c"]
        cubes = [Cube.from_string("10-"), Cube.from_string("0-1")]
        expr = sop_to_expr(cubes, names)
        assert first_level(expr).depth() == expr.depth()

    def test_no_complemented_inputs_after_conversion(self):
        expr = Or([
            And([Lit("a"), Lit("b", negated=True)]),
            Lit("c", negated=True),
        ])
        converted = first_level(expr)
        assert not has_complemented_inputs(converted)

    def test_nested_or_inside_and(self):
        # L·(f' + g) with complemented literal inside the OR
        expr = And([Lit("L"), Or([Lit("f", negated=True), Lit("g")])])
        converted = first_level(expr)
        names = ["L", "f", "g"]
        assert expr_truth(expr, names) == expr_truth(converted, names)
        assert not has_complemented_inputs(converted)


class TestBridgeConsensus:
    def test_adds_bridge_across_pivot(self):
        # f'·a + f·b (pivot f = variable 0) -> bridge a·b
        cubes = [Cube.from_string("01-"), Cube.from_string("1-1")]
        bridged = bridge_consensus(cubes, pivot=0)
        assert Cube.from_string("-11") in bridged
        assert len(bridged) == 3

    def test_no_bridge_when_conflicting_elsewhere(self):
        # f'·a + f·a' cannot bridge (conflict on variable 1 too)
        cubes = [Cube.from_string("01"), Cube.from_string("10")]
        assert bridge_consensus(cubes, pivot=0) == cubes

    def test_skips_contained_bridges(self):
        cubes = [
            Cube.from_string("01-"),
            Cube.from_string("1-1"),
            Cube.from_string("-1-"),  # already contains the bridge -11
        ]
        bridged = bridge_consensus(cubes, pivot=0)
        assert bridged == cubes

    def test_function_preserved(self):
        cubes = [Cube.from_string("01-"), Cube.from_string("1-1")]
        bridged = bridge_consensus(cubes, pivot=0)
        for m in range(8):
            before = any(c.contains(m) for c in cubes)
            after = any(c.contains(m) for c in bridged)
            assert before == after

    def test_every_pivot_adjacent_pair_jointly_covered(self):
        # After bridging, any two minterms differing only in the pivot that
        # are both covered must share a cube (static-1 hazard-free on pivot).
        cubes = [Cube.from_string("01-"), Cube.from_string("1-1")]
        bridged = bridge_consensus(cubes, pivot=0)
        covered = {m for c in bridged for m in c.minterms()}
        for m in covered:
            other = m ^ 1  # toggle pivot bit
            if other in covered:
                assert any(c.contains(m) and c.contains(other) for c in bridged)


class TestCommonCube:
    def test_shared_literals(self):
        cubes = [Cube.from_string("110"), Cube.from_string("11-")]
        assert common_cube(cubes) == Cube.from_string("11-")

    def test_no_shared_literals(self):
        cubes = [Cube.from_string("1--"), Cube.from_string("0--")]
        assert common_cube(cubes) == Cube.universe(3)

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            common_cube([])


class TestDivideCube:
    def test_quotient(self):
        cube = Cube.from_string("110")
        divisor = Cube.from_string("1--")
        assert divide_cube(cube, divisor) == Cube.from_string("-10")

    def test_non_divisor_raises(self):
        with pytest.raises(ValueError):
            divide_cube(Cube.from_string("0--"), Cube.from_string("1--"))


class TestFactorGroups:
    def test_groups_by_shared_part(self):
        # group on variable 2 (bit 2): cubes with the same y-literal group.
        cubes = [
            Cube.from_string("101"),
            Cube.from_string("011"),
            Cube.from_string("1-0"),
        ]
        groups = factor_groups(cubes, group_on=0b100)
        keys = [key for key, _ in groups]
        assert keys == [Cube.from_string("--1"), Cube.from_string("--0")]
        assert groups[0][1] == [Cube.from_string("10-"), Cube.from_string("01-")]

    def test_factored_expr_preserves_function(self):
        names = ["x1", "x2", "y1"]
        cubes = [
            Cube.from_string("101"),
            Cube.from_string("011"),
            Cube.from_string("1-0"),
        ]
        flat = sop_to_expr(cubes, names)
        nested = factored_sop_expr(cubes, names, group_on=0b100)
        assert expr_truth(flat, names) == expr_truth(nested, names)

    def test_factored_expr_increases_depth_by_nesting(self):
        names = ["f", "a", "b", "y"]
        # y·f'·a + y·f·b -> y·(f'·a + f·b): depth 4 after nesting
        cubes = [Cube.from_string("01-1"), Cube.from_string("1-11")]
        nested = factored_sop_expr(cubes, names, group_on=0b1000)
        # NOR(f)=1, AND(f',a)=2, OR=3, AND(y, ...)=4
        assert nested.depth() == 4

    def test_single_group_no_shared_literals(self):
        cubes = [Cube.from_string("1-"), Cube.from_string("-0")]
        expr = factored_sop_expr(cubes, ["a", "b"], group_on=0)
        names = ["a", "b"]
        flat = sop_to_expr(cubes, names)
        assert expr_truth(expr, names) == expr_truth(flat, names)
