"""Unit tests for the packed-bitset substrate of the logic engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.bitset import (
    Bitset,
    coverage_mask,
    full_mask,
    half_space,
    is_subset,
    iter_bits,
    mask_of,
    popcount,
)
from repro.logic.cube import Cube


class TestRawHelpers:
    def test_mask_of_round_trips_through_iter_bits(self):
        members = {0, 3, 17, 64, 200}
        assert set(iter_bits(mask_of(members))) == members

    def test_iter_bits_is_increasing(self):
        assert list(iter_bits(mask_of([5, 1, 9, 2]))) == [1, 2, 5, 9]

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(mask_of(range(10))) == 10

    def test_full_mask(self):
        assert full_mask(0) == 0b1
        assert full_mask(2) == 0b1111
        assert full_mask(3).bit_count() == 8

    def test_is_subset(self):
        assert is_subset(0b0101, 0b1101)
        assert not is_subset(0b0101, 0b1001)
        assert is_subset(0, 0)


class TestCoverageMask:
    @pytest.mark.parametrize("text", ["", "-", "1", "0-1", "10-1-", "-----"])
    def test_matches_explicit_enumeration(self, text):
        cube = Cube.from_string(text)
        expected = mask_of(
            m for m in range(1 << cube.width) if (m & cube.mask) == cube.value
        )
        assert coverage_mask(cube.width, cube.mask, cube.value) == expected
        assert cube.coverage_mask() == expected

    def test_minterm_cube_is_single_bit(self):
        cube = Cube.from_minterm(5, 3)
        assert cube.coverage_mask() == 1 << 5

    def test_universe_covers_everything(self):
        assert Cube.universe(4).coverage_mask() == full_mask(4)

    def test_minterms_iterates_coverage_in_order(self):
        cube = Cube.from_string("-0-")
        assert list(cube.minterms()) == list(iter_bits(cube.coverage_mask()))


class TestHalfSpace:
    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_half_space_is_var_equals_zero(self, width):
        for var in range(width):
            expected = mask_of(
                m for m in range(1 << width) if not m >> var & 1
            )
            assert half_space(width, var) == expected


class TestBitset:
    def test_construction_and_membership(self):
        b = Bitset.from_iterable([1, 4, 4, 9])
        assert 4 in b
        assert 2 not in b
        assert -1 not in b
        assert len(b) == 3
        assert list(b) == [1, 4, 9]

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Bitset(-1)

    def test_immutable(self):
        b = Bitset(0b101)
        with pytest.raises(AttributeError):
            b.bits = 0

    def test_algebra(self):
        a = Bitset.from_iterable([1, 2, 3])
        b = Bitset.from_iterable([3, 4])
        assert a | b == Bitset.from_iterable([1, 2, 3, 4])
        assert a & b == Bitset.from_iterable([3])
        assert a - b == Bitset.from_iterable([1, 2])
        assert a ^ b == Bitset.from_iterable([1, 2, 4])

    def test_subset_ordering(self):
        small = Bitset.from_iterable([1, 2])
        big = Bitset.from_iterable([1, 2, 3])
        assert small <= big
        assert small < big
        assert big >= small
        assert not big <= small
        assert small <= small
        assert not small < small
        assert small.issubset(big)
        assert big.issuperset(small)

    def test_disjoint_and_intersects(self):
        a = Bitset.from_iterable([1, 2])
        assert a.isdisjoint(Bitset.from_iterable([3]))
        assert a.intersects(Bitset.from_iterable([2, 3]))

    def test_add_discard_return_new(self):
        a = Bitset.from_iterable([1])
        b = a.add(2)
        assert list(a) == [1]
        assert list(b) == [1, 2]
        assert list(b.discard(1)) == [2]
        assert b.discard(-5) == b

    def test_min_max(self):
        b = Bitset.from_iterable([3, 7, 11])
        assert b.min() == 3
        assert b.max() == 11
        with pytest.raises(ValueError):
            Bitset().min()
        with pytest.raises(ValueError):
            Bitset().max()

    def test_hash_and_bool(self):
        assert not Bitset()
        assert Bitset(1)
        assert hash(Bitset(6)) == hash(Bitset.from_iterable([1, 2]))
        assert repr(Bitset.from_iterable([2, 0])) == "Bitset({0, 2})"


@given(st.sets(st.integers(min_value=0, max_value=120)),
       st.sets(st.integers(min_value=0, max_value=120)))
@settings(max_examples=150, deadline=None)
def test_bitset_algebra_matches_set_algebra(xs, ys):
    bx = Bitset.from_iterable(xs)
    by = Bitset.from_iterable(ys)
    assert set(bx | by) == xs | ys
    assert set(bx & by) == xs & ys
    assert set(bx - by) == xs - ys
    assert set(bx ^ by) == xs ^ ys
    assert (bx <= by) == (xs <= ys)
    assert bx.isdisjoint(by) == xs.isdisjoint(ys)
    assert len(bx) == len(xs)
    assert sorted(xs) == list(bx)
