"""Unit tests for repro.logic.depth."""

from repro.logic.depth import (
    CostReport,
    DepthReport,
    depth_report,
    expression_depth,
    longest_depth,
)
from repro.logic.expr import And, Lit, Nor, Or


def factored_y_shape():
    """The canonical factored next-state shape: L·(f̄sv·u + v)."""
    r = Or([
        And([Nor([Lit("fsv")]), Lit("x1")]),
        Lit("x2"),
    ])
    term = And([Lit("y1"), r])
    return Or([term, And([Lit("y2"), Lit("x1")])])


def and_nor_fsv_shape():
    """fsv as OR of AND-NOR first-level terms."""
    return Or([
        And([Lit("x1"), Nor([Lit("x2"), Lit("y1")])]),
        And([Lit("y2"), Nor([Lit("x1")])]),
    ])


class TestDepthConvention:
    def test_factored_y_is_depth_five(self):
        # NOR=1, AND=2, OR=3, AND=4, OR=5 — Table 1's dominant Y depth.
        assert expression_depth(factored_y_shape()) == 5

    def test_and_nor_fsv_is_depth_three(self):
        # NOR=1, AND=2, OR=3 — Table 1's dominant fsv depth.
        assert expression_depth(and_nor_fsv_shape()) == 3

    def test_longest_depth(self):
        assert longest_depth([factored_y_shape(), Lit("a")]) == 5
        assert longest_depth([]) == 0


class TestDepthReport:
    def test_total_formula_matches_table1(self):
        # Table 1 rows: (fsv, Y, total) = (3,5,9), (4,5,10), (2,5,8)
        assert DepthReport(3, 5).total_depth == 9
        assert DepthReport(4, 5).total_depth == 10
        assert DepthReport(2, 5).total_depth == 8

    def test_report_from_exprs(self):
        report = depth_report(and_nor_fsv_shape(), [factored_y_shape()])
        assert report.fsv_depth == 3
        assert report.y_depth == 5
        assert report.total_depth == 9

    def test_row(self):
        assert DepthReport(3, 5).row("lion") == ("lion", 3, 5, 9)


class TestCostReport:
    def test_counts(self):
        exprs = {
            "f": Or([And([Lit("a"), Lit("b")]), Lit("c")]),
            "g": Lit("a", negated=True),
        }
        report = CostReport.of(exprs)
        assert report.gate_count == 3  # OR, AND, folded inverter
        assert report.literal_count == 4
