"""The chunked coverage-mask representation is pinned to dense big ints.

Every :class:`~repro.logic.bitset.ChunkedMask` operation the engine uses
must agree bit-for-bit with the raw-int bitset algebra it replaces, and
the whole wide synthesis path (primes, useful primes, minimum cover,
hazard scan) must produce identical results when forced through the
chunked representation at widths where the dense path is the oracle.
Small ``chunk_bits`` values are used throughout so every mask genuinely
spans many chunks.
"""

import random

import pytest

from repro.logic.bitset import (
    CHUNK_BITS,
    ChunkedMask,
    chunked_coverage,
    coverage_mask,
    half_space,
    iter_bits,
    mask_of,
)
from repro.logic.cube import Cube

CHUNK_SIZES = (2, 3, 5, 16)


def dense_of(chunked: ChunkedMask) -> int:
    return mask_of(chunked.members())


def random_pair(rng: random.Random, width: int, chunk_bits: int):
    space = 1 << width
    a_bits = rng.getrandbits(space)
    b_bits = rng.getrandbits(space)
    a = ChunkedMask.from_minterms(iter_bits(a_bits), chunk_bits)
    b = ChunkedMask.from_minterms(iter_bits(b_bits), chunk_bits)
    return a_bits, b_bits, a, b


class TestOperatorEquivalence:
    def test_algebra_matches_dense(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(120):
            width = rng.randrange(4, 15)
            chunk_bits = rng.choice(CHUNK_SIZES)
            a_bits, b_bits, a, b = random_pair(rng, width, chunk_bits)
            assert dense_of(a) == a_bits
            assert a.bit_count() == a_bits.bit_count()
            assert dense_of(a | b) == a_bits | b_bits
            assert dense_of(a & b) == a_bits & b_bits
            assert dense_of(a ^ b) == a_bits ^ b_bits
            assert dense_of(a.andnot(b)) == a_bits & ~b_bits
            assert dense_of(a & ~b) == a_bits & ~b_bits
            assert a.is_subset(b) == (a_bits & ~b_bits == 0)
            assert a.intersects(b) == bool(a_bits & b_bits)
            assert (a == b) == (a_bits == b_bits)
            for m in range(1 << width):
                if rng.random() < 0.01:
                    assert a.contains(m) == bool(a_bits >> m & 1)

    def test_adjacent_pairs_matches_pair_shift(self):
        # Both regimes: var below chunk_bits (within-chunk shift) and var
        # at/above it (chunk-against-partner-chunk AND).
        rng = random.Random(0xAD7ACE)
        for _ in range(80):
            width = rng.randrange(4, 13)
            chunk_bits = rng.choice((2, 3, 5))
            a_bits, _, a, _ = random_pair(rng, width, chunk_bits)
            for var in range(width):
                shift = 1 << var
                dense = a_bits & (a_bits >> shift) & half_space(width, var)
                assert dense_of(a.adjacent_pairs(var)) == dense, (
                    width,
                    chunk_bits,
                    var,
                )

    def test_equal_masks_hash_equal(self):
        rng = random.Random(7)
        for _ in range(40):
            members = rng.sample(range(1 << 12), rng.randrange(0, 64))
            a = ChunkedMask.from_minterms(members, 4)
            b = ChunkedMask.from_minterms(reversed(members), 4)
            assert a == b
            assert hash(a) == hash(b)

    def test_members_increasing(self):
        members = [0, 3, 17, 4000, 65535, 70000]
        cm = ChunkedMask.from_minterms(reversed(members), CHUNK_BITS)
        assert list(cm.members()) == members
        assert cm.bit_count() == len(members)


class TestIntSeedConventions:
    """Dense accumulation loops seeded with ``covered = 0`` must work."""

    def test_zero_seeds(self):
        m = ChunkedMask.from_minterms([1, 70], 4)
        assert (0 | m) == m
        assert (m | 0) == m
        assert (0 & m) == 0
        assert (m & 0) == 0
        assert (0 ^ m) == m
        assert ChunkedMask.empty(4) == 0
        assert not ChunkedMask.empty(4)
        assert m != 0
        assert bool(m)

    def test_complement_is_restricted(self):
        m = ChunkedMask.from_minterms([1, 70], 4)
        assert (0 & ~m) == 0
        assert ~~m == m
        with pytest.raises(TypeError):
            _ = 5 & ~m

    def test_chunk_size_mismatch_raises(self):
        a = ChunkedMask.from_minterms([1], 4)
        b = ChunkedMask.from_minterms([1], 5)
        with pytest.raises(ValueError):
            _ = a | b
        assert a != b


class TestChunkedCoverage:
    def test_matches_dense_coverage(self):
        rng = random.Random(0xCBE)
        for _ in range(200):
            width = rng.randrange(1, 15)
            chunk_bits = rng.choice(CHUNK_SIZES)
            mask = rng.getrandbits(width)
            value = rng.getrandbits(width) & mask
            chunked = chunked_coverage(width, mask, value, chunk_bits)
            assert dense_of(chunked) == coverage_mask(width, mask, value)

    def test_cube_chunked_coverage_cached(self):
        cube = Cube.from_string("1-0-1")
        cov = cube.chunked_coverage(3)
        assert cov is cube.chunked_coverage(3)
        assert dense_of(cov) == cube.coverage_mask()
        # Distinct chunk sizes are cached independently.
        assert dense_of(cube.chunked_coverage(2)) == cube.coverage_mask()

    def test_wide_cube_minterms_increasing(self):
        cube = Cube.from_string("1" + "-" * 3 + "0" * 19 + "-")
        assert cube.width == 24
        minterms = list(cube.minterms())
        assert minterms == sorted(minterms)
        assert len(minterms) == 16
        assert dense_of(cube.chunked_coverage()) == mask_of(minterms)


def _forced_wide(monkeypatch, chunk_bits: int) -> None:
    """Push every engine stage onto the chunked path at any width."""
    import repro.hazards.logic_hazards as hz
    import repro.logic.cube as cube_mod
    import repro.logic.function as fn_mod

    monkeypatch.setattr(fn_mod, "DENSE_WIDTH_LIMIT", 0)
    monkeypatch.setattr(cube_mod, "DENSE_WIDTH_LIMIT", 0)
    monkeypatch.setattr(hz, "DENSE_WIDTH_LIMIT", 0)
    monkeypatch.setattr(fn_mod, "CHUNK_BITS", chunk_bits)
    monkeypatch.setattr(hz, "CHUNK_BITS", chunk_bits)
    # Cube.chunked_coverage binds CHUNK_BITS as a def-time default; force
    # the test chunk size through a wrapper instead.
    original = Cube.chunked_coverage

    def forced(self, _ignored=None):
        return original(self, chunk_bits)

    monkeypatch.setattr(Cube, "chunked_coverage", forced)


class TestWideWorkloadEquivalence:
    """The full synthesis pipeline agrees between dense and chunked."""

    def test_forced_wide_pipeline_matches_dense(self, monkeypatch):
        from repro.hazards.logic_hazards import static_one_hazards
        from repro.logic.cover import minimal_cover
        from repro.logic.function import BooleanFunction
        from repro.logic.quine_mccluskey import primes_of, useful_primes

        rng = random.Random(0x51DE)
        cases = []
        for _ in range(25):
            width = rng.randrange(3, 9)
            space = 1 << width
            on = frozenset(
                m for m in range(space) if rng.random() < 0.25
            )
            dc = frozenset(
                m
                for m in range(space)
                if m not in on and rng.random() < 0.1
            )
            names = tuple(f"v{i}" for i in range(width))
            cases.append(BooleanFunction(names, on=on, dc=dc))

        def workload(f):
            primes = primes_of(f)
            useful = useful_primes(primes, f.on_mask)
            cover = minimal_cover(f, primes)
            hazards = static_one_hazards(list(cover.cubes), f.width)
            return primes, useful, cover.cubes, cover.exact, hazards

        dense = [workload(f) for f in cases]

        _forced_wide(monkeypatch, chunk_bits=4)
        for f, expected in zip(cases, dense):
            wide = BooleanFunction(f.names, on=f.on, dc=f.dc)
            assert wide.wide
            assert workload(wide) == expected

    def test_real_wide_function_end_to_end(self):
        """Width above DENSE_WIDTH_LIMIT runs the genuine chunked path."""
        from repro.hazards.logic_hazards import static_one_hazards
        from repro.logic.cover import minimal_cover
        from repro.logic.function import BooleanFunction
        from repro.logic.quine_mccluskey import primes_of

        width = 23
        names = tuple(f"v{i}" for i in range(width))
        rng = random.Random(99)
        base = [rng.getrandbits(width) for _ in range(6)]
        on = frozenset(
            m
            for seed in base
            for m in (seed, seed ^ 1, seed ^ 2, seed ^ 3)
        )
        f = BooleanFunction(names, on=on)
        assert f.wide
        with pytest.raises(ValueError):
            _ = f.off_mask
        primes = primes_of(f)
        cover = minimal_cover(f, primes)
        assert f.is_cover(cover.cubes)
        # No dc-set, so any valid cover covers exactly the on-set.
        assert f.cover_equals_on_care_set(list(cover.cubes))
        # The all-primes cover is hazard-free by construction.
        assert not static_one_hazards(list(primes), width)
