"""Dynamic tests of the SIC Huffman baseline machine."""

import pytest

from repro.baselines.huffman import synthesize_huffman
from repro.baselines.huffman_sim import (
    build_huffman,
    default_baseline_delays,
    run_walk,
    sic_walk,
)
from repro.bench import benchmark
from repro.sim.harness import random_legal_walk
from repro.sim.reference import FlowTableInterpreter


def lion_machine():
    return build_huffman(synthesize_huffman(benchmark("lion")))


class TestBuild:
    def test_structure(self):
        machine = lion_machine()
        machine.netlist.validate()
        # no flip-flops anywhere: the baseline is pure feedback logic.
        assert machine.netlist.dffs == []
        assert set(machine.input_nets) == {"x1", "x2"}

    def test_initial_values_fixpoint(self):
        machine = lion_machine()
        values = machine.initial_values()
        encoding = machine.result.spec.encoding
        reset = machine.result.table.reset_state
        code = encoding.code(reset)
        for n, net in enumerate(machine.state_nets):
            assert values[net] == code >> n & 1


class TestSicWalks:
    def test_walk_is_single_input_change(self):
        table = benchmark("lion")
        walk = sic_walk(table, steps=30, seed=4)
        assert walk, "no SIC walk available"
        interpreter = FlowTableInterpreter(table)
        current = interpreter.stable_column()
        for column in walk:
            assert (column ^ current).bit_count() == 1
            interpreter.apply(column)
            current = column

    @pytest.mark.parametrize("name", ["lion", "traffic", "hazard_demo"])
    def test_baseline_correct_under_sic(self, name):
        """The contract the baseline honours: single-input changes."""
        machine = build_huffman(synthesize_huffman(benchmark(name)))
        table = machine.result.table
        for seed in (0, 1):
            walk = sic_walk(table, steps=25, seed=seed)
            run = run_walk(
                machine, walk, default_baseline_delays(seed), seed=seed
            )
            assert run.clean, (name, seed, run)


class TestMicWalks:
    def test_baseline_breaks_under_mic_with_skew(self):
        """The restriction FANTOM removes: multi-bit changes with input
        skew mis-settle the unprotected classic machine somewhere."""
        failures = 0
        for name in ("lion", "traffic", "hazard_demo"):
            machine = build_huffman(synthesize_huffman(benchmark(name)))
            table = machine.result.table
            for seed in range(4):
                walk = random_legal_walk(table, steps=25, seed=seed)
                run = run_walk(
                    machine,
                    walk,
                    default_baseline_delays(seed),
                    input_skew=3.0,
                    seed=seed,
                )
                failures += run.state_errors + run.output_errors
        assert failures > 0, (
            "the SIC baseline survived every MIC walk — the comparison "
            "lost its subject"
        )
