"""Tests for the SIC Huffman baseline and the STG-expansion cost model."""

import pytest

from repro.baselines.huffman import sic_walk_is_legal, synthesize_huffman
from repro.baselines.stg_expansion import (
    comparison_row,
    fantom_expansion_cost,
    stg_expansion_cost,
    stg_expansion_cost_from_stg,
)
from repro.bench import benchmark
from repro.core.seance import synthesize
from repro.flowtable.stg import Stg
from repro.hazards.logic_hazards import is_sic_hazard_free
from repro.logic.expr import expr_truth


class TestHuffmanBaseline:
    def test_equations_cover_functions(self):
        result = synthesize_huffman(benchmark("lion"))
        spec = result.spec
        for n, fn in enumerate(spec.excitations()):
            name = spec.encoding.variables[n]
            table = expr_truth(result.equations[name], spec.names)
            for m in range(fn.space):
                v = fn.value(m)
                if v is not None:
                    assert table[m] == v

    def test_covers_are_sic_hazard_free(self):
        result = synthesize_huffman(benchmark("lion"))
        for name, cover in result.next_state.items():
            assert is_sic_hazard_free(list(cover), result.spec.width), name

    def test_no_fsv_anywhere(self):
        result = synthesize_huffman(benchmark("lion"))
        for expr in result.equations.values():
            assert "fsv" not in expr.variables()

    def test_depth_is_two_level(self):
        # all-primes SOP in first-level gates: at most 3 levels.
        result = synthesize_huffman(benchmark("lion"))
        assert 1 <= result.y_depth <= 3

    def test_cost_report(self):
        result = synthesize_huffman(benchmark("lion"))
        assert result.cost.gate_count > 0
        assert result.cost.literal_count > 0

    def test_describe(self):
        text = synthesize_huffman(benchmark("lion")).describe()
        assert "single-input changes only" in text


class TestSicWalk:
    def test_single_bit_walk_legal(self):
        table = benchmark("hazard_demo")
        # 00 -> 10 -> 11: single-bit steps
        walk = [table.column_of("10"), table.column_of("11")]
        assert sic_walk_is_legal(table, walk)

    def test_multi_bit_walk_illegal(self):
        table = benchmark("hazard_demo")
        walk = [table.column_of("11")]  # from 00: two bits change
        assert not sic_walk_is_legal(table, walk)


class TestStgExpansionCost:
    def test_lion_costs(self):
        table = benchmark("lion")
        cost = stg_expansion_cost(table)
        assert cost.mic_transitions == len(
            list(table.transitions(min_input_distance=2))
        )
        # every MIC in the suite is a 2-bit change: one extra phase each.
        assert cost.extra_phases == cost.mic_transitions
        assert cost.max_steps_per_input_change == 2

    def test_fantom_costs(self):
        result = synthesize(benchmark("lion"))
        cost = fantom_expansion_cost(result)
        assert cost.extra_state_variables == 1
        assert cost.doubled_minterm_space == 2 * cost.base_minterm_space
        assert cost.max_state_changes_per_input_change == 2

    def test_hazard_free_machine_needs_nothing(self):
        from repro.flowtable.builder import FlowTableBuilder

        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "a")
        result = synthesize(b.build(name="toggle"))
        cost = fantom_expansion_cost(result)
        assert cost.extra_state_variables == 0
        assert cost.max_state_changes_per_input_change == 1

    def test_comparison_row(self):
        table = benchmark("lion")
        row = comparison_row(table, synthesize(table))
        assert row["benchmark"] == "lion"
        assert row["fantom_max_state_changes"] <= row["stg_max_steps"] or (
            row["stg_max_steps"] == 2
        )

    def test_stg_based_costing_matches_expansion(self):
        stg = Stg(
            inputs=["req", "ack"],
            outputs=["busy"],
            initial_phase="idle",
            initial_inputs={"req": 0, "ack": 0},
        )
        stg.phase("idle", "0").phase("working", "1").phase("done", "0")
        stg.arc("idle", "working", ["req+"])
        stg.arc("working", "done", ["ack+", "req-"])
        stg.arc("done", "idle", ["ack-"])
        cost = stg_expansion_cost_from_stg(stg)
        assert cost.mic_transitions == 1
        assert cost.extra_phases == 1
        assert cost.extra_arcs == 1
        assert cost.max_steps_per_input_change == 2
