"""Property tests: Step-2 reduction preserves observable behaviour."""

from hypothesis import given, settings

from repro.flowtable.validation import check_normal_mode
from repro.minimize.reducer import reduce_flow_table
from repro.sim.reference import FlowTableInterpreter

from ..strategies import normal_mode_tables

SETTINGS = settings(max_examples=60, deadline=None)


@given(normal_mode_tables(max_states=5, max_inputs=2))
@SETTINGS
def test_reduced_table_simulates_original(table):
    """For every original state and specified input sequence, the reduced
    machine (started in a class containing that state) settles in a class
    containing the original's settled state, with agreeing outputs."""
    result = reduce_flow_table(table)
    reduced = result.table
    member_of: dict[str, str] = {}
    for cls, members in result.state_map.items():
        for member in members:
            member_of.setdefault(member, cls)

    for start in table.states:
        original = FlowTableInterpreter(table, state=start)
        mirror = FlowTableInterpreter(reduced, state=member_of[start])
        # follow a short deterministic legal walk of the original
        for _ in range(4):
            legal = original.legal_columns()
            if not legal:
                break
            column = legal[0]
            step = original.apply(column)
            mirror_step = mirror.apply(column)
            assert step.state in result.state_map[mirror_step.state]
            for bit, mirrored in zip(step.outputs, mirror_step.outputs):
                if bit is not None:
                    assert mirrored == bit


@given(normal_mode_tables(max_states=5, max_inputs=2))
@SETTINGS
def test_reduction_never_grows_and_stays_normal_mode(table):
    result = reduce_flow_table(table)
    assert result.table.num_states <= table.num_states
    assert check_normal_mode(result.table) == []


@given(normal_mode_tables(max_states=5, max_inputs=2))
@SETTINGS
def test_every_original_state_covered(table):
    result = reduce_flow_table(table)
    covered = set()
    for members in result.state_map.values():
        covered.update(members)
    assert covered == set(table.states)
