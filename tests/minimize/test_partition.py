"""Tests for the Moore-refinement fast path."""

import pytest
from hypothesis import given, settings

from repro.flowtable.builder import FlowTableBuilder
from repro.minimize.compatibility import compute_compatibility
from repro.minimize.cover_search import find_minimum_closed_cover
from repro.minimize.partition import is_completely_specified, moore_partition
from repro.minimize.reducer import reduce_flow_table

from ..strategies import normal_mode_tables


def complete_mergeable():
    """Completely specified; b and c equivalent."""
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b", "1")
    b.stable("b", "1", "1").add("b", "0", "d", "0")
    b.stable("c", "1", "1").add("c", "0", "d", "0")
    b.stable("d", "0", "1").add("d", "1", "c", "1")
    return b.build(check=False, name="complete")


class TestIsCompletelySpecified:
    def test_complete_table(self):
        assert is_completely_specified(complete_mergeable())

    def test_missing_entry(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.stable("b", "1", "1").add("b", "0", "a", "0")
        table = b.build(check=False)
        assert not is_completely_specified(table)

    def test_missing_output_bit(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b", "-")
        b.stable("b", "1", "1").add("b", "0", "a", "0")
        table = b.build(check=False)
        assert not is_completely_specified(table)


class TestMoorePartition:
    def test_merges_equivalent_states(self):
        partition = moore_partition(complete_mergeable())
        assert frozenset({"b", "c"}) in partition
        assert len(partition) == 3

    def test_distinct_outputs_stay_apart(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b", "0")
        b.stable("b", "1", "1").add("b", "0", "a", "1")
        table = b.build(name="two")
        assert moore_partition(table) == [
            frozenset({"a"}),
            frozenset({"b"}),
        ]

    def test_successor_refinement(self):
        # a, b and c share every output; refinement must split b away
        # (its successor d has different outputs) while a and c — which
        # are genuinely equivalent — stay together.
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "c", "0")
        b.stable("b", "0", "0").add("b", "1", "d", "0")
        b.stable("c", "1", "0").add("c", "0", "a", "0")
        b.stable("d", "1", "1").add("d", "0", "b", "1")
        table = b.build(check=False)
        partition = moore_partition(table)
        assert frozenset({"a", "c"}) in partition
        assert frozenset({"b"}) in partition
        assert frozenset({"d"}) in partition

    def test_rejects_incomplete_tables(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0")
        b.stable("b", "1", "1").add("b", "0", "a", "0")
        with pytest.raises(ValueError):
            moore_partition(b.build(check=False))


class TestAgreementWithCompatibleSearch:
    @given(
        normal_mode_tables(
            max_states=4, max_inputs=2, allow_unspecified=False
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_same_class_count_as_closed_cover(self, table):
        # strategy leaves output bits possibly None on unstable entries;
        # restrict to genuinely complete tables.
        if not is_completely_specified(table):
            return
        partition = moore_partition(table)
        cover = find_minimum_closed_cover(
            table, compute_compatibility(table)
        )
        assert len(partition) == cover.num_classes

    def test_reducer_uses_fast_path(self):
        result = reduce_flow_table(complete_mergeable())
        assert result.cover.exact
        assert result.table.num_states == 3
