"""Unit tests for the state-minimisation package."""

import pytest

from repro.flowtable.builder import FlowTableBuilder
from repro.minimize.compatibility import (
    compute_compatibility,
    implied_pairs,
    output_compatible,
)
from repro.minimize.compatibles import all_compatibles, maximal_compatibles
from repro.minimize.cover_search import (
    covers_all_states,
    find_minimum_closed_cover,
    is_closed,
)
from repro.minimize.reducer import reduce_flow_table


def mergeable_table():
    """Exactly b and c are equivalent; a and d are distinct.

    Outputs are fully specified so don't-care compatibility cannot
    collapse more than the intended pair.
    """
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b", "1")
    b.stable("b", "1", "1").add("b", "0", "d", "0")
    b.stable("c", "1", "1").add("c", "0", "d", "0")
    b.stable("d", "0", "1").add("d", "1", "c", "1")
    return b.build(check=False, name="mergeable")


def incompatible_outputs_table():
    """b and c disagree on the output in their shared stable column."""
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "b")
    b.stable("b", "1", "1").add("b", "0", "a")
    b.stable("c", "1", "0").add("c", "0", "a")
    return b.build(check=False, name="incompat")


def chained_implication_table():
    """(a, b) compatible only if (c, d) is; c and d conflict on outputs."""
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "0").add("a", "1", "c")
    b.stable("b", "0", "0").add("b", "1", "d")
    b.stable("c", "1", "1").add("c", "0", "a")
    b.stable("d", "1", "0").add("d", "0", "b")
    return b.build(check=False, name="chain")


def dont_care_table():
    """a and b are compatible thanks to unspecified outputs."""
    b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
    b.stable("a", "0", "-").add("a", "1", "c")
    b.stable("b", "0", "1").add("b", "1", "c")
    b.stable("c", "1", "0").add("c", "0", "a")
    return b.build(check=False, name="dc")


class TestOutputCompatibility:
    def test_equal_outputs_compatible(self):
        table = mergeable_table()
        assert output_compatible(table, "b", "c")

    def test_conflicting_outputs_incompatible(self):
        table = incompatible_outputs_table()
        assert not output_compatible(table, "b", "c")

    def test_dont_care_is_compatible_with_anything(self):
        table = dont_care_table()
        assert output_compatible(table, "a", "b")


class TestImpliedPairs:
    def test_implication_recorded(self):
        table = chained_implication_table()
        assert implied_pairs(table, "a", "b") == frozenset({("c", "d")})

    def test_same_successor_implies_nothing(self):
        table = dont_care_table()
        assert implied_pairs(table, "a", "b") == frozenset()

    def test_self_pair_excluded(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "0").add("b", "0", "a")
        table = b.build(check=False)
        # (a,b) implies (b,a)->... the successors in column 1 are (b, b):
        # equal, so nothing; in column 0 (a, a): nothing.
        assert implied_pairs(table, "a", "b") == frozenset()


class TestComputeCompatibility:
    def test_equivalent_states_compatible(self):
        result = compute_compatibility(mergeable_table())
        assert result.compatible("b", "c")

    def test_output_conflict_propagates(self):
        result = compute_compatibility(chained_implication_table())
        assert not result.compatible("c", "d")
        assert not result.compatible("a", "b")  # via implication

    def test_identity_always_compatible(self):
        result = compute_compatibility(mergeable_table())
        assert result.compatible("a", "a")

    def test_all_pairwise_compatible(self):
        result = compute_compatibility(mergeable_table())
        assert result.all_pairwise_compatible(["b", "c"])
        assert not result.all_pairwise_compatible(["a", "b", "c"])

    def test_incompatibility_number(self):
        # chained table: {a,c,d} hmm — compute known value: incompatible
        # pairs are (a,b), (c,d); the largest mutually incompatible set
        # has size 2.
        result = compute_compatibility(chained_implication_table())
        assert result.incompatibility_number() == 2


class TestCompatibles:
    def test_maximal_compatibles(self):
        result = compute_compatibility(mergeable_table())
        maximals = maximal_compatibles(result)
        assert frozenset({"b", "c"}) in maximals
        # 'a' is incompatible with b and c (output conflict at column 0?
        # a is stable at 0 with z=0; b,c not specified at... b has entry
        # at column 0 -> a with dc output: compatible unless implied).
        assert covers_all_states(mergeable_table(), maximals)

    def test_all_compatibles_include_non_maximal(self):
        result = compute_compatibility(mergeable_table())
        everything = all_compatibles(result)
        assert frozenset({"b"}) in everything
        assert frozenset({"b", "c"}) in everything

    def test_all_compatibles_unique(self):
        result = compute_compatibility(mergeable_table())
        everything = all_compatibles(result)
        assert len(everything) == len(set(everything))


class TestClosedCover:
    def test_cover_is_closed_and_covering(self):
        table = mergeable_table()
        cover = find_minimum_closed_cover(table)
        family = list(cover.classes)
        assert covers_all_states(table, family)
        assert is_closed(table, family)

    def test_merges_equivalent_states(self):
        cover = find_minimum_closed_cover(mergeable_table())
        assert cover.num_classes == 3

    def test_no_merge_when_all_incompatible(self):
        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.stable("a", "0", "0").add("a", "1", "b")
        b.stable("b", "1", "1").add("b", "0", "c")
        b.stable("c", "0", "1").add("c", "1", "b")
        table = b.build(check=False)
        cover = find_minimum_closed_cover(table)
        # a/c conflict at column 0 outputs; a/b, b/c conflict via outputs
        # or implications; at minimum the cover keeps 2+ classes.
        assert covers_all_states(table, list(cover.classes))
        assert is_closed(table, list(cover.classes))


class TestReduce:
    def test_identity_when_already_minimal(self):
        table = chained_implication_table()
        result = reduce_flow_table(table)
        # nothing mergeable except possibly pairs; check table is valid
        assert covers_all_states(table, [frozenset(m) for m in result.state_map.values()])

    def test_reduction_merges_and_preserves_behaviour(self):
        table = mergeable_table()
        result = reduce_flow_table(table)
        reduced = result.table
        assert reduced.num_states == 3
        # behaviour containment: for each original state s in class C and
        # every column, the successor of C contains the successor of s.
        member_of = {}
        for cls, members in result.state_map.items():
            for m in members:
                member_of.setdefault(m, cls)
        for s in table.states:
            cls = member_of[s]
            for column in table.columns:
                t = table.next_state(s, column)
                if t is None:
                    continue
                reduced_next = reduced.next_state(cls, column)
                assert reduced_next is not None
                assert t in result.state_map[reduced_next]

    def test_reduction_preserves_outputs(self):
        table = mergeable_table()
        result = reduce_flow_table(table)
        reduced = result.table
        member_of = {}
        for cls, members in result.state_map.items():
            for m in members:
                member_of.setdefault(m, cls)
        for s in table.states:
            for column in table.columns:
                spec = table.output_vector(s, column)
                got = reduced.output_vector(member_of[s], column)
                for bit_spec, bit_got in zip(spec, got):
                    if bit_spec is not None:
                        assert bit_got == bit_spec

    def test_reduced_table_is_normal_mode(self):
        from repro.flowtable.validation import check_normal_mode

        result = reduce_flow_table(mergeable_table())
        assert check_normal_mode(result.table) == []

    def test_stable_columns_preserved(self):
        table = mergeable_table()
        result = reduce_flow_table(table)
        reduced = result.table
        member_of = {}
        for cls, members in result.state_map.items():
            for m in members:
                member_of.setdefault(m, cls)
        for s, column in table.stable_points():
            assert reduced.is_stable(member_of[s], column)

    def test_unstable_entry_targets_a_stable_class(self):
        # Regression: the successor-class pick must prefer a class that
        # is *stable in the column* over a lexicographically smaller
        # unstable one, or the reduced table leaves normal mode.  Here
        # {s}'s column-0 successor set {t} fits {t,u} (unstable: u -> w),
        # {t,v} (stable) and {t,w} (stable); the naive smallest/lex pick
        # is the unstable {t,u}.
        from repro.flowtable.validation import check_normal_mode
        from repro.minimize.cover_search import ClosedCover

        b = FlowTableBuilder(inputs=["x1"], outputs=["z"])
        b.add("s", "0", "t", "0")
        b.stable("t", "0", "0")
        b.add("u", "0", "w", "0")
        b.add("v", "0", "t", "0")
        b.stable("w", "0", "0")
        for state in ("s", "t", "u", "v", "w"):
            b.stable(state, "1", "0")
        table = b.build(name="pick_stable", check=False)

        cover = ClosedCover(
            classes=(
                frozenset({"s"}),
                frozenset({"t", "u"}),
                frozenset({"t", "v"}),
                frozenset({"t", "w"}),
            ),
            exact=True,
        )
        result = reduce_flow_table(table, cover=cover)
        reduced = result.table
        assert check_normal_mode(reduced) == []
        # the unstable row ({s}, column 0) points at a stable class
        assert reduced.next_state("s", 0) == "t+v"
