"""Smoke tests: every example script must run to completion.

The examples double as integration tests of the public API; the heavier
simulation-driven ones are exercised with reduced workloads elsewhere
(tests/sim), so here the cheap ones run fully and the expensive ones are
imported and run end to end once.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[f"example_{name}"] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Table-1 metrics" in out
        assert "state=active" in out

    def test_hazard_walkthrough(self, capsys):
        load_example("hazard_walkthrough").main()
        out = capsys.readouterr().out
        assert "fsv pulsed" in out
        assert "settled in state=on" in out

    def test_stg_frontend(self, capsys):
        load_example("stg_frontend").main()
        out = capsys.readouterr().out
        assert "section-7 comparison" in out
        assert "parity=1" in out

    def test_pipeline_chain(self, capsys):
        load_example("pipeline_chain").main()
        out = capsys.readouterr().out
        assert "own pace" in out

    def test_traffic_intersection(self, capsys):
        load_example("traffic_intersection").main()
        out = capsys.readouterr().out
        assert "glitch-free" in out
        assert "WRONG" not in out

    @pytest.mark.slow
    def test_lion_cage(self, capsys):
        load_example("lion_cage").main()
        out = capsys.readouterr().out
        assert "FANTOM on the same workload" in out
        assert "0 state errors" in out.split("FANTOM on the same")[1]

    def test_burst_mode_controller(self, capsys):
        load_example("burst_mode_controller").main()
        out = capsys.readouterr().out
        assert "burst-mode semantics" in out
        assert "grant=1" in out
