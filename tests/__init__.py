"""Test package for the SEANCE reproduction."""
