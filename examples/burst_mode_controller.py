"""A burst-mode bus controller — the specification style FANTOM enabled.

Burst-mode controllers (the lineage this paper started, later maturing
into tools like MINIMALIST) fire a transition only when an entire *input
burst* — several signal edges, in any order, with any skew — has
arrived.  That is only implementable on a machine that tolerates
multiple-input changes, which is precisely FANTOM's contribution.

The controller here arbitrates a one-master bus:

* `idle` --(req+)--> `granted`   (grant rises)
* `granted` --(done+, req-)--> `clearing`   (a TWO-EDGE burst: the
  master signals completion and drops its request concurrently)
* `clearing` --(done-)--> `idle`

The example converts the burst specification to a flow table, shows the
hold-during-partial-burst structure, synthesises the FANTOM machine, and
drives the two-edge burst with its edges landing in both orders.

Run:  python examples/burst_mode_controller.py
"""

from repro import BurstSpec, build_fantom, synthesize
from repro.sim import FantomHarness, loop_safe_random


def build_controller() -> BurstSpec:
    spec = BurstSpec(
        inputs=["req", "done"],
        outputs=["grant"],
        initial_state="idle",
        initial_inputs={"req": 0, "done": 0},
    )
    spec.state("idle", "0")
    spec.state("granted", "1")
    spec.state("clearing", "0")
    spec.burst("idle", "granted", ["req+"])
    spec.burst("granted", "clearing", ["done+", "req-"])
    spec.burst("clearing", "idle", ["done-"])
    return spec


def main():
    spec = build_controller()
    table = spec.to_flow_table(name="bus_controller")
    print("burst-mode specification as a flow table")
    print("(note 'granted' resting under THREE columns: its entry vector")
    print(" plus both partial bursts — the machine waits for the burst):")
    print(table.pretty())
    print()

    result = synthesize(table)
    print(result.describe())
    print()

    machine = build_fantom(result)
    harness = FantomHarness(machine, delays=loop_safe_random(seed=8))
    col = table.column_of

    print("driving the two-edge burst, both edge orders:")
    # Round 1: the burst lands as one simultaneous change.
    harness.apply(col({"req": 1, "done": 0}))
    state, outputs = harness.apply(col({"req": 0, "done": 1}))
    print(f"  done+/req- together      -> {state}, grant={outputs[0]}")
    harness.apply(col({"req": 0, "done": 0}))

    # Round 2: the edges arrive as two separate hand-shakes (done+ first);
    # the machine holds in 'granted' after the partial burst.
    harness.apply(col({"req": 1, "done": 0}))
    state, outputs = harness.apply(col({"req": 1, "done": 1}))
    print(f"  done+ alone (partial)    -> {state}, grant={outputs[0]}")
    state, outputs = harness.apply(col({"req": 0, "done": 1}))
    print(f"  then req- (completes it) -> {state}, grant={outputs[0]}")
    state, outputs = harness.apply(col({"req": 0, "done": 0}))
    print(f"  done-                    -> {state}, grant={outputs[0]}")

    print()
    print(
        "both orders (and the simultaneous case) land in the same "
        "states with identical latched outputs — burst-mode semantics "
        "on plain gates."
    )


if __name__ == "__main__":
    main()
