"""The highway/farm-road traffic-light controller (Mead & Conway's story).

Inputs: ``c`` — a car is waiting on the farm road, ``t`` — the active
phase's timer has expired.  Outputs: highway-green and farm-green.  The
hazard: with the highway green and no car, a car can arrive in the same
reaction window as the timer expiring (``00 -> 11``), and while the
farm road is green the car can leave exactly as the timer expires
(``10 <-> 01``) — multiple-input changes on a safety-critical machine.

Run:  python examples/traffic_intersection.py
"""

from repro import benchmark, build_fantom, synthesize
from repro.sim import FantomHarness, FlowTableInterpreter, skewed_random

LIGHTS = {
    (1, 0): "highway GREEN | farm red",
    (0, 1): "highway red   | farm GREEN",
    (0, 0): "both red (yellow phase)",
    (1, 1): "both green (IMPOSSIBLE)",
}


def main():
    table = benchmark("traffic")
    result = synthesize(table)
    print(result.describe())
    print()

    machine = build_fantom(result)
    harness = FantomHarness(machine, delays=skewed_random(seed=11))
    reference = FlowTableInterpreter(table)
    col = table.column_of

    scenario = [
        ("quiet highway traffic", col("00")),
        ("car arrives AND timer expires together", col("11")),
        ("timer resets as the yellow ends", col("10")),
        ("farm road served; timer expires, car gone", col("01")),
        ("all clear again", col("00")),
        ("lone timer tick (no car): stay green", col("01")),
        ("car + timer together again", col("11")),
        ("car leaves while timer resets (both change)", col("00")),
    ]

    print("scenario (driving the gate-level machine, skewed delays):")
    for description, column in scenario:
        expected = reference.apply(column)
        state, outputs = harness.apply(column)
        lights = LIGHTS[tuple(outputs)]
        ok = "ok" if state == expected.state else "WRONG STATE"
        print(
            f"  c/t={table.column_string(column)}  {description:45s} "
            f"-> {lights}   [{ok}]"
        )

    assert harness.cycle_count == len(scenario)
    print("\nall transitions settled correctly, outputs glitch-free")


if __name__ == "__main__":
    main()
