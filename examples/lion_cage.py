"""The lion-and-cage machine: the paper's flagship benchmark, end to end.

Two photocell beams guard a cage door; the output says whether the lion
is inside.  A *fast* lion breaks/clears both beams within the machine's
reaction window — a multiple-input change.  This example:

1. synthesises the benchmark and prints the Table-1 row,
2. simulates a slow lion (single-input changes) and a fast lion
   (multiple-input changes) on the gate-level machine,
3. repeats the fast-lion experiment on the *unprotected* machine
   (hazard correction ablated) under hostile input skew, showing the
   wrong-state failures the fantom state variable exists to prevent.

Run:  python examples/lion_cage.py
"""

from repro import SynthesisOptions, benchmark, build_fantom, synthesize
from repro.sim import (
    FantomHarness,
    FlowTableInterpreter,
    hostile_random,
    loop_safe_random,
)


def walk(machine, columns, seed, label):
    """Drive a column sequence and report each settled state."""
    table = machine.result.table
    harness = FantomHarness(machine, delays=loop_safe_random(seed))
    reference = FlowTableInterpreter(table)
    print(f"  {label}:")
    for column in columns:
        expected = reference.apply(column)
        state, outputs = harness.apply(column)
        ok = "ok" if state == expected.state else "WRONG"
        print(
            f"    beams={table.column_string(column)}  ->  "
            f"state={state:8s} z={outputs[0]}   [{ok}]"
        )


def main():
    table = benchmark("lion")
    result = synthesize(table)
    name, fsv_d, y_d, total = result.table1_row()
    print(
        f"synthesised {name!r}: fsv depth {fsv_d}, Y depth {y_d}, "
        f"total depth {total} (paper: 3/5/9)"
    )
    print(f"hazard points: {sorted(result.analysis.fl)}")
    print()

    machine = build_fantom(result)
    col = table.column_of

    print("FANTOM machine (protected):")
    # A slow lion trips one beam at a time.
    slow = [col("10"), col("11"), col("01"), col("00"),
            col("01"), col("11"), col("10"), col("00")]
    walk(machine, slow, seed=1, label="slow lion (single-input changes)")
    # A fast lion hits both beams inside the reaction window.
    fast = [col("11"), col("00"), col("11"), col("00")]
    walk(machine, fast, seed=2, label="fast lion (multiple-input changes)")
    print()

    # The ablation: same table, no hazard correction.
    naive_result = synthesize(
        table, SynthesisOptions(hazard_correction=False)
    )
    naive = build_fantom(naive_result)
    print("Unprotected machine (no fsv), fast lion under hostile skew:")
    from repro.sim import validate_against_reference

    summary = validate_against_reference(
        naive, steps=25, seeds=(0, 1, 2, 3, 4),
        delays_factory=hostile_random,
    )
    print(f"  {summary.describe()}")
    summary_fantom = validate_against_reference(
        machine, steps=25, seeds=(0, 1, 2, 3, 4),
        delays_factory=hostile_random,
    )
    print(f"  (FANTOM on the same workload: {summary_fantom.describe()})")


if __name__ == "__main__":
    main()
