"""Quickstart: specify a machine, run SEANCE via `repro.api`, inspect it.

This walks the public API end to end:

1. describe an asynchronous controller as a normal-mode flow table,
2. open an `api.load(...)` session and run the full Figure-3 pipeline,
3. read the hazard analysis and the synthesised equations,
4. ship the result through its JSON wire form (`to_dict`/`from_dict`
   round-trip byte-identically — that is how results cross machines),
5. build the gate-level FANTOM machine and run one hand-shake.

Run:  python examples/quickstart.py
"""

import json

from repro import FlowTableBuilder, api, build_fantom
from repro.sim import FantomHarness, loop_safe_random


def build_specification():
    """A tiny two-phase controller with a multiple-input change.

    The machine idles until both `go` and `ready` are up — and because
    the environment may raise them (nearly) simultaneously, that is a
    multiple-input change the machine must survive.
    """
    builder = FlowTableBuilder(inputs=["go", "ready"], outputs=["run"])
    # idle rests under every pattern except both-high...
    builder.stable("idle", "00", "0")
    builder.stable("idle", "10", "0")
    builder.stable("idle", "01", "0")
    builder.add("idle", "11", "active")
    # ...and `active` runs until both drop.
    builder.stable("active", "11", "1")
    builder.stable("active", "10", "1")
    builder.stable("active", "01", "1")
    builder.add("active", "00", "idle")
    return builder.build(reset="idle", name="two_phase")


def main():
    table = build_specification()
    print("Flow table:")
    print(table.pretty())
    print()

    # The front door: load any table source, run the paper pipeline.
    # (Sessions are fluent — .with_options(...), .with_pass(...) derive
    # reconfigured sessions sharing one stage cache.)
    session = api.load(table)
    result = session.run()
    print(result.describe())
    print()
    print("Hazard analysis (the Figure-4 search):")
    print(result.analysis.describe(result.spec))
    print()

    # The depths of Table 1, for this machine:
    name, fsv_depth, y_depth, total = result.table1_row()
    print(
        f"Table-1 metrics for {name!r}: fsv depth {fsv_depth}, "
        f"Y depth {y_depth}, total depth {total}"
    )
    print()

    # Results are plain data on the wire: to_dict() → JSON →
    # from_dict() reconstructs the full result, byte-identically.
    wire = json.dumps(result.to_dict())
    shipped = api.SynthesisResult.from_dict(json.loads(wire))
    assert shipped.table1_row() == result.table1_row()
    print(
        f"result survives its JSON wire form "
        f"({len(wire)} bytes, round-trip byte-identical)"
    )
    print()

    # Build the architecture of Figure 1 and run a hand-shake in which
    # both inputs change at once.
    machine = build_fantom(shipped)
    print(f"FANTOM netlist: {machine.netlist.stats()}")
    harness = FantomHarness(machine, delays=loop_safe_random(seed=7))
    state, outputs = harness.apply(table.column_of("11"))
    print(
        f"after applying go=1, ready=1 simultaneously: "
        f"state={state}, run={outputs[0]}"
    )
    state, outputs = harness.apply(table.column_of("00"))
    print(
        f"after dropping both:                         "
        f"state={state}, run={outputs[0]}"
    )


if __name__ == "__main__":
    main()
