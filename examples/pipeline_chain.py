"""Two FANTOM stages composed into a self-timed pipeline.

Paper Section 4.1: a stage's ``VI`` "is the VOM signal of the previous
stage", so machines chain without any global clock — "separate state
machines are allowed to proceed at their own pace".

Stage 1 is the two-state `hazard_demo` machine (it absorbs the
multiple-input changes of the raw environment); stage 2 is a one-input
follower that watches stage 1's latched output.  The composite is a
single netlist; the example drives it through several transactions and
shows the one-transaction pipeline latency the hand-shake implies.

Both stages are synthesised through one `repro.api` session chain
sharing a stage cache — `api.load(...)` accepts benchmark names and
programmatic tables alike, and `.with_table(...)` re-targets a session
without rebuilding its configuration.

Run:  python examples/pipeline_chain.py
"""

from repro import FlowTableBuilder, api
from repro import build_fantom
from repro.netlist import chain
from repro.sim import Simulator, loop_safe_random


def build_follower():
    """A one-input machine that copies its (latched) input to its output."""
    builder = FlowTableBuilder(inputs=["d"], outputs=["q"])
    builder.stable("low", "0", "0").add("low", "1", "high")
    builder.stable("high", "1", "1").add("high", "0", "low")
    return builder.build(reset="low", name="follower")


def run_transaction(sim, pipeline, column, env_delay=2.0, budget=600.0):
    """One full hand-shake against the composite pipeline."""

    def wait_for(net, value):
        deadline = sim.now + budget
        sim.run(until=deadline, stop_when=lambda s: s.value(net) == value)
        assert sim.value(net) == value, f"timeout on {net}={value}"

    wait_for(pipeline.stage1_vom, 1)
    sim.run_until_quiet(budget)
    start = sim.now
    for i, pin in enumerate(pipeline.external_inputs):
        sim.schedule(pin, column >> i & 1, at=start + env_delay)
    sim.schedule(pipeline.vi, 1, at=start + 2 * env_delay)
    wait_for(pipeline.stage1_vom, 0)
    sim.schedule(pipeline.vi, 0, at=sim.now + env_delay)
    wait_for(pipeline.stage1_vom, 1)
    sim.run_until_quiet(budget)
    return {
        "stage1_z": sim.value("s1_z1"),
        "stage2_q": sim.value(pipeline.stage2_outputs[0]),
    }


def main():
    # One fluent session chain: same configuration (and shared stage
    # cache), two different machines.
    session = api.load("hazard_demo")
    stage1 = build_fantom(session.run())
    stage2 = build_fantom(session.with_table(build_follower()).run())
    pipeline = chain(stage1, stage2, name="demo_pipeline")
    print(f"composite netlist: {pipeline.netlist.stats()}")

    sim = Simulator(
        pipeline.netlist,
        delays=loop_safe_random(seed=5),
        initial_values=pipeline.initial_values(),
    )

    table = stage1.result.table
    col = table.column_of
    # Drive the front stage through on/off phases, including the
    # multiple-input change 01 -> 10 that crosses its hazard column.
    sequence = [
        ("switch on (both bits rise together)", col("11")),
        ("stay on", col("01")),
        ("move to 10 (through the hazard column!)", col("10")),
        ("switch on again", col("11")),
        ("all off", col("00")),
    ]
    print("\ntransaction trace (note stage 2 lags one hand-shake):")
    print(f"  {'input':7s} {'stage1 z':>9s} {'stage2 q':>9s}")
    for description, column in sequence:
        values = run_transaction(sim, pipeline, column)
        print(
            f"  {table.column_string(column):7s} "
            f"{values['stage1_z']:9d} {values['stage2_q']:9d}   "
            f"({description})"
        )

    print(
        "\nstage 2's q equals stage 1's z of the previous transaction: "
        "the stages really do proceed at their own pace."
    )


if __name__ == "__main__":
    main()
