"""Signal-transition-graph front end and the Section-7 comparison.

The paper's Section 5.1 notes flow tables "can be easily derived from
signal transition graphs"; Section 7 contrasts FANTOM with STG-based
flows that avoid multiple-input-change hazards by *expanding the input
space* into single-bit steps.  This example does both on one
specification:

1. describe a *transaction-parity observer* as an STG: it watches a
   req/ack handshake whose return-to-zero phase is genuinely concurrent
   (``req-`` and ``ack-`` fire together — a multi-bit arc) and outputs
   the parity of completed transactions;
2. derive the flow table and synthesise the FANTOM machine;
3. expand the same STG into single-bit steps (the competing discipline)
   and compare the costs: extra phases and serialised steps (STG) versus
   one fantom variable and at most two state changes (FANTOM).

Run:  python examples/stg_frontend.py
"""

from repro import Stg, build_fantom, synthesize
from repro.baselines import (
    fantom_expansion_cost,
    stg_expansion_cost_from_stg,
)
from repro.sim import FantomHarness, loop_safe_random


def build_parity_stg() -> Stg:
    """Six phases: two handshake rounds, output = transaction parity."""
    stg = Stg(
        inputs=["req", "ack"],
        outputs=["parity"],
        initial_phase="idle_even",
        initial_inputs={"req": 0, "ack": 0},
    )
    stg.phase("idle_even", "0")
    stg.phase("work_even", "0")
    stg.phase("ackd_even", "0")
    stg.phase("idle_odd", "1")
    stg.phase("work_odd", "1")
    stg.phase("ackd_odd", "1")
    stg.arc("idle_even", "work_even", ["req+"])
    stg.arc("work_even", "ackd_even", ["ack+"])
    stg.arc("ackd_even", "idle_odd", ["req-", "ack-"])  # concurrent!
    stg.arc("idle_odd", "work_odd", ["req+"])
    stg.arc("work_odd", "ackd_odd", ["ack+"])
    stg.arc("ackd_odd", "idle_even", ["req-", "ack-"])  # concurrent!
    return stg


def main():
    stg = build_parity_stg()
    table = stg.to_flow_table(name="parity_observer")
    print("flow table derived from the STG:")
    print(table.pretty())
    print()

    result = synthesize(table)
    print(result.describe())
    print()

    # Drive two full handshakes on the gate-level machine; the
    # return-to-zero steps are multiple-input changes.
    machine = build_fantom(result)
    harness = FantomHarness(machine, delays=loop_safe_random(3))
    col = table.column_of
    sequence = [
        ("req+", {"req": 1, "ack": 0}),
        ("ack+", {"req": 1, "ack": 1}),
        ("req- and ack- together", {"req": 0, "ack": 0}),
        ("req+", {"req": 1, "ack": 0}),
        ("ack+", {"req": 1, "ack": 1}),
        ("req- and ack- together", {"req": 0, "ack": 0}),
    ]
    for label, vector in sequence:
        state, outputs = harness.apply(col(vector))
        print(f"  {label:24s} -> phase={state:10s} parity={outputs[0]}")
    print()

    # Section 7: the two ways to tolerate the concurrent arcs.
    stg_cost = stg_expansion_cost_from_stg(stg)
    fantom_cost = fantom_expansion_cost(result)
    print("section-7 comparison on this specification:")
    print(
        f"  STG expansion : +{stg_cost.extra_phases} phase(s), "
        f"+{stg_cost.extra_arcs} arc(s), each concurrent change "
        f"serialised into {stg_cost.max_steps_per_input_change} steps"
    )
    print(
        f"  FANTOM        : +{fantom_cost.extra_state_variables} state "
        f"variable (fsv), minterm space "
        f"{fantom_cost.base_minterm_space} -> "
        f"{fantom_cost.doubled_minterm_space}, at most "
        f"{fantom_cost.max_state_changes_per_input_change} state changes "
        f"per input change"
    )


if __name__ == "__main__":
    main()
