"""A guided tour of the hazard machinery on the smallest possible machine.

`hazard_demo` has two states and exactly one function M-hazard, so every
artifact of the paper's Sections 5.3 and 4 is small enough to read:

* the Figure-4 search and its hazard list,
* the fsv equation (one minterm, all primes, AND-NOR form),
* the complemented minterm in the f̄sv half of the next-state equation,
* the dynamic story: resting on the hazard-marked point makes ``fsv``
  rise and the machine proceed through its "second state change",
  visible in the gate-level waveform.

Run:  python examples/hazard_walkthrough.py
"""

from repro import benchmark, build_fantom, synthesize
from repro.core.fsv import next_state_function
from repro.sim import FantomHarness, loop_safe_random


def main():
    table = benchmark("hazard_demo")
    print("the machine:")
    print(table.pretty())
    print()

    result = synthesize(table)
    spec = result.spec
    analysis = result.analysis

    print("Step 5 — the Figure-4 hazard search:")
    print(analysis.describe(spec))
    hazard_point = next(iter(analysis.fl))
    column, code = spec.unpack(hazard_point)
    print(
        f"  the machine resting in 'off' (code {code}) with the inputs "
        f"momentarily at {table.column_string(column)} would be excited "
        f"toward 'on' — even though an input change passing through "
        f"{table.column_string(column)} must not move it."
    )
    print()

    print("Step 6 — the corrected next-state function:")
    y1 = next_state_function(spec, analysis, 0)
    base = spec.excitation(0)
    print(
        f"  specified excitation at the hazard point : "
        f"{base.value(hazard_point)}"
    )
    print(
        f"  f̄sv half (complemented = held)          : "
        f"{y1.value(hazard_point)}"
    )
    print(
        f"  fsv half (unchanged)                     : "
        f"{y1.value(hazard_point | (1 << spec.width))}"
    )
    print()

    print("Step 7 — the factored equations:")
    for name, expr in result.equations().items():
        print(f"  {name} = {expr.to_string()}")
    print()

    print("dynamics — resting on the hazard-marked point:")
    machine = build_fantom(result)
    harness = FantomHarness(machine, delays=loop_safe_random(4))
    harness.simulator.watch("fsv", *machine.state_nets)
    col = table.column_of
    harness.apply(col("01"))  # rest 'off' under 01
    start = harness.now
    state, outputs = harness.apply(col("11"))  # settle ON the hazard column
    fsv_events = [
        c for c in harness.simulator.trace
        if c.net == "fsv" and c.time > start
    ]
    print(
        f"  applied 11 from 01: fsv pulsed "
        f"{[(round(c.time - start, 1), c.value) for c in fsv_events]}"
    )
    print(f"  settled in state={state}, z={outputs[0]} (correct: on/1)")
    print(
        "  -> the hazard-detected situation of Table 1's 'total depth': "
        "fsv rises, the Y logic re-evaluates, VOM follows."
    )


if __name__ == "__main__":
    main()
