"""JSON (de)serialisers for every synthesis artifact.

This is the wire format of the repo: the ``"artifacts"`` section of
:meth:`repro.core.result.SynthesisResult.to_dict` is built from these
functions and :meth:`~repro.core.result.SynthesisResult.from_dict`
inverts them, so a full synthesis result survives a JSON round-trip
**byte-identically** (serialise → deserialise → re-serialise yields the
same bytes).  That property is what the sharded-batch and remote-store
roadmap items rest on: results can cross process, machine, and storage
boundaries as plain JSON instead of pickles.

Conventions
-----------
* Cubes travel as their ``"10-"`` string form (width = string length).
* Expressions travel as tagged lists — ``["lit", name, negated]``,
  ``["const", bit]``, ``["and"|"or"|"nor", child, ...]`` — a direct
  image of the gate AST.
* Sets (hazard lists, dichotomy blocks, cover classes) are emitted as
  sorted lists so serialisation is deterministic.
* Mapping insertion order (state codes, state maps) is preserved —
  JSON objects keep order in Python — because downstream ``describe()``
  output depends on it.

Every ``*_from_dict`` validates through the artifact constructors (a
corrupt payload raises a domain error rather than building nonsense).
"""

from __future__ import annotations

from ..assign.dichotomy import Dichotomy
from ..assign.encoding import StateEncoding
from ..assign.tracey import AssignmentResult
from ..errors import SynthesisError
from ..flowtable.table import Entry, FlowTable
from ..logic.cube import Cube
from ..logic.expr import And, Const, Expr, Lit, Nor, Or
from ..minimize.cover_search import ClosedCover
from ..minimize.reducer import ReductionResult
from .factoring import FactoredEquation
from .hazard_analysis import HazardAnalysis
from .outputs import OutputEquation
from .ssd import SsdEquation

__all__ = [
    "canonical_result_dict",
    "expr_to_obj",
    "expr_from_obj",
    "table_to_dict",
    "table_from_dict",
    "encoding_to_dict",
    "encoding_from_dict",
    "assignment_to_dict",
    "assignment_from_dict",
    "reduction_to_dict",
    "reduction_from_dict",
    "analysis_to_dict",
    "analysis_from_dict",
    "equation_to_dict",
    "factored_equation_from_dict",
    "output_equation_from_dict",
    "ssd_equation_to_dict",
    "ssd_equation_from_dict",
]


# ----------------------------------------------------------------------
# Canonical (run-independent) projection
# ----------------------------------------------------------------------
def canonical_result_dict(payload: dict) -> dict:
    """A result's ``to_dict`` with run-dependent fields removed.

    ``stage_seconds`` is wall-clock telemetry — two byte-identical
    synthesis runs legitimately differ there — so every byte-identity
    comparison in the repo (golden pins, serial-vs-parallel batch
    parity, and now sharded-vs-single-process result streams) projects
    it out.  Everything else in the dictionary is a pure function of
    (table, spec) and survives the projection untouched.
    """
    return {k: v for k, v in payload.items() if k != "stage_seconds"}


# ----------------------------------------------------------------------
# Expressions and cubes
# ----------------------------------------------------------------------
_GATES = {"and": And, "or": Or, "nor": Nor}


def expr_to_obj(expr: Expr) -> list:
    """The tagged-list form of a gate expression."""
    if isinstance(expr, Const):
        return ["const", expr.bit]
    if isinstance(expr, Lit):
        return ["lit", expr.name, int(expr.negated)]
    for tag, cls in _GATES.items():
        if isinstance(expr, cls):
            return [tag] + [expr_to_obj(child) for child in expr.children]
    raise SynthesisError(f"unserialisable expression node {type(expr).__name__}")


def expr_from_obj(obj) -> Expr:
    """Inverse of :func:`expr_to_obj`."""
    if not isinstance(obj, list) or not obj:
        raise SynthesisError(f"malformed expression payload {obj!r}")
    tag = obj[0]
    if tag == "const":
        if len(obj) != 2:
            raise SynthesisError(f"malformed const payload {obj!r}")
        return Const(obj[1])
    if tag == "lit":
        if len(obj) != 3:
            raise SynthesisError(f"malformed literal payload {obj!r}")
        return Lit(obj[1], negated=bool(obj[2]))
    cls = _GATES.get(tag)
    if cls is None:
        raise SynthesisError(f"unknown expression tag {tag!r}")
    return cls([expr_from_obj(child) for child in obj[1:]])


def _cover_to_obj(cover) -> list[str]:
    return [cube.to_string() for cube in cover]


def _cover_from_obj(payload) -> tuple[Cube, ...]:
    return tuple(Cube.from_string(text) for text in payload)


# ----------------------------------------------------------------------
# Flow tables
# ----------------------------------------------------------------------
def table_to_dict(table: FlowTable) -> dict:
    """Complete, order-preserving serialisation of a flow table."""
    order = {state: i for i, state in enumerate(table.states)}
    entries = [
        [state, column, entry.next_state, list(entry.outputs)]
        for (state, column), entry in sorted(
            table.entry_map().items(),
            key=lambda item: (order[item[0][0]], item[0][1]),
        )
    ]
    return {
        "name": table.name,
        "inputs": list(table.inputs),
        "outputs": list(table.outputs),
        "states": list(table.states),
        "reset": table.reset_state,
        "entries": entries,
    }


def table_from_dict(payload: dict) -> FlowTable:
    """Inverse of :func:`table_to_dict`."""
    try:
        entries = {
            (state, column): Entry(next_state, tuple(outputs))
            for state, column, next_state, outputs in payload["entries"]
        }
        return FlowTable(
            inputs=payload["inputs"],
            outputs=payload["outputs"],
            states=payload["states"],
            entries=entries,
            reset_state=payload.get("reset"),
            name=payload.get("name", "flow_table"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SynthesisError(
            f"malformed flow-table payload: {error}"
        ) from error


# ----------------------------------------------------------------------
# Assignment artifacts
# ----------------------------------------------------------------------
def encoding_to_dict(encoding: StateEncoding) -> dict:
    return {
        "variables": list(encoding.variables),
        "codes": dict(encoding.codes),
    }


def encoding_from_dict(payload: dict) -> StateEncoding:
    return StateEncoding(
        variables=tuple(payload["variables"]),
        codes=dict(payload["codes"]),
    )


def _dichotomy_to_obj(dichotomy: Dichotomy) -> list:
    return [sorted(dichotomy.left), sorted(dichotomy.right)]


def _dichotomy_from_obj(payload) -> Dichotomy:
    left, right = payload
    return Dichotomy(frozenset(left), frozenset(right))


def assignment_to_dict(assignment: AssignmentResult) -> dict:
    return {
        "encoding": encoding_to_dict(assignment.encoding),
        "seeds": [_dichotomy_to_obj(d) for d in assignment.seeds],
        "chosen": [_dichotomy_to_obj(d) for d in assignment.chosen],
        "exact": assignment.exact,
    }


def assignment_from_dict(payload: dict) -> AssignmentResult:
    return AssignmentResult(
        encoding=encoding_from_dict(payload["encoding"]),
        seeds=tuple(_dichotomy_from_obj(d) for d in payload["seeds"]),
        chosen=tuple(_dichotomy_from_obj(d) for d in payload["chosen"]),
        exact=payload["exact"],
    )


# ----------------------------------------------------------------------
# Reduction artifacts
# ----------------------------------------------------------------------
def reduction_to_dict(reduction: ReductionResult) -> dict:
    return {
        "table": table_to_dict(reduction.table),
        "cover": {
            "classes": [sorted(members) for members in reduction.cover.classes],
            "exact": reduction.cover.exact,
        },
        "state_map": {
            name: list(members)
            for name, members in reduction.state_map.items()
        },
    }


def reduction_from_dict(payload: dict, source: FlowTable) -> ReductionResult:
    """Rebuild a reduction; an unreduced table is re-identified with
    ``source`` (the reducer returns the *same object* in that case, and
    ``SynthesisResult.describe`` keys off that identity)."""
    table = table_from_dict(payload["table"])
    if table_to_dict(source) == payload["table"]:
        table = source
    cover = ClosedCover(
        classes=tuple(
            frozenset(members) for members in payload["cover"]["classes"]
        ),
        exact=payload["cover"]["exact"],
    )
    state_map = {
        name: tuple(members)
        for name, members in payload["state_map"].items()
    }
    return ReductionResult(table=table, cover=cover, state_map=state_map)


# ----------------------------------------------------------------------
# Hazard analysis
# ----------------------------------------------------------------------
def analysis_to_dict(analysis: HazardAnalysis) -> dict:
    return {
        "num_state_vars": analysis.num_state_vars,
        "hl": {
            str(n): sorted(analysis.hl[n]) for n in sorted(analysis.hl)
        },
        "fl": sorted(analysis.fl),
        "pins": sorted(
            [minterm, n, bit]
            for (minterm, n), bit in analysis.pins.items()
        ),
        "transitions_examined": analysis.transitions_examined,
        "intermediates_examined": analysis.intermediates_examined,
    }


def analysis_from_dict(payload: dict) -> HazardAnalysis:
    return HazardAnalysis(
        num_state_vars=payload["num_state_vars"],
        hl={int(n): set(points) for n, points in payload["hl"].items()},
        fl=set(payload["fl"]),
        pins={
            (minterm, n): bit for minterm, n, bit in payload["pins"]
        },
        transitions_examined=payload["transitions_examined"],
        intermediates_examined=payload["intermediates_examined"],
    )


# ----------------------------------------------------------------------
# Equations
# ----------------------------------------------------------------------
def equation_to_dict(eq: FactoredEquation | OutputEquation) -> dict:
    """Shared shape of factored and output equations."""
    return {
        "name": eq.name,
        "cover": _cover_to_obj(eq.cover),
        "expr": expr_to_obj(eq.expr),
        "exact": eq.exact,
    }


def factored_equation_from_dict(payload: dict) -> FactoredEquation:
    return FactoredEquation(
        name=payload["name"],
        cover=_cover_from_obj(payload["cover"]),
        expr=expr_from_obj(payload["expr"]),
        exact=payload["exact"],
    )


def output_equation_from_dict(payload: dict) -> OutputEquation:
    return OutputEquation(
        name=payload["name"],
        cover=_cover_from_obj(payload["cover"]),
        expr=expr_from_obj(payload["expr"]),
        exact=payload["exact"],
    )


def ssd_equation_to_dict(eq: SsdEquation) -> dict:
    return {
        "cover": _cover_to_obj(eq.cover),
        "expr": expr_to_obj(eq.expr),
        "exact": eq.exact,
        "dc_policy": eq.dc_policy,
    }


def ssd_equation_from_dict(payload: dict) -> SsdEquation:
    return SsdEquation(
        cover=_cover_from_obj(payload["cover"]),
        expr=expr_from_obj(payload["expr"]),
        exact=payload["exact"],
        dc_policy=payload["dc_policy"],
    )
