"""The synthesis report: everything SEANCE produced for one machine.

Bundles the artifacts of every pipeline stage with the Table-1 metrics
(fsv depth, Y depth, total depth) and per-stage wall-clock times for the
runtime benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..assign.tracey import AssignmentResult
from ..flowtable.table import FlowTable, TableStats
from ..logic.cube import Cube
from ..logic.depth import DepthReport
from ..logic.expr import Expr
from ..minimize.reducer import ReductionResult
from .factoring import FactoredEquation
from .hazard_analysis import HazardAnalysis
from .outputs import OutputEquation
from .spec import SpecifiedMachine
from .ssd import SsdEquation


@dataclass
class SynthesisResult:
    """Full output of one SEANCE run.

    The equations dictionary views (:meth:`equations`, :meth:`covers`)
    aggregate everything the architecture instantiates: ``fsv``, every
    ``Y_n``, every ``Z_k`` and ``SSD``.
    """

    source: FlowTable
    reduction: ReductionResult
    assignment: AssignmentResult
    spec: SpecifiedMachine
    analysis: HazardAnalysis
    fsv: FactoredEquation
    next_state: list[FactoredEquation]
    outputs: list[OutputEquation]
    ssd: SsdEquation
    stage_seconds: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def table(self) -> FlowTable:
        """The (possibly reduced) table the machine was built from."""
        return self.reduction.table

    @property
    def depth_report(self) -> DepthReport:
        return DepthReport(
            fsv_depth=self.fsv.expr.depth(),
            y_depth=max(
                (eq.expr.depth() for eq in self.next_state), default=0
            ),
        )

    def table1_row(self) -> tuple[str, int, int, int]:
        """(benchmark, fsv depth, Y depth, total depth) — a Table 1 row."""
        return self.depth_report.row(self.source.name)

    # ------------------------------------------------------------------
    def equations(self) -> dict[str, Expr]:
        """All synthesised expressions keyed by signal name."""
        eqs: dict[str, Expr] = {self.fsv.name: self.fsv.expr}
        for eq in self.next_state:
            eqs[eq.name] = eq.expr
        for eq in self.outputs:
            eqs[eq.name] = eq.expr
        eqs["SSD"] = self.ssd.expr
        return eqs

    def covers(self) -> dict[str, tuple[Cube, ...]]:
        """All synthesised covers keyed by signal name."""
        covers: dict[str, tuple[Cube, ...]] = {self.fsv.name: self.fsv.cover}
        for eq in self.next_state:
            covers[eq.name] = eq.cover
        for eq in self.outputs:
            covers[eq.name] = eq.cover
        covers["SSD"] = self.ssd.cover
        return covers

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The JSON wire form of the result.

        Two layers share the dictionary: the human/tooling summary
        (``depths``, ``equations``, ``hazards``, ... — all *derived*
        views, used by the CLI's ``--json`` flag) and the ``artifacts``
        section, which carries every stage artifact completely enough
        for :meth:`from_dict` to reconstruct the result object.  The
        round-trip is byte-identical:
        ``SynthesisResult.from_dict(r.to_dict()).to_dict() == r.to_dict()``.
        """
        from .serialize import (
            analysis_to_dict,
            assignment_to_dict,
            equation_to_dict,
            reduction_to_dict,
            ssd_equation_to_dict,
            table_to_dict,
        )

        report = self.depth_report
        stats = TableStats.of(self.source)
        artifacts = {
            "source": table_to_dict(self.source),
            "reduction": reduction_to_dict(self.reduction),
            "assignment": assignment_to_dict(self.assignment),
            "analysis": analysis_to_dict(self.analysis),
            "fsv": equation_to_dict(self.fsv),
            "next_state": [equation_to_dict(eq) for eq in self.next_state],
            "outputs": [equation_to_dict(eq) for eq in self.outputs],
            "ssd": ssd_equation_to_dict(self.ssd),
        }
        return {
            "artifacts": artifacts,
            "name": self.source.name,
            "flow_table": {
                "states": stats.num_states,
                "inputs": stats.num_inputs,
                "outputs": stats.num_outputs,
                "specified_entries": stats.num_specified,
                "stable_points": stats.num_stable,
                "transitions": stats.num_transitions,
                "mic_transitions": stats.num_mic_transitions,
            },
            "reduction": {
                "reduced_states": self.table.num_states,
                "classes": {
                    name: list(members)
                    for name, members in self.reduction.state_map.items()
                },
            },
            "encoding": {
                "variables": list(self.assignment.encoding.variables),
                "codes": {
                    state: self.assignment.encoding.code_string(state)
                    for state in self.table.states
                },
                "exact": self.assignment.exact,
            },
            "hazards": {
                "fsv_minterms": sorted(self.analysis.fl),
                "records": self.analysis.hazard_count(),
                "transitions_examined": self.analysis.transitions_examined,
            },
            "depths": {
                "fsv": report.fsv_depth,
                "y": report.y_depth,
                "total": report.total_depth,
            },
            "equations": {
                name: expr.to_string()
                for name, expr in self.equations().items()
            },
            "stage_seconds": dict(self.stage_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SynthesisResult":
        """Rebuild a result from :meth:`to_dict` output.

        Only the ``artifacts`` and ``stage_seconds`` sections are read;
        the summary sections are derived views and are regenerated
        (identically) by the next :meth:`to_dict` call.
        """
        from ..errors import SynthesisError
        from .serialize import (
            analysis_from_dict,
            assignment_from_dict,
            factored_equation_from_dict,
            output_equation_from_dict,
            reduction_from_dict,
            ssd_equation_from_dict,
            table_from_dict,
        )
        from .spec import SpecifiedMachine

        try:
            artifacts = payload["artifacts"]
            source = table_from_dict(artifacts["source"])
            reduction = reduction_from_dict(artifacts["reduction"], source)
            assignment = assignment_from_dict(artifacts["assignment"])
            return cls(
                source=source,
                reduction=reduction,
                assignment=assignment,
                spec=SpecifiedMachine(reduction.table, assignment.encoding),
                analysis=analysis_from_dict(artifacts["analysis"]),
                fsv=factored_equation_from_dict(artifacts["fsv"]),
                next_state=[
                    factored_equation_from_dict(eq)
                    for eq in artifacts["next_state"]
                ],
                outputs=[
                    output_equation_from_dict(eq)
                    for eq in artifacts["outputs"]
                ],
                ssd=ssd_equation_from_dict(artifacts["ssd"]),
                stage_seconds=dict(payload.get("stage_seconds", {})),
            )
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise SynthesisError(
                f"malformed synthesis-result payload: "
                f"{type(error).__name__}: {error}"
            ) from error

    def describe(self) -> str:
        """Human-readable synthesis report."""
        stats = TableStats.of(self.source)
        report = self.depth_report
        lines = [
            f"SEANCE synthesis of {self.source.name!r}",
            f"  flow table : {stats.num_states} states, "
            f"{stats.num_inputs} inputs, {stats.num_outputs} outputs, "
            f"{stats.num_mic_transitions} multi-input-change transitions",
        ]
        if self.reduction.table is not self.source:
            lines.append(
                f"  reduced    : {self.reduction.table.num_states} states "
                f"({self.reduction.cover.num_classes} classes)"
            )
        lines.append(
            f"  encoding   : {self.assignment.encoding.num_variables} state "
            f"variables ({'exact' if self.assignment.exact else 'heuristic'})"
        )
        lines.append(
            f"  hazards    : {len(self.analysis.fl)} fsv minterms, "
            f"{self.analysis.hazard_count()} (point, variable) records"
        )
        lines.append(
            f"  depths     : fsv={report.fsv_depth}  "
            f"Y={report.y_depth}  total={report.total_depth}"
        )
        lines.append("  equations  :")
        for name, expr in self.equations().items():
            lines.append(f"    {name} = {expr.to_string()}")
        if self.stage_seconds:
            timing = ", ".join(
                f"{stage}={seconds * 1000:.1f}ms"
                for stage, seconds in self.stage_seconds.items()
            )
            lines.append(f"  timing     : {timing}")
        return "\n".join(lines)
