"""The fantom state variable and the hazard-corrected next-state functions.

Paper Step 6 ("Generate fsv and Y eqns"):

* ``fsv``'s canonical sum-of-products has one minterm per hazard-list
  entry — its on-set is ``FL``.  ``fsv`` "is not a function of itself,
  and therefore cannot hold the value of the signal at one" (hence the
  name *fantom*): it is purely combinational over ``(x, y)``.

* Each next-state function is rebuilt over the doubled space
  ``(x, y, fsv)``: "The effect of finding hazards in the machine doubles
  the state space, because the case when fsv = 1 must be handled."

  - In the ``f̄sv`` half, "any minterm that matches the hazard list is
    complemented": at a hazard point the variable's excitation is flipped
    to its present value, so the invariant variable is *held* and the
    wrong pulse can never form during the input-skew window.
  - In the ``fsv`` half, "all minterms are included without change": the
    specified excitation applies, so when an input change legitimately
    comes to rest on a hazard-marked point, the machine (after ``fsv``
    rises) proceeds exactly where the flow table says.  This is why a
    FANTOM machine "moves through at most two state changes regardless of
    the number of bit changes in the input" (paper Section 7).

Bit packing: the ``fsv`` variable is appended **above** the (x, y) bits,
so the low ``width`` bits of a doubled-space minterm are the familiar
(x, y) point.
"""

from __future__ import annotations

from ..logic.function import BooleanFunction
from .hazard_analysis import HazardAnalysis
from .spec import SpecifiedMachine

FSV_NAME = "fsv"


def fsv_function(
    spec: SpecifiedMachine, analysis: HazardAnalysis
) -> BooleanFunction:
    """``fsv(x, y)``: on exactly at the hazard points (FL), off elsewhere.

    No don't-cares: a spurious 1 would reroute the next-state logic into
    its ``fsv`` half at a point the analysis never sanctioned, so the
    strict (fully specified) function is the safe reading of the paper.
    """
    return BooleanFunction(
        spec.names, frozenset(analysis.fl), frozenset()
    )


def doubled_names(spec: SpecifiedMachine) -> tuple[str, ...]:
    """Variable names of the doubled space: (x.., y.., fsv)."""
    return spec.names + (FSV_NAME,)


def next_state_function(
    spec: SpecifiedMachine,
    analysis: HazardAnalysis,
    var_index: int,
) -> BooleanFunction:
    """``Y_{var_index+1}(x, y, fsv)`` per the Step-6 construction."""
    base = spec.excitation(var_index)
    hazard_points = analysis.hl.get(var_index, set())
    width = spec.width
    top = 1 << width

    on: set[int] = set()
    dc: set[int] = set()
    for minterm in range(spec.space):
        value = base.value(minterm)
        _, code = spec.unpack(minterm)
        present_bit = code >> var_index & 1

        # f̄sv half -------------------------------------------------
        if minterm in hazard_points:
            low_value: int | None = present_bit  # complemented: hold
        elif (minterm, var_index) in analysis.pins:
            low_value = analysis.pins[(minterm, var_index)]
        else:
            low_value = value
        if low_value is None:
            dc.add(minterm)
        elif low_value:
            on.add(minterm)

        # fsv half --------------------------------------------------
        high = minterm | top
        if value is None:
            dc.add(high)
        elif value:
            on.add(high)

    return BooleanFunction(
        doubled_names(spec), frozenset(on), frozenset(dc)
    )


def next_state_functions(
    spec: SpecifiedMachine, analysis: HazardAnalysis
) -> list[BooleanFunction]:
    """All hazard-corrected next-state functions."""
    return [
        next_state_function(spec, analysis, n)
        for n in range(spec.num_state_vars)
    ]


def state_space_growth(
    spec: SpecifiedMachine, analysis: HazardAnalysis
) -> dict[str, int]:
    """Quantify the Step-6 remark that hazards double the state space.

    Returns the minterm-space sizes before and after the ``fsv``
    doubling, plus the number of hazard points that forced it — the raw
    material of the state-space benchmark.
    """
    return {
        "base_space": spec.space,
        "doubled_space": 2 * spec.space if analysis.has_hazards else spec.space,
        "hazard_points": len(analysis.fl),
        "hazard_records": analysis.hazard_count(),
    }
