"""The specified (encoded) flow table and its excitation model.

Once Step 3 has assigned codes, the machine lives in the combined space
``(x, y)``: input variables ``x1..xj`` on the low bits and state variables
``y1..yn`` above them (bit ``j + k`` is ``y_{k+1}``).  This module derives
the Boolean functions the remaining pipeline stages consume:

* the **excitation** (next-state) functions ``Y_n(x, y)``,
* the **output** functions ``Z_k(x, y)``,
* the **stable-state detector** on-set (``y == Y``).

Excitation filling.  A USTT transition ``s -> t`` in column ``c`` must
excite *every* code inside the subcube spanned by ``code(s)`` and
``code(t)`` toward ``code(t)``: the state vector flies through that
subcube with arbitrary bit ordering, and each intermediate code must keep
driving the remaining changes (the "single transition time" discipline of
Tracey/Unger).  Tracey's disjointness condition guarantees the fills of
different transitions in one column never conflict; the builder checks
anyway and reports a broken encoding rather than producing nonsense.
"""

from __future__ import annotations

from functools import cached_property

from ..assign.encoding import StateEncoding
from ..errors import SynthesisError
from ..flowtable.table import FlowTable
from ..logic.function import BooleanFunction


class SpecifiedMachine:
    """A flow table married to a USTT state encoding.

    The class is an immutable view: it owns no synthesis decisions, it
    just exposes the encoded machine as Boolean functions with the
    library-wide bit packing (inputs low, state variables high).
    """

    def __init__(self, table: FlowTable, encoding: StateEncoding):
        missing = [s for s in table.states if s not in encoding.codes]
        if missing:
            raise SynthesisError(
                f"encoding misses states {missing}"
            )
        self.table = table
        self.encoding = encoding

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return self.table.num_inputs

    @property
    def num_state_vars(self) -> int:
        return self.encoding.num_variables

    @property
    def names(self) -> tuple[str, ...]:
        """Variable names of the (x, y) space, inputs first."""
        return self.table.inputs + self.encoding.variables

    @property
    def width(self) -> int:
        return self.num_inputs + self.num_state_vars

    @property
    def space(self) -> int:
        return 1 << self.width

    def pack(self, column: int, code: int) -> int:
        """Combine an input column and a state code into one minterm."""
        return column | (code << self.num_inputs)

    def unpack(self, minterm: int) -> tuple[int, int]:
        """Split a minterm into (input column, state code)."""
        column = minterm & ((1 << self.num_inputs) - 1)
        code = minterm >> self.num_inputs
        return column, code

    def point(self, state: str, column: int) -> int:
        """The minterm of flow-table cell ``(state, column)``."""
        return self.pack(column, self.encoding.code(state))

    def state_at(self, minterm: int) -> str | None:
        """The state whose code appears in ``minterm`` (None if unused)."""
        _, code = self.unpack(minterm)
        return self.encoding.state_of(code)

    # ------------------------------------------------------------------
    # Excitation
    # ------------------------------------------------------------------
    @cached_property
    def _excitation_codes(self) -> dict[int, int]:
        """Map minterm -> excited full state code (USTT-filled).

        Built by walking every specified entry and filling the spanned
        transition subcube with the destination code.  Minterms absent
        from the map are don't-cares of every excitation function.
        """
        filled: dict[int, int] = {}
        provenance: dict[int, tuple[str, str]] = {}
        for state, column, entry in self.table.specified_entries():
            dest = entry.next_state
            assert dest is not None
            code_s = self.encoding.code(state)
            code_t = self.encoding.code(dest)
            diff = code_s ^ code_t
            bits = [i for i in range(diff.bit_length()) if diff >> i & 1]
            for combo in range(1 << len(bits)):
                code_w = code_s
                for j, bit in enumerate(bits):
                    if combo >> j & 1:
                        code_w ^= 1 << bit
                minterm = self.pack(column, code_w)
                if minterm in filled and filled[minterm] != code_t:
                    prev = provenance[minterm]
                    raise SynthesisError(
                        f"excitation conflict at column "
                        f"{self.table.column_string(column)}, code "
                        f"{code_w:0{self.num_state_vars}b}: transitions "
                        f"{prev[0]}->{prev[1]} and {state}->{dest} overlap "
                        f"(encoding is not USTT)"
                    )
                filled[minterm] = code_t
                provenance[minterm] = (state, dest)
        return filled

    def excitation_code(self, minterm: int) -> int | None:
        """Full excited code at a minterm, ``None`` where unspecified."""
        return self._excitation_codes.get(minterm)

    def excitation(self, var_index: int) -> BooleanFunction:
        """The excitation function ``Y_{var_index+1}(x, y)``."""
        if not 0 <= var_index < self.num_state_vars:
            raise SynthesisError(
                f"state variable index {var_index} out of range"
            )
        on = set()
        dc = set()
        codes = self._excitation_codes
        for minterm in range(self.space):
            target = codes.get(minterm)
            if target is None:
                dc.add(minterm)
            elif target >> var_index & 1:
                on.add(minterm)
        return BooleanFunction(self.names, frozenset(on), frozenset(dc))

    def excitations(self) -> list[BooleanFunction]:
        """All excitation functions, index ``n`` being ``y{n+1}``."""
        return [self.excitation(n) for n in range(self.num_state_vars)]

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def output_function(
        self, output_index: int, policy: str = "stable_only"
    ) -> BooleanFunction:
        """The output function ``Z_{output_index+1}(x, y)``.

        Policies:

        ``stable_only`` (default)
            Only stable points carry specified values; everything else is
            a don't-care.  Sound for FANTOM because ``FFZ`` latches ``Ẑ``
            exactly when ``VOM`` rises, which happens only at stable
            points — and it maximises minimisation freedom (the basis of
            the paper's Step 4 remark that transient output hazards need
            no treatment).

        ``as_specified``
            Honour every specified output bit, stable or not (the classic
            unlatched-Mealy reading; used by the baselines).
        """
        if policy not in ("stable_only", "as_specified"):
            raise SynthesisError(f"unknown output policy {policy!r}")
        on = set()
        dc = set(range(self.space))
        for state, column, entry in self.table.specified_entries():
            stable = entry.next_state == state
            if policy == "stable_only" and not stable:
                continue
            bit = entry.outputs[output_index]
            if bit is None:
                continue
            minterm = self.point(state, column)
            dc.discard(minterm)
            if bit:
                on.add(minterm)
        return BooleanFunction(
            self.names, frozenset(on), frozenset(dc - on)
        )

    def output_functions(
        self, policy: str = "stable_only"
    ) -> list[BooleanFunction]:
        return [
            self.output_function(k, policy)
            for k in range(self.table.num_outputs)
        ]

    # ------------------------------------------------------------------
    # Stability
    # ------------------------------------------------------------------
    def stable_minterms(self) -> frozenset[int]:
        """Minterms of the stable points of the encoded machine."""
        return frozenset(
            self.point(state, column)
            for state, column in self.table.stable_points()
        )

    def ssd_function(self, dc_policy: str = "unspecified") -> BooleanFunction:
        """The stable-state-detector function ``SSD(x, y)``.

        On-set: the stable points (``y == Y`` there by construction).
        Off-set: every minterm whose filled excitation differs from its
        own code — unstable entries and every in-flight code of every
        transition subcube, so ``SSD`` cannot pulse while the state vector
        is between codes.

        ``dc_policy`` controls the rest of the space (codes no transition
        ever visits):

        ``unspecified`` (default)
            Don't-care.  Safe under the loop-delay assumption: the state
            vector only leaves specified territory during the input-skew
            window, when ``G`` is still high and ``VOM`` is therefore held
            low regardless of ``SSD``.

        ``strict``
            Off.  The paper's canonical reading ("minterms where y = Y"
            and nothing else); costs cover size, buys independence from
            the skew-window argument.
        """
        if dc_policy not in ("unspecified", "strict"):
            raise SynthesisError(f"unknown SSD dc policy {dc_policy!r}")
        on = set()
        off = set()
        codes = self._excitation_codes
        for minterm in range(self.space):
            target = codes.get(minterm)
            if target is None:
                if dc_policy == "strict":
                    off.add(minterm)
                continue
            _, code = self.unpack(minterm)
            if target == code:
                on.add(minterm)
            else:
                off.add(minterm)
        dc = frozenset(range(self.space)) - frozenset(on) - frozenset(off)
        return BooleanFunction(self.names, frozenset(on), dc)
