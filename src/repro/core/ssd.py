"""Stable-state detector synthesis (paper Step 4, part 2).

"The equation for SSD begins with a canonical expression involving the
minterms where y = Y.  The same reduction techniques as for Ẑ are used to
reduce this to an essential SOP expression.  By not using all of the
prime implicants, SSD may glitch if there is a multiple-input change.
This causes no problems, though, because the loop delay assumption
assures that SSD will settle before fsv is stable."  (Paper Section 5.2.)

``SSD`` is the completion-detection half of the ``VOM`` gate: it must be

* 1 at every stable point,
* 0 at every specified unstable point *and* every in-flight code of
  every transition subcube (so the detector cannot pulse while the state
  vector is between codes),

and is free elsewhere per the policy discussion on
:meth:`repro.core.spec.SpecifiedMachine.ssd_function`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.cover import minimal_cover
from ..logic.cube import Cube
from ..logic.expr import Expr, sop_to_expr
from ..logic.factor import first_level
from .spec import SpecifiedMachine


@dataclass(frozen=True)
class SsdEquation:
    """The synthesised stable-state detector."""

    cover: tuple[Cube, ...]
    expr: Expr
    exact: bool
    dc_policy: str


def synthesize_ssd(
    spec: SpecifiedMachine, dc_policy: str = "unspecified"
) -> SsdEquation:
    """Essential-SOP equation for ``SSD`` under the given dc policy."""
    function = spec.ssd_function(dc_policy)
    result = minimal_cover(function)
    expr = first_level(sop_to_expr(list(result.cubes), spec.names))
    return SsdEquation(
        cover=result.cubes,
        expr=expr,
        exact=result.exact,
        dc_policy=dc_policy,
    )
