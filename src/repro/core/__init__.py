"""SEANCE: the paper's synthesis pipeline (Figure 3, Steps 4-7).

This package holds the paper's primary contribution: the excitation model
of the encoded machine, the output/SSD determination stage, the Figure-4
hazard search, the fantom-state-variable construction, the Figure-5
hazard factoring, and the pipeline driver tying them together.
"""

from .factoring import FactoredEquation, factor_fsv, factor_next_state
from .fsv import (
    FSV_NAME,
    doubled_names,
    fsv_function,
    next_state_function,
    next_state_functions,
    state_space_growth,
)
from .hazard_analysis import HazardAnalysis, find_hazards
from .outputs import OutputEquation, synthesize_outputs
from .result import SynthesisResult
from .spec import SpecifiedMachine
from .ssd import SsdEquation, synthesize_ssd

# Imported last: the facade pulls in repro.pipeline, whose passes import
# the core submodules above while this package is mid-initialisation.
from .seance import Seance, SynthesisOptions, synthesize

__all__ = [
    "FSV_NAME",
    "FactoredEquation",
    "HazardAnalysis",
    "OutputEquation",
    "Seance",
    "SpecifiedMachine",
    "SsdEquation",
    "SynthesisOptions",
    "SynthesisResult",
    "doubled_names",
    "factor_fsv",
    "factor_next_state",
    "find_hazards",
    "fsv_function",
    "next_state_function",
    "next_state_functions",
    "state_space_growth",
    "synthesize",
    "synthesize_outputs",
    "synthesize_ssd",
]
