"""The hazard search of paper Figure 4 (SEANCE Step 5).

The algorithm walks every *stable-state transition* whose input change
flips more than one bit.  For the transition ``(x^a, y^a) -> (x^b, y^b)``
physical skew between the input flip-flops can expose any strictly
intermediate input vector ``x^k`` while the state vector still reads
``y^a``.  At such a point the combinational excitation momentarily
computes ``Y(x^k, y^a)`` — the flow table's entry for a *different*
transition.  A state variable that is supposed to remain invariant across
the whole change (``y^a_n == y^b_n``) but is excited to the opposite
value at the intermediate point suffers a **function M-hazard** (paper
Section 2.1): no cover choice can remove the wrong pulse, because the
function itself is wrong there for this passage.

The search records each such point per variable (the hazard list
``HL_n``) and their union (``FL``, the on-set of ``fsv``).  Two readings
of the OCR-damaged pseudo-code are resolved here:

* ``notinvariant`` returns *all* offending variables, not just the first
  — with a valid USTT assignment at most one variable can be affected
  per point (the paper: "Each possible hazard affects only one state
  variable because of the properties of the USTT assignment"), and
  collecting all is the safe superset when callers hand us non-USTT
  encodings;
* an intermediate point whose excitation is *unspecified* is pinned to
  the invariant value instead of being recorded as a hazard — a free
  don't-care resolution the completely specified examples of the paper
  never encounter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .spec import SpecifiedMachine


@dataclass
class HazardAnalysis:
    """Hazard lists over the (x, y) minterm space of a specified machine.

    Attributes
    ----------
    hl:
        ``hl[n]`` is the hazard list of state variable ``y{n+1}``: the
        minterms where its specified excitation must be complemented in
        the ``f̄sv`` half (paper Step 6).
    fl:
        The union of all hazard lists — the on-set of ``fsv``.
    pins:
        Don't-care excitation bits pinned to the invariant value:
        ``(minterm, var_index) -> bit``.  Applied to the ``f̄sv`` half
        only; they are resolutions of don't-cares, not hazards.
    transitions_examined / intermediates_examined:
        Search-size counters for reports and benchmarks.
    """

    num_state_vars: int
    hl: dict[int, set[int]] = field(default_factory=dict)
    fl: set[int] = field(default_factory=set)
    pins: dict[tuple[int, int], int] = field(default_factory=dict)
    transitions_examined: int = 0
    intermediates_examined: int = 0

    def hazard_list(self, var_index: int) -> frozenset[int]:
        return frozenset(self.hl.get(var_index, set()))

    @property
    def has_hazards(self) -> bool:
        return bool(self.fl)

    def hazard_count(self) -> int:
        """Total number of (point, variable) hazard records."""
        return sum(len(points) for points in self.hl.values())

    def describe(self, spec: SpecifiedMachine) -> str:
        lines = [
            f"{len(self.fl)} hazard point(s) over "
            f"{self.transitions_examined} multi-input transitions"
        ]
        for n in sorted(self.hl):
            for minterm in sorted(self.hl[n]):
                column, code = spec.unpack(minterm)
                state = spec.encoding.state_of(code)
                lines.append(
                    f"  y{n + 1} at input "
                    f"{spec.table.column_string(column)}, state "
                    f"{state or f'code {code:b}'}"
                )
        return "\n".join(lines)


def find_hazards(spec: SpecifiedMachine) -> HazardAnalysis:
    """Run the Figure-4 search over a specified machine."""
    table = spec.table
    encoding = spec.encoding
    analysis = HazardAnalysis(num_state_vars=spec.num_state_vars)

    for transition in table.transitions(min_input_distance=2):
        analysis.transitions_examined += 1
        code_a = encoding.code(transition.state)
        code_b = encoding.code(transition.dest)
        for x_k in transition.intermediate_columns():
            analysis.intermediates_examined += 1
            minterm = spec.pack(x_k, code_a)
            excited = spec.excitation_code(minterm)
            for n in range(spec.num_state_vars):
                bit_a = code_a >> n & 1
                bit_b = code_b >> n & 1
                if bit_a != bit_b:
                    continue  # variable changes anyway: premature
                    # excitation keeps it inside the transition cube.
                if excited is None:
                    # Unspecified entry: pin the don't-care to the
                    # invariant value (free safety, not a hazard).
                    analysis.pins.setdefault((minterm, n), bit_a)
                    continue
                if (excited >> n & 1) != bit_a:
                    analysis.hl.setdefault(n, set()).add(minterm)
                    analysis.fl.add(minterm)
    # A pin recorded at a point later found hazardous for the same
    # variable is redundant; hazards take precedence.
    for (minterm, n) in list(analysis.pins):
        if minterm in analysis.hl.get(n, set()):
            del analysis.pins[(minterm, n)]
    return analysis
