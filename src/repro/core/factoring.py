"""Hazard factoring (paper Step 7 / Figure 5) and first-level expansion.

Two different treatments, per the paper:

``fsv``
    "To avoid logic hazards, fsv is reduced to all its prime implicants
    ...  Next, fsv is expanded to allow only 'first-level gates', which
    includes only true input variables and state variables.  A term with
    complemented inputs is converted from an AND to an AND-NOR format."
    The all-primes cover makes the cover glitch-free for every
    single-bit change; the AND-NOR expansion removes the separate
    inverter rank whose skew would re-introduce essential hazards.

``Y`` (next-state equations)
    Figure 5's procedure, realised here in three moves whose combined
    effect matches the paper's worked example exactly
    (``Y1 = y1·x1·(f̄sv + fsv·x̄2) + fsv·y2·x̄1·x2``):

    1. *reduce* — minimum prime cover over the doubled ``(x, y, fsv)``
       space;
    2. *bridge* — for every pair of cover cubes lying in opposite ``fsv``
       halves whose (x, y) parts intersect, add the ``fsv``-consensus
       term (Figure 5's ``R̃`` substitution: ``f̄sv + fsv·x̄2`` gaining its
       absorbing ``x̄2``).  Every static-1 hazard on an ``fsv`` transition
       disappears while the covered function is untouched;
    3. *factor* — extract common (x, y) subcubes ``L_i`` so each group
       reads ``L_i · R_i`` with ``R_i`` the OR of the ``fsv``-branch
       residuals, then expand everything into first-level AND-NOR gates.

    The original branch cubes are *kept* alongside their bridges (the
    redundant-cover form): this is what gives the factored equations the
    characteristic five logic levels of Table 1's "X Depth" column.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.cover import minimal_cover
from ..logic.cube import Cube
from ..logic.expr import Expr, make_and, make_or
from ..logic.factor import (
    bridge_consensus,
    common_cube,
    divide_cube,
    first_level,
)
from ..logic.function import BooleanFunction
from ..logic.quine_mccluskey import all_primes_cover
from ..logic.expr import cube_to_expr, sop_to_expr


@dataclass(frozen=True)
class FactoredEquation:
    """A synthesised equation: cover, factored expression, provenance."""

    name: str
    cover: tuple[Cube, ...]
    expr: Expr
    exact: bool


def factor_fsv(
    function: BooleanFunction, name: str = "fsv"
) -> FactoredEquation:
    """All-primes, first-level (AND-NOR) realisation of ``fsv``."""
    cover = all_primes_cover(function)
    expr = first_level(sop_to_expr(cover, function.names))
    return FactoredEquation(
        name=name, cover=tuple(cover), expr=expr, exact=True
    )


def factor_next_state(
    function: BooleanFunction,
    fsv_index: int,
    name: str,
    reduce_mode: str = "split",
) -> FactoredEquation:
    """Figure-5 factoring of one next-state function.

    ``fsv_index`` is the bit position of the ``fsv`` variable in the
    doubled space (the last variable, by construction in
    :mod:`repro.core.fsv`).

    ``reduce_mode`` selects the Step-7 reduction style:

    ``split`` (paper)
        Reduce the ``f̄sv`` and ``fsv`` halves *separately* and tag every
        cube with its ``fsv`` literal — this is the canonical
        ``Y = f̄sv[...] + fsv[...]`` form the paper's worked example
        reduces from, and it yields the uniform five-level factored
        equations of Table 1.

    ``joint``
        Reduce over the whole doubled space, letting cubes merge across
        the ``fsv`` boundary.  Produces smaller, sometimes shallower
        logic; kept as the ablation the factoring benchmark measures.
    """
    if reduce_mode == "joint":
        reduced = minimal_cover(function)
        cubes = list(reduced.cubes)
        exact = reduced.exact
    elif reduce_mode == "split":
        cubes = []
        exact = True
        fsv_name = function.names[fsv_index]
        for polarity in (0, 1):
            half = function.cofactor(fsv_name, polarity)
            half_cover = minimal_cover(half)
            exact = exact and half_cover.exact
            for cube in half_cover.cubes:
                cubes.append(
                    _reattach_fsv(cube, fsv_index, polarity)
                )
    else:
        raise ValueError(f"unknown reduce_mode {reduce_mode!r}")
    bridged = bridge_consensus(cubes, fsv_index)
    expr = _grouped_expression(bridged, function.names, fsv_index)
    return FactoredEquation(
        name=name,
        cover=tuple(bridged),
        expr=first_level(expr),
        exact=exact,
    )


def _reattach_fsv(cube: Cube, fsv_index: int, polarity: int) -> Cube:
    """Lift a cofactor-space cube back into the doubled space.

    The cofactor dropped the ``fsv`` variable (the top bit); the lifted
    cube binds it to ``polarity``.  Only valid because ``fsv`` is the
    last variable, so the remaining bit positions are unchanged.
    """
    if cube.width != fsv_index:
        raise ValueError(
            f"cofactor cube width {cube.width} does not precede fsv at "
            f"bit {fsv_index}"
        )
    mask = cube.mask | (1 << fsv_index)
    value = cube.value | (polarity << fsv_index)
    return Cube(fsv_index + 1, mask, value)


def _grouped_expression(
    cubes: list[Cube], names: tuple[str, ...], fsv_index: int
) -> Expr:
    """Greedy common-cube grouping over the non-fsv variables.

    Repeatedly finds the largest (most literals, then most members)
    shared non-fsv subcube among the remaining terms, emits
    ``AND(L, OR(residuals))`` for its group, and continues.  Terms that
    never group are emitted as plain products.
    """
    if not cubes:
        return sop_to_expr([], names)
    width = cubes[0].width
    nonfsv_mask = ((1 << width) - 1) & ~(1 << fsv_index)

    remaining = list(cubes)
    terms: list[Expr] = []
    while True:
        best: tuple[int, int] | None = None
        best_l: Cube | None = None
        best_members: list[Cube] = []
        for i in range(len(remaining)):
            for j in range(i + 1, len(remaining)):
                shared = common_cube(
                    [
                        remaining[i].restricted_to(nonfsv_mask),
                        remaining[j].restricted_to(nonfsv_mask),
                    ]
                )
                if shared.num_literals == 0:
                    continue
                members = [
                    c
                    for c in remaining
                    if _divides(shared, c.restricted_to(nonfsv_mask))
                ]
                # Tighten L to everything the members actually share.
                shared = common_cube(
                    [c.restricted_to(nonfsv_mask) for c in members]
                )
                # Bigger groups first: gathering the f̄sv/fsv branch pair
                # with its bridge under one L is what yields the paper's
                # L·(f̄sv·u + fsv·v + bridge) shape.
                score = (len(members), shared.num_literals)
                if best is None or score > best:
                    best = score
                    best_l = shared
                    best_members = members
        if best is None or len(best_members) < 2:
            break
        residuals = [divide_cube(c, best_l) for c in best_members]
        inner = make_or(
            [cube_to_expr(r, names) for r in residuals]
        )
        terms.append(make_and([cube_to_expr(best_l, names), inner]))
        remaining = [c for c in remaining if c not in best_members]
    for cube in remaining:
        terms.append(cube_to_expr(cube, names))
    return make_or(terms)


def _divides(divisor: Cube, cube: Cube) -> bool:
    """True when ``divisor``'s literals all appear in ``cube``."""
    return (
        cube.mask & divisor.mask == divisor.mask
        and (cube.value ^ divisor.value) & divisor.mask == 0
    )
