"""The SEANCE synthesis front door (paper Figure 3).

The seven steps — validate, reduce, assign, outputs/ssd, hazards, fsv,
factor — are implemented as passes in :mod:`repro.pipeline.passes` and
executed by the :class:`~repro.pipeline.manager.PassManager`.  This
module is the stable, paper-facing facade over that engine: the
:class:`Seance` tool class, the :func:`synthesize` one-shot, and the
:class:`SynthesisOptions` re-export all keep their pre-pipeline
signatures and behaviour (including the ``stage_seconds`` keys of the
result), so every existing caller and test is unaffected.

Use the pipeline directly when you need more than one-shot synthesis:

* a shared :class:`~repro.pipeline.cache.StageCache` across runs
  (``Seance(cache=...)`` threads one through this facade too);
* batch/parallel synthesis —
  :class:`~repro.pipeline.batch.BatchRunner`;
* custom pass lists (ablations, new workloads) —
  ``PassManager(passes=...)``.
"""

from __future__ import annotations

from ..flowtable.table import FlowTable
from ..pipeline.cache import StageCache
from ..pipeline.manager import PassManager
from ..pipeline.options import SynthesisOptions
from .result import SynthesisResult

__all__ = ["Seance", "SynthesisOptions", "synthesize"]


class Seance:
    """The synthesis tool.  Instances are reusable and stateless
    (a ``cache``, if given, is the only cross-run state)."""

    def __init__(
        self,
        options: SynthesisOptions | None = None,
        cache: StageCache | None = None,
    ):
        self.options = options or SynthesisOptions()
        self._manager = PassManager(cache=cache)

    def run(self, table: FlowTable) -> SynthesisResult:
        """Synthesise a FANTOM machine from a normal-mode flow table."""
        return self._manager.run(table, self.options)


def synthesize(
    table: FlowTable, options: SynthesisOptions | None = None
) -> SynthesisResult:
    """One-shot convenience wrapper around :class:`Seance`."""
    return Seance(options).run(table)
