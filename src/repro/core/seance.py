"""Deprecated SEANCE facade — superseded by :mod:`repro.api`.

This module was the synthesis front door before the library grew its
typed API.  It remains as a thin, behaviour-preserving shim (the golden
tests pin its output byte-for-byte against the original monolithic
implementation), but new code should use :mod:`repro.api`:

=============================  =======================================
old                            new
=============================  =======================================
``synthesize(table, options)``  ``api.synthesize(table, options)``
``Seance(options, cache)``      ``api.load(table).with_options(...)``
                                ``.with_cache(...)`` — a :class:`Session`
``SynthesisOptions``            ``api.SynthesisOptions`` (re-export)
=============================  =======================================

The :class:`Seance` tool class emits a :class:`DeprecationWarning`;
:func:`synthesize` stays silent because it is re-exported (from
:mod:`repro.api`) as the package-level ``repro.synthesize``.
"""

from __future__ import annotations

import warnings

from ..flowtable.table import FlowTable
from ..pipeline.cache import StageCache
from ..pipeline.options import SynthesisOptions
from ..pipeline.spec import PipelineSpec
from .result import SynthesisResult

__all__ = ["Seance", "SynthesisOptions", "synthesize"]


class Seance:
    """The pre-API synthesis tool class (deprecated).

    Equivalent to a :class:`repro.api.Session` without a bound table:
    reusable across tables, stateless apart from an optional shared
    ``cache``.
    """

    def __init__(
        self,
        options: SynthesisOptions | None = None,
        cache: StageCache | None = None,
    ):
        warnings.warn(
            "repro.core.seance.Seance is deprecated; use repro.api "
            "(api.load(...).with_options(...).run(), or api.synthesize)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.options = options or SynthesisOptions()
        self._spec = PipelineSpec(options=self.options)
        self._cache = cache

    def run(self, table: FlowTable) -> SynthesisResult:
        """Synthesise a FANTOM machine from a normal-mode flow table."""
        manager = self._spec.build_manager(cache=self._cache)
        return manager.run(table, self.options)


def synthesize(
    table: FlowTable, options: SynthesisOptions | None = None
) -> SynthesisResult:
    """One-shot synthesis (shim for :func:`repro.api.synthesize`)."""
    from ..api import synthesize as api_synthesize

    return api_synthesize(table, options)
