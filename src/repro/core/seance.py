"""The SEANCE synthesis pipeline (paper Figure 3).

Seven steps, each delegated to its package:

1. flow-table preparation — the caller supplies a validated
   :class:`~repro.flowtable.table.FlowTable` (KISS2, builder, or STG);
2. table reduction — :mod:`repro.minimize`;
3. USTT state assignment — :mod:`repro.assign`;
4. ``Z`` and ``SSD`` equation generation — :mod:`repro.core.outputs`,
   :mod:`repro.core.ssd`;
5. hazard search — :mod:`repro.core.hazard_analysis` (Figure 4);
6. ``fsv`` and ``Y`` equation generation — :mod:`repro.core.fsv`;
7. hazard factoring — :mod:`repro.core.factoring` (Figure 5).

`Seance.run` wires them together, times each stage, and returns a
:class:`~repro.core.result.SynthesisResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..assign.tracey import assign_states
from ..assign.verify import ustt_violations
from ..errors import SynthesisError
from ..flowtable.table import FlowTable
from ..flowtable.validation import validate
from ..minimize.reducer import ReductionResult, reduce_flow_table
from .factoring import factor_fsv, factor_next_state
from .fsv import fsv_function, next_state_functions
from .hazard_analysis import find_hazards
from .outputs import synthesize_outputs
from .result import SynthesisResult
from .spec import SpecifiedMachine
from .ssd import synthesize_ssd


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the pipeline (paper defaults).

    Attributes
    ----------
    minimize:
        Run Step 2 (table reduction).  The MCNC-style benchmarks are
        already minimal, but incompletely specified user tables often are
        not.
    validate_input:
        Check normal mode / strong connectivity / restability before
        synthesis.  Disable only for deliberately partial tables in
        tests.
    output_policy:
        ``stable_only`` (paper; outputs latched at VOM) or
        ``as_specified`` (honour transitional output bits).
    ssd_dc_policy:
        ``unspecified`` (don't-care outside the travelled space) or
        ``strict`` (the canonical ``y == Y`` reading).  See
        :meth:`repro.core.spec.SpecifiedMachine.ssd_function`.
    verify_assignment:
        Re-check the Tracey assignment against the USTT condition and
        fail loudly instead of producing a racy machine.
    reduce_mode:
        Step-7 reduction style for the next-state equations: ``split``
        (paper: reduce the two fsv halves separately) or ``joint``
        (minimise over the doubled space; ablation).  See
        :func:`repro.core.factoring.factor_next_state`.
    hazard_correction:
        With False, Steps 6-7 use an *empty* hazard list: ``fsv`` is the
        constant 0 and the next-state equations are the plain reduced
        excitations.  The Figure-4 analysis still runs (and is reported),
        so the result records which hazards were knowingly left in — this
        is the unprotected machine of the hazard-ablation benchmark.
    """

    minimize: bool = True
    validate_input: bool = True
    output_policy: str = "stable_only"
    ssd_dc_policy: str = "unspecified"
    verify_assignment: bool = True
    reduce_mode: str = "split"
    hazard_correction: bool = True


class Seance:
    """The synthesis tool.  Instances are reusable and stateless."""

    def __init__(self, options: SynthesisOptions | None = None):
        self.options = options or SynthesisOptions()

    def run(self, table: FlowTable) -> SynthesisResult:
        """Synthesise a FANTOM machine from a normal-mode flow table."""
        options = self.options
        stage_seconds: dict[str, float] = {}

        def timed(stage: str):
            class _Timer:
                def __enter__(self_inner):
                    self_inner.start = time.perf_counter()
                    return self_inner

                def __exit__(self_inner, *exc):
                    stage_seconds[stage] = (
                        time.perf_counter() - self_inner.start
                    )
                    return False

            return _Timer()

        # Step 1: flow table preparation (validation).
        with timed("validate"):
            if options.validate_input:
                validate(table)

        # Step 2: table reduction.
        with timed("reduce"):
            if options.minimize:
                reduction = reduce_flow_table(table)
            else:
                reduction = ReductionResult(
                    table=table,
                    cover=_trivial_cover(table),
                    state_map={s: (s,) for s in table.states},
                )
        working = reduction.table

        # Step 3: USTT state assignment.
        with timed("assign"):
            assignment = assign_states(working)
            if options.verify_assignment:
                problems = ustt_violations(working, assignment.encoding)
                if problems:
                    raise SynthesisError(
                        "state assignment violates the USTT condition:\n  "
                        + "\n  ".join(problems)
                    )
        spec = SpecifiedMachine(working, assignment.encoding)

        # Step 4: output determination (Z and SSD).
        with timed("outputs"):
            outputs = synthesize_outputs(spec, options.output_policy)
            ssd = synthesize_ssd(spec, options.ssd_dc_policy)

        # Step 5: hazard search (Figure 4).
        with timed("hazards"):
            analysis = find_hazards(spec)

        # Step 6: fsv and Y canonical equations.
        with timed("fsv"):
            if options.hazard_correction:
                effective = analysis
            else:
                from .hazard_analysis import HazardAnalysis

                effective = HazardAnalysis(
                    num_state_vars=spec.num_state_vars
                )
            fsv_fn = fsv_function(spec, effective)
            y_fns = next_state_functions(spec, effective)

        # Step 7: hazard factoring (Figure 5).
        with timed("factor"):
            fsv_eq = factor_fsv(fsv_fn)
            fsv_index = spec.width  # fsv is the top bit of the doubled space
            y_eqs = [
                factor_next_state(
                    fn,
                    fsv_index,
                    name=spec.encoding.variables[n],
                    reduce_mode=options.reduce_mode,
                )
                for n, fn in enumerate(y_fns)
            ]

        return SynthesisResult(
            source=table,
            reduction=reduction,
            assignment=assignment,
            spec=spec,
            analysis=analysis,
            fsv=fsv_eq,
            next_state=y_eqs,
            outputs=outputs,
            ssd=ssd,
            stage_seconds=stage_seconds,
        )


def synthesize(
    table: FlowTable, options: SynthesisOptions | None = None
) -> SynthesisResult:
    """One-shot convenience wrapper around :class:`Seance`."""
    return Seance(options).run(table)


def _trivial_cover(table: FlowTable):
    from ..minimize.cover_search import ClosedCover

    return ClosedCover(
        classes=tuple(frozenset({s}) for s in table.states),
        exact=True,
    )
