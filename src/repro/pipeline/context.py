"""The artifact store threaded through a pipeline run.

A :class:`PipelineContext` carries the immutable inputs of a run (the
source flow table and the options) plus the artifacts each pass
produces — the reduced table, the assignment, the specified machine, the
hazard analysis, the equations.  Passes communicate *only* through the
context: a pass declares which artifact keys it ``requires`` and which
it ``provides``, and the :class:`~repro.pipeline.manager.PassManager`
enforces both sides of the contract.  That discipline is what makes the
stage cache sound — a pass's output is a pure function of the table, the
options and its upstream artifacts, so a content-hash over (table,
options, pass prefix) identifies it completely.
"""

from __future__ import annotations

from typing import Any

from ..errors import SynthesisError
from ..flowtable.table import FlowTable
from .options import SynthesisOptions

#: Sentinel distinguishing "absent" from "stored None".
_MISSING = object()


class PipelineContext:
    """Artifacts of one synthesis run, keyed by name.

    The context is a write-once store: a pass may not silently overwrite
    an artifact another pass produced (that would make the cache lie
    about provenance).  Re-setting a key to the *same* object is
    permitted so cache restores stay idempotent.
    """

    def __init__(self, table: FlowTable, options: SynthesisOptions):
        self.table = table
        self.options = options
        self._artifacts: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return key in self._artifacts

    def get(self, key: str) -> Any:
        value = self._artifacts.get(key, _MISSING)
        if value is _MISSING:
            raise SynthesisError(
                f"pipeline artifact {key!r} has not been produced yet "
                f"(available: {sorted(self._artifacts)})"
            )
        return value

    def set(self, key: str, value: Any) -> None:
        existing = self._artifacts.get(key, _MISSING)
        if existing is not _MISSING and existing is not value:
            raise SynthesisError(
                f"pipeline artifact {key!r} is already set; passes may "
                "not overwrite each other's artifacts"
            )
        self._artifacts[key] = value

    def snapshot(self, keys: tuple[str, ...]) -> dict[str, Any]:
        """The named artifacts, for storing in the stage cache."""
        return {key: self.get(key) for key in keys}

    def restore(self, artifacts: dict[str, Any]) -> None:
        """Install cached artifacts (a cache hit) into the store."""
        for key, value in artifacts.items():
            self.set(key, value)

    def keys(self) -> tuple[str, ...]:
        return tuple(self._artifacts)
