"""The synthesis pass pipeline: manager, passes, stage cache, batch runner.

This package is the engine under :func:`repro.core.seance.synthesize`.
The paper's seven Figure-3 steps are :class:`Pass` objects
(:mod:`repro.pipeline.passes`); :class:`PassManager` runs a declarative
pass list over a :class:`PipelineContext` artifact store with per-pass
timing, error wrapping and a content-hash :class:`StageCache`
(:mod:`repro.pipeline.cache`); :class:`BatchRunner`
(:mod:`repro.pipeline.batch`) fans a table list out over worker
processes with an ordered, deterministic result stream.

Typical use::

    from repro.pipeline import PassManager, StageCache

    manager = PassManager(cache=StageCache())
    result = manager.run(table)            # SynthesisResult
    result, report = manager.run_with_report(table)
    print(report.describe())               # per-pass ms + cache hits
"""

from .batch import BatchItem, BatchRunner, synthesize_batch
from .cache import (
    CACHE_FORMAT_VERSION,
    StageCache,
    run_fingerprint,
    stage_key,
    table_fingerprint,
)
from .context import PipelineContext
from .manager import PassError, PassEvent, PassManager, PipelineReport
from .options import SynthesisOptions
from .passes import (
    AssignPass,
    FactorPass,
    FsvPass,
    HazardsPass,
    OutputsPass,
    Pass,
    ReducePass,
    ValidatePass,
    default_passes,
)
from .registry import (
    DEFAULT_PIPELINE,
    base_name,
    create_pass,
    register_pass,
    registered_passes,
    resolve_passes,
    substitute,
)
from .spec import SPEC_FORMAT_VERSION, CacheSpec, PipelineSpec

__all__ = [
    "AssignPass",
    "BatchItem",
    "BatchRunner",
    "CACHE_FORMAT_VERSION",
    "CacheSpec",
    "DEFAULT_PIPELINE",
    "FactorPass",
    "FsvPass",
    "HazardsPass",
    "OutputsPass",
    "Pass",
    "PassError",
    "PassEvent",
    "PassManager",
    "PipelineContext",
    "PipelineReport",
    "PipelineSpec",
    "ReducePass",
    "SPEC_FORMAT_VERSION",
    "StageCache",
    "SynthesisOptions",
    "ValidatePass",
    "base_name",
    "create_pass",
    "default_passes",
    "register_pass",
    "registered_passes",
    "resolve_passes",
    "run_fingerprint",
    "stage_key",
    "substitute",
    "synthesize_batch",
    "table_fingerprint",
]
