"""Synthesis options: the knobs of the pass pipeline (paper defaults).

Historically this dataclass lived in :mod:`repro.core.seance`; it moved
here when the monolithic ``Seance.run`` became a pass pipeline, because
every pass (and the stage cache, which fingerprints options) needs it
while :mod:`repro.core.seance` is now a thin facade *over* the pipeline.
``repro.core.seance.SynthesisOptions`` remains a re-export, so existing
imports keep working.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the pipeline (paper defaults).

    Attributes
    ----------
    minimize:
        Run Step 2 (table reduction).  The MCNC-style benchmarks are
        already minimal, but incompletely specified user tables often are
        not.
    validate_input:
        Check normal mode / strong connectivity / restability before
        synthesis.  Disable only for deliberately partial tables in
        tests.
    output_policy:
        ``stable_only`` (paper; outputs latched at VOM) or
        ``as_specified`` (honour transitional output bits).
    ssd_dc_policy:
        ``unspecified`` (don't-care outside the travelled space) or
        ``strict`` (the canonical ``y == Y`` reading).  See
        :meth:`repro.core.spec.SpecifiedMachine.ssd_function`.
    verify_assignment:
        Re-check the Tracey assignment against the USTT condition and
        fail loudly instead of producing a racy machine.
    reduce_mode:
        Step-7 reduction style for the next-state equations: ``split``
        (paper: reduce the two fsv halves separately) or ``joint``
        (minimise over the doubled space; ablation).  See
        :func:`repro.core.factoring.factor_next_state`.
    hazard_correction:
        With False, Steps 6-7 use an *empty* hazard list: ``fsv`` is the
        constant 0 and the next-state equations are the plain reduced
        excitations.  The Figure-4 analysis still runs (and is reported),
        so the result records which hazards were knowingly left in — this
        is the unprotected machine of the hazard-ablation benchmark.
    """

    minimize: bool = True
    validate_input: bool = True
    output_policy: str = "stable_only"
    ssd_dc_policy: str = "unspecified"
    verify_assignment: bool = True
    reduce_mode: str = "split"
    hazard_correction: bool = True

    def fingerprint_items(self) -> tuple[tuple[str, object], ...]:
        """Canonical ``(field, value)`` tuple for cache fingerprinting."""
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
        )
