"""Content-hash stage cache for the pass pipeline.

Synthesis is deterministic: every artifact is a pure function of the
source flow table, the options, and the passes that ran before it.  The
cache therefore keys each stage by

    sha256(cache format version
           ‖ canonical flow-table text (incl. signal/state names)
           ‖ canonical options items
           ‖ the pass-name prefix up to and including this stage)

and stores the artifacts the stage provided.  Re-synthesising the same
table — the bench suite re-running, an ablation sharing its prefix with
the paper-default run, a property test shrinking — skips every stage
whose key is already present.

Two tiers:

* an in-memory dictionary (always on), and
* an optional directory of pickle files (``path=...``) so separate
  processes/invocations — ``seance batch --cache-dir`` — share warm
  stages.  Disk entries are written atomically (tmp + rename) and
  unreadable/corrupt files are treated as misses.

Note the prefix hash means an ablated run (say ``reduce_mode="joint"``)
shares *no* keys with the paper-default run even though their first
stages compute identical artifacts: options are hashed whole.  That is
deliberate — it keeps the key derivation auditable and can never serve
a stale artifact.  The remaining caveat: a pass whose *behaviour*
changes without its class moving or being renamed (an edited method, a
pass reading global state) is indistinguishable to the key; bump
:data:`CACHE_FORMAT_VERSION` (or clear the cache directory) when
editing pass semantics in place.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any

from ..flowtable.table import FlowTable
from .options import SynthesisOptions

#: Bump when artifact layout or pass semantics change incompatibly.
CACHE_FORMAT_VERSION = 1


def table_fingerprint(table: FlowTable) -> str:
    """A canonical text form of a flow table, for hashing.

    KISS2 serialisation is *not* used because it drops signal names; the
    fingerprint must distinguish tables that synthesise to differently
    named equations.
    """
    lines = [
        f"name={table.name!r}",
        f"inputs={tuple(table.inputs)!r}",
        f"outputs={tuple(table.outputs)!r}",
        f"states={tuple(table.states)!r}",
        f"reset={table.reset_state!r}",
    ]
    # The full entry map, not just specified_entries(): a cell with an
    # unspecified successor can still carry output bits, and those bits
    # feed output-compatibility during reduction — two tables differing
    # only there must not share a key.
    for (state, column), entry in sorted(table.entry_map().items()):
        lines.append(
            f"{(state, column, entry.next_state, entry.outputs)!r}"
        )
    return "\n".join(lines)


def run_fingerprint(table: FlowTable, options: SynthesisOptions) -> str:
    """The (table, options) prefix every stage key of a run derives from."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_FORMAT_VERSION}\n".encode())
    digest.update(table_fingerprint(table).encode())
    digest.update(repr(options.fingerprint_items()).encode())
    return digest.hexdigest()


def stage_key(run_prefix: str, pass_names: tuple[str, ...]) -> str:
    """The content hash identifying one stage of one run.

    ``pass_names`` is the pipeline prefix up to and including the stage
    (the manager passes ``name=module.QualName`` entries, so swapping a
    pass *implementation* under the same name also changes the key);
    inserting, removing or reordering passes invalidates every key
    downstream of the edit.
    """
    digest = hashlib.sha256()
    digest.update(run_prefix.encode())
    # repr of the tuple, not a joined string: pass names are arbitrary,
    # and ("a/b",) must never collide with ("a", "b").
    digest.update(repr(tuple(pass_names)).encode())
    return digest.hexdigest()


class StageCache:
    """In-memory (optionally disk-backed) store of completed stages.

    ``max_entries`` bounds the in-memory tier (FIFO eviction — synthesis
    artifacts are small, the bound is a safety valve for unbounded batch
    loops, not a tuned policy).  ``hits``/``misses``/``stores`` expose
    effectiveness to the benchmarks.
    """

    def __init__(
        self, path: str | os.PathLike | None = None, max_entries: int = 4096
    ):
        self._memory: dict[str, dict[str, Any]] = {}
        self._path = Path(path) if path is not None else None
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        if self._path is not None:
            self._path.mkdir(parents=True, exist_ok=True)

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def path(self) -> Path | None:
        """Disk-tier directory, or None for a memory-only cache."""
        return self._path

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stage's artifacts, or None on a miss."""
        artifacts = self._memory.get(key)
        if artifacts is None and self._path is not None:
            artifacts = self._read_disk(key)
            if artifacts is not None:
                self._remember(key, artifacts)
        if artifacts is None:
            self.misses += 1
            return None
        self.hits += 1
        return artifacts

    def put(self, key: str, artifacts: dict[str, Any]) -> None:
        self._remember(key, artifacts)
        self.stores += 1
        if self._path is not None:
            self._write_disk(key, artifacts)

    def clear(self) -> None:
        self._memory.clear()

    # ------------------------------------------------------------------
    def _remember(self, key: str, artifacts: dict[str, Any]) -> None:
        while len(self._memory) >= self._max_entries:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = artifacts

    def _entry_path(self, key: str) -> Path:
        assert self._path is not None
        return self._path / f"{key}.pkl"

    def _read_disk(self, key: str) -> dict[str, Any] | None:
        entry = self._entry_path(key)
        try:
            with entry.open("rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            # Missing, corrupt, or written by an incompatible version:
            # a miss, never an error.
            return None

    def _write_disk(self, key: str, artifacts: dict[str, Any]) -> None:
        entry = self._entry_path(key)
        tmp = entry.with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(artifacts, handle, pickle.HIGHEST_PROTOCOL)
            tmp.replace(entry)
        except (OSError, pickle.PickleError):
            # Unpicklable artifact or unwritable directory: stay
            # memory-only rather than failing the synthesis.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
