"""Content-hash stage cache for the pass pipeline.

Synthesis is deterministic: every artifact is a pure function of the
source flow table, the options, and the passes that ran before it.  The
cache therefore keys each stage by

    sha256(cache format version
           ‖ canonical flow-table text (incl. signal/state names)
           ‖ canonical options items
           ‖ the pass-name prefix up to and including this stage)

and stores the artifacts the stage provided.  Re-synthesising the same
table — the bench suite re-running, an ablation sharing its prefix with
the paper-default run, a property test shrinking — skips every stage
whose key is already present.

Two tiers:

* an in-memory dictionary (always on), and
* an optional persistent tier over a
  :class:`~repro.store.backend.StoreBackend` (``path=...`` — a local
  directory, an ``http(s)://`` object store, or a ``cache://`` TTL
  cache), so separate processes/invocations — ``seance batch
  --cache-dir`` — and whole fleets share warm stages.  Each persistent
  entry is a self-describing envelope (a ``repro-stage <version>
  <key>`` header ahead of the pickled artifacts) verified on read:
  corrupt, truncated, cross-wired, or incompatibly-versioned blobs are
  misses (counted in ``rejected``), never errors — the same
  degrade-to-recompute contract the result store makes.

Note the prefix hash means an ablated run (say ``reduce_mode="joint"``)
shares *no* keys with the paper-default run even though their first
stages compute identical artifacts: options are hashed whole.  That is
deliberate — it keeps the key derivation auditable and can never serve
a stale artifact.  The remaining caveat: a pass whose *behaviour*
changes without its class moving or being renamed (an edited method, a
pass reading global state) is indistinguishable to the key; bump
:data:`CACHE_FORMAT_VERSION` (or clear the cache directory) when
editing pass semantics in place.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any

from ..flowtable.table import FlowTable
from .options import SynthesisOptions

#: Bump when artifact layout or pass semantics change incompatibly.
CACHE_FORMAT_VERSION = 1

#: Version of the persistent stage-blob envelope (header + pickle).
STAGE_BLOB_VERSION = 1


def table_fingerprint(table: FlowTable) -> str:
    """A canonical text form of a flow table, for hashing.

    KISS2 serialisation is *not* used because it drops signal names; the
    fingerprint must distinguish tables that synthesise to differently
    named equations.
    """
    lines = [
        f"name={table.name!r}",
        f"inputs={tuple(table.inputs)!r}",
        f"outputs={tuple(table.outputs)!r}",
        f"states={tuple(table.states)!r}",
        f"reset={table.reset_state!r}",
    ]
    # The full entry map, not just specified_entries(): a cell with an
    # unspecified successor can still carry output bits, and those bits
    # feed output-compatibility during reduction — two tables differing
    # only there must not share a key.
    for (state, column), entry in sorted(table.entry_map().items()):
        lines.append(
            f"{(state, column, entry.next_state, entry.outputs)!r}"
        )
    return "\n".join(lines)


def run_fingerprint(table: FlowTable, options: SynthesisOptions) -> str:
    """The (table, options) prefix every stage key of a run derives from."""
    digest = hashlib.sha256()
    digest.update(f"v{CACHE_FORMAT_VERSION}\n".encode())
    digest.update(table_fingerprint(table).encode())
    digest.update(repr(options.fingerprint_items()).encode())
    return digest.hexdigest()


def stage_key(run_prefix: str, pass_names: tuple[str, ...]) -> str:
    """The content hash identifying one stage of one run.

    ``pass_names`` is the pipeline prefix up to and including the stage
    (the manager passes ``name=module.QualName`` entries, so swapping a
    pass *implementation* under the same name also changes the key);
    inserting, removing or reordering passes invalidates every key
    downstream of the edit.
    """
    digest = hashlib.sha256()
    digest.update(run_prefix.encode())
    # repr of the tuple, not a joined string: pass names are arbitrary,
    # and ("a/b",) must never collide with ("a", "b").
    digest.update(repr(tuple(pass_names)).encode())
    return digest.hexdigest()


class StageCache:
    """In-memory (optionally backend-persisted) store of completed stages.

    ``path`` names the persistent tier: a local directory (the classic
    ``--cache-dir``), or any :func:`~repro.store.backend.resolve_backend`
    location — an ``http(s)://`` object store or ``cache://`` TTL
    cache, so ablation sweeps across a fleet share warm pass prefixes.
    An explicit ``backend`` wins over ``path``.  ``max_entries`` bounds
    the in-memory tier (FIFO eviction — synthesis artifacts are small,
    the bound is a safety valve for unbounded batch loops, not a tuned
    policy).  ``hits``/``misses``/``stores``/``rejected`` expose
    effectiveness and fail-safety to the benchmarks.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_entries: int = 4096,
        backend=None,
        policy=None,
    ):
        from ..store.backend import resolve_backend

        self._memory: dict[str, dict[str, Any]] = {}
        if backend is not None:
            self._backend = backend
        elif path is not None:
            # ``policy`` tunes the transport when ``path`` is a
            # networked location (retry/timeout/breaker).
            self._backend = resolve_backend(path, policy=policy)
        else:
            self._backend = None
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Persistent blobs that existed but failed envelope
        #: verification (corrupt, truncated, or wrong key/version).
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def path(self) -> Path | None:
        """Disk-tier directory, or None when the persistent tier is
        memory-only or non-directory (networked)."""
        return getattr(self._backend, "path", None)

    @property
    def location(self) -> str | None:
        """A re-openable location string for the persistent tier (the
        directory path or backend URL), or None when memory-only.
        Worker processes re-open their cache from this."""
        path = getattr(self._backend, "path", None)
        if path is not None:
            return str(path)
        return getattr(self._backend, "url", None)

    @property
    def backend(self):
        """The persistent-tier backend, or None when memory-only."""
        return self._backend

    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stage's artifacts, or None on a miss."""
        artifacts = self._memory.get(key)
        if artifacts is None and self._backend is not None:
            artifacts = self._read_persistent(key)
            if artifacts is not None:
                self._remember(key, artifacts)
        if artifacts is None:
            self.misses += 1
            return None
        self.hits += 1
        return artifacts

    def put(self, key: str, artifacts: dict[str, Any]) -> None:
        self._remember(key, artifacts)
        self.stores += 1
        if self._backend is not None:
            self._write_persistent(key, artifacts)

    def clear(self) -> None:
        self._memory.clear()

    # ------------------------------------------------------------------
    def _remember(self, key: str, artifacts: dict[str, Any]) -> None:
        while len(self._memory) >= self._max_entries:
            self._memory.pop(next(iter(self._memory)))
        self._memory[key] = artifacts

    # -- persistent tier: self-describing envelopes over a backend -----
    @staticmethod
    def _blob_name(key: str) -> str:
        # Flat names, no subdirectories: a cache directory is globbable
        # as `*.pkl` and any key collision is a content-hash collision.
        return f"{key}.pkl"

    @staticmethod
    def _header(key: str) -> bytes:
        return f"repro-stage {STAGE_BLOB_VERSION} {key}\n".encode()

    def _read_persistent(self, key: str) -> dict[str, Any] | None:
        blob = self._backend.read(self._blob_name(key))
        if blob is None:
            return None
        header = self._header(key)
        if not blob.startswith(header):
            # Legacy raw pickle, truncated blob, or an entry cross-wired
            # under the wrong name: a verified miss, never an error.
            self.rejected += 1
            return None
        try:
            artifacts = pickle.loads(blob[len(header):])
        except (pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.rejected += 1
            return None
        if not isinstance(artifacts, dict):
            self.rejected += 1
            return None
        return artifacts

    def _write_persistent(self, key: str, artifacts: dict[str, Any]) -> None:
        try:
            payload = pickle.dumps(artifacts, pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, TypeError, AttributeError):
            # Unpicklable artifact: stay memory-only rather than
            # failing the synthesis.
            return
        # Backend writes degrade silently on an unwritable/unreachable
        # tier (the StoreBackend contract) — same fail-safe as before.
        self._backend.write(self._blob_name(key), self._header(key) + payload)
