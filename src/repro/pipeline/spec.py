"""Declarative pipeline configuration: the :class:`PipelineSpec`.

A spec is everything a synthesis run is configured by, as plain data:

* the **pass list** — registry keys (:mod:`repro.pipeline.registry`),
* the **options** — a :class:`~repro.pipeline.options.SynthesisOptions`,
* the **cache config** — a :class:`CacheSpec`.

Because all three are names and scalars, a spec round-trips through JSON
(``to_dict``/``from_dict``, strictly: unknown keys are errors, and
re-serialising a deserialised spec is byte-identical), which is what the
sharded-batch and remote-store roadmap items need: an ablation run is
reproducible from a spec file alone (``seance synth --spec SPEC.json``),
and :meth:`fingerprint` names a configuration content-addressably for
cross-machine work-splitting.

Cache interaction: the spec's pass keys are embedded in the stage-cache
lineage by the :class:`~repro.pipeline.manager.PassManager` (see
:data:`~repro.pipeline.cache.stage_key`), and the options are hashed
into the run prefix — so two specs share exactly the stage keys of
their common (options, pass-prefix) history and nothing else.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import SynthesisError
from .cache import StageCache
from .manager import PassManager
from .options import SynthesisOptions
from .registry import DEFAULT_PIPELINE, registered_passes, resolve_passes
from .registry import substitute as _substitute

#: Bump when the spec dictionary layout changes incompatibly.
SPEC_FORMAT_VERSION = 1


def _require_keys(payload: dict, allowed: set[str], what: str) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SynthesisError(
            f"unknown {what} key(s) {unknown}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class CacheSpec:
    """Stage-cache configuration, as data.

    ``enabled=False`` disables caching entirely; ``path`` adds the disk
    tier (shared across processes/invocations); ``max_entries`` bounds
    the in-memory tier.
    """

    enabled: bool = True
    path: str | None = None
    max_entries: int = 4096

    def build(self) -> StageCache | None:
        """Materialise the configured cache (None when disabled).

        An unusable ``path`` raises a domain error (so CLI consumers
        report it cleanly) rather than a raw OSError.
        """
        if not self.enabled:
            return None
        try:
            return StageCache(path=self.path, max_entries=self.max_entries)
        except OSError as error:
            raise SynthesisError(
                f"cannot use stage-cache directory {self.path!r}: {error}"
            ) from error

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "path": self.path,
            "max_entries": self.max_entries,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheSpec":
        if not isinstance(payload, dict):
            raise SynthesisError(
                f"cache spec must be an object, got {type(payload).__name__}"
            )
        _require_keys(payload, {"enabled", "path", "max_entries"}, "cache spec")
        spec = cls(
            enabled=payload.get("enabled", True),
            path=payload.get("path"),
            max_entries=payload.get("max_entries", 4096),
        )
        if not isinstance(spec.enabled, bool):
            raise SynthesisError("cache spec 'enabled' must be a boolean")
        if spec.path is not None and not isinstance(spec.path, str):
            raise SynthesisError("cache spec 'path' must be a string or null")
        if not isinstance(spec.max_entries, int) or spec.max_entries < 1:
            raise SynthesisError(
                "cache spec 'max_entries' must be a positive integer"
            )
        return spec


def _options_to_dict(options: SynthesisOptions) -> dict:
    return {f.name: getattr(options, f.name)
            for f in dataclasses.fields(SynthesisOptions)}


def _options_from_dict(payload: dict) -> SynthesisOptions:
    if not isinstance(payload, dict):
        raise SynthesisError(
            f"options must be an object, got {type(payload).__name__}"
        )
    fields = {f.name for f in dataclasses.fields(SynthesisOptions)}
    _require_keys(payload, fields, "options")
    try:
        return SynthesisOptions(**payload)
    except TypeError as error:
        raise SynthesisError(f"bad options: {error}") from error


@dataclass(frozen=True)
class PipelineSpec:
    """A named, serialisable pipeline configuration.

    Immutable; the ``with_*``/:meth:`substitute` builders derive new
    specs.  Pass names are validated against the registry on
    construction, so a typo fails at spec-build time, not mid-run.
    """

    passes: tuple[str, ...] = DEFAULT_PIPELINE
    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    cache: CacheSpec = field(default_factory=CacheSpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "passes", tuple(self.passes))
        if not self.passes:
            raise SynthesisError("a pipeline spec needs at least one pass")
        known = set(registered_passes())
        unknown = [key for key in self.passes if key not in known]
        if unknown:
            raise SynthesisError(
                f"unknown pass name(s) {unknown}; registered passes: "
                f"{', '.join(sorted(known))}"
            )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def with_passes(self, *passes: str) -> "PipelineSpec":
        """A spec running exactly ``passes`` (registry keys, in order)."""
        return dataclasses.replace(self, passes=tuple(passes))

    def substitute(self, *overrides: str) -> "PipelineSpec":
        """Swap stages by base name (``spec.substitute("factor:joint")``)."""
        return dataclasses.replace(
            self, passes=_substitute(self.passes, *overrides)
        )

    def with_options(
        self, options: SynthesisOptions | None = None, **overrides
    ) -> "PipelineSpec":
        """Replace the options (or update fields of the current ones)."""
        base = options if options is not None else self.options
        if overrides:
            try:
                base = dataclasses.replace(base, **overrides)
            except TypeError as error:
                raise SynthesisError(f"bad options: {error}") from error
        return dataclasses.replace(self, options=base)

    def with_cache(
        self, cache: CacheSpec | str | os.PathLike | None
    ) -> "PipelineSpec":
        """Set the cache config (a path means a disk-tier cache there)."""
        if cache is None:
            spec = CacheSpec(enabled=False)
        elif isinstance(cache, CacheSpec):
            spec = cache
        else:
            spec = CacheSpec(path=os.fspath(cache))
        return dataclasses.replace(self, cache=spec)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self) -> tuple:
        """Instantiate the pass list from the registry."""
        return resolve_passes(self.passes)

    def build_manager(self, cache: StageCache | None | object = ...) -> PassManager:
        """A :class:`PassManager` running this spec's pipeline.

        ``cache`` overrides the spec's cache config with an existing
        :class:`StageCache` instance (or explicit None); by default the
        configured cache is built fresh.
        """
        built = self.cache.build() if cache is ... else cache
        return PassManager(passes=self.resolve(), cache=built)

    def fingerprint(self) -> str:
        """Content hash naming this configuration (cache config excluded).

        Two specs with equal fingerprints synthesise identically; the
        cache config only decides where artifacts are stored, so it does
        not participate.  This is the key sharded batch runs partition
        work by.
        """
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    SPEC_FORMAT_VERSION,
                    self.passes,
                    self.options.fingerprint_items(),
                )
            ).encode()
        )
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form; ``from_dict`` round-trips it."""
        return {
            "format": SPEC_FORMAT_VERSION,
            "passes": list(self.passes),
            "options": _options_to_dict(self.options),
            "cache": self.cache.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineSpec":
        """Strict inverse of :meth:`to_dict` (unknown keys are errors)."""
        if not isinstance(payload, dict):
            raise SynthesisError(
                f"pipeline spec must be an object, got "
                f"{type(payload).__name__}"
            )
        _require_keys(
            payload, {"format", "passes", "options", "cache"}, "pipeline spec"
        )
        version = payload.get("format", SPEC_FORMAT_VERSION)
        if version != SPEC_FORMAT_VERSION:
            raise SynthesisError(
                f"unsupported pipeline spec format {version!r} "
                f"(this build reads format {SPEC_FORMAT_VERSION})"
            )
        passes = payload.get("passes", list(DEFAULT_PIPELINE))
        if not isinstance(passes, (list, tuple)) or not all(
            isinstance(key, str) for key in passes
        ):
            raise SynthesisError("pipeline spec 'passes' must be a "
                                 "list of pass names")
        return cls(
            passes=tuple(passes),
            options=_options_from_dict(payload.get("options", {})),
            cache=CacheSpec.from_dict(payload.get("cache", {})),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SynthesisError(
                f"pipeline spec is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    def save(self, path: str | os.PathLike) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "PipelineSpec":
        try:
            text = Path(path).read_text()
        except OSError as error:
            raise SynthesisError(
                f"cannot read pipeline spec {os.fspath(path)!r}: {error}"
            ) from error
        return cls.from_json(text)
