"""Batch synthesis: many tables through the pass pipeline at once.

`BatchRunner` synthesises a sequence of flow tables and yields one
:class:`BatchItem` per table **in input order**, regardless of which
worker finishes first — the stream is deterministic, so downstream
consumers (the Table-1 printer, the JSON emitter, regression diffs) see
identical output for identical input no matter the parallelism.

``jobs > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
(synthesis is pure CPU — covering searches and minimisation — so
processes, not threads).  Tables and results cross the process boundary
by pickle; both are plain data.  ``jobs=1`` (or ``jobs=None`` on a
single-CPU box) runs serially in-process, where a shared
:class:`~repro.pipeline.cache.StageCache` makes repeated tables nearly
free.  A failing table never aborts the batch: its item carries the
error message and ``result=None``.
"""

from __future__ import annotations

import os
import time
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..errors import ReproError
from ..flowtable.table import FlowTable
from .cache import StageCache
from .manager import PassEvent, PassManager
from .options import SynthesisOptions
from .spec import CacheSpec, PipelineSpec


@dataclass
class BatchItem:
    """Outcome of one table in a batch run.

    ``events`` is the per-pass telemetry of the run (name, wall-clock
    seconds, cache hit) — the :class:`~repro.pipeline.manager.PipelineReport`
    stream, flattened so it crosses process boundaries; ``seance batch
    --json`` emits it verbatim.
    """

    index: int
    name: str
    result: object | None  # SynthesisResult on success
    error: str | None
    seconds: float
    cache_hits: tuple[str, ...] = ()
    events: tuple[PassEvent, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None


def _error_message(error: ReproError) -> str:
    return str(error.args[0]) if error.args else repr(error)


#: Per-worker-process manager, built once by `_init_worker` so the
#: in-memory cache tier survives across the tables one worker handles.
_WORKER_MANAGER: PassManager | None = None


def _init_worker(
    spec_payload: dict, use_cache: bool, cache_path: str | None
) -> None:
    global _WORKER_MANAGER
    # Even without a disk tier, a memory-only per-worker cache is free
    # and serves repeated (table, options) pairs within one worker.  The
    # pipeline crosses the process boundary as its serialised spec (not
    # as pickled pass objects) — the same wire form `--spec` files use.
    cache = StageCache(path=cache_path) if use_cache else None
    spec = PipelineSpec.from_dict(spec_payload)
    _WORKER_MANAGER = spec.build_manager(cache=cache)


def _synthesize_one(
    index: int,
    table: FlowTable,
    options: SynthesisOptions,
) -> tuple[int, object | None, str | None, float, tuple]:
    """Worker body; module-level so ProcessPoolExecutor can pickle it."""
    start = time.perf_counter()
    manager = _WORKER_MANAGER or PassManager()
    try:
        result, report = manager.run_with_report(table, options)
        return (
            index,
            result,
            None,
            time.perf_counter() - start,
            tuple(report.events),
        )
    except ReproError as error:
        return (
            index,
            None,
            _error_message(error),
            time.perf_counter() - start,
            (),
        )


class BatchRunner:
    """Synthesises many tables with an ordered, deterministic result stream.

    Parameters
    ----------
    options:
        Applied to every table in the batch.  Mutually exclusive with
        ``spec`` (whose options then apply).
    jobs:
        Worker processes.  ``None`` → ``os.cpu_count()``; ``1`` → serial
        in-process (shares ``cache`` across tables and runs).
    cache:
        Stage cache for the serial path; overrides ``spec.cache``.
        Worker *processes* do not see the in-memory tier, but a
        disk-backed cache (``StageCache(path=...)``) is shared through
        the filesystem in every mode.
    spec:
        A :class:`~repro.pipeline.spec.PipelineSpec` selecting the pass
        list (and options, and — unless ``cache`` is given — the cache
        config).  Defaults to the paper pipeline.
    """

    def __init__(
        self,
        options: SynthesisOptions | None = None,
        jobs: int | None = None,
        cache: StageCache | None = None,
        spec: PipelineSpec | None = None,
    ):
        if spec is not None and options is not None:
            raise ValueError(
                "pass either options or a spec (whose options apply), "
                "not both"
            )
        self.spec = spec if spec is not None else PipelineSpec(
            options=options or SynthesisOptions(),
            # No implicit cache on the legacy path: a cache only exists
            # when the caller hands one over (or configures it in a
            # spec).
            cache=CacheSpec(enabled=False),
        )
        self.options = self.spec.options
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.cache = cache if cache is not None else self.spec.cache.build()

    # ------------------------------------------------------------------
    def iter_results(
        self, tables: Sequence[FlowTable]
    ) -> Iterator[BatchItem]:
        """Yield one item per table, in input order."""
        yield from self._iter_pairs(
            [(table, self.options) for table in tables]
        )

    def run(self, tables: Sequence[FlowTable]) -> list[BatchItem]:
        return list(self.iter_results(tables))

    def run_names(self, names: Iterable[str]) -> list[BatchItem]:
        """Synthesise built-in benchmarks by name."""
        from ..bench.suite import benchmark

        return self.run([benchmark(name) for name in names])

    def run_matrix(
        self,
        tables: Sequence[FlowTable],
        options_list: Sequence[SynthesisOptions],
    ) -> list[BatchItem]:
        """Cross tables × option sets through one worker pool.

        The shape of an ablation sweep: every table synthesised under
        every option set, ordered option-major (all tables under
        ``options_list[0]`` first).  One pool amortises process start-up
        over the whole sweep instead of paying it per option set.
        """
        return list(
            self._iter_pairs(
                [(t, o) for o in options_list for t in tables]
            )
        )

    # ------------------------------------------------------------------
    def _iter_pairs(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        if self.jobs == 1 or len(pairs) <= 1:
            yield from self._iter_serial(pairs)
        else:
            yield from self._iter_parallel(pairs)

    def _iter_serial(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        manager = self.spec.build_manager(cache=self.cache)
        for index, (table, options) in enumerate(pairs):
            start = time.perf_counter()
            try:
                result, report = manager.run_with_report(table, options)
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=result,
                    error=None,
                    seconds=time.perf_counter() - start,
                    cache_hits=report.cache_hits,
                    events=tuple(report.events),
                )
            except ReproError as error:
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=None,
                    error=_error_message(error),
                    seconds=time.perf_counter() - start,
                )

    def _iter_parallel(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        workers = min(self.jobs, len(pairs))
        # Worker processes cannot share the in-memory tier; a disk-backed
        # cache is re-opened once per worker (`_init_worker`) so warm
        # stages survive the pool and repeats within a worker stay
        # in-memory.
        cache_path = (
            str(self.cache.path)
            if self.cache is not None and self.cache.path is not None
            else None
        )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.spec.to_dict(), self.cache is not None, cache_path),
        )
        try:
            futures = [
                pool.submit(_synthesize_one, index, table, options)
                for index, (table, options) in enumerate(pairs)
            ]
            # Input order, not completion order: determinism beats a
            # marginal head-of-line latency win for this stream size.
            for job_index, ((table, _), future) in enumerate(
                zip(pairs, futures)
            ):
                try:
                    index, result, error, seconds, events = future.result()
                except Exception as error:  # noqa: BLE001
                    # A dead worker (OOM kill, unpicklable artifact)
                    # must not take the rest of the batch with it.
                    yield BatchItem(
                        index=job_index,
                        name=table.name,
                        result=None,
                        error=f"worker failed: "
                        f"{type(error).__name__}: {error}",
                        seconds=0.0,
                    )
                    continue
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=result,
                    error=error,
                    seconds=seconds,
                    cache_hits=tuple(
                        e.name for e in events if e.cache_hit
                    ),
                    events=tuple(events),
                )
        finally:
            # Normal exhaustion: every future is done, this returns at
            # once.  An abandoned generator: cancel queued work instead
            # of blocking the consumer until the whole batch finishes.
            pool.shutdown(wait=False, cancel_futures=True)


def synthesize_batch(
    tables: Sequence[FlowTable],
    options: SynthesisOptions | None = None,
    jobs: int | None = None,
    cache: StageCache | None = None,
    spec: PipelineSpec | None = None,
) -> list[BatchItem]:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(
        options=options, jobs=jobs, cache=cache, spec=spec
    ).run(tables)
