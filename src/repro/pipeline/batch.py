"""Batch synthesis: many tables through the pass pipeline at once.

`BatchRunner` synthesises a sequence of flow tables and yields one
:class:`BatchItem` per table **in input order**, regardless of which
worker finishes first — the stream is deterministic, so downstream
consumers (the Table-1 printer, the JSON emitter, regression diffs) see
identical output for identical input no matter the parallelism.

``jobs > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
(synthesis is pure CPU — covering searches and minimisation — so
processes, not threads).  Tables and results cross the process boundary
by pickle; both are plain data.  ``jobs=1`` (or ``jobs=None`` on a
single-CPU box) runs serially in-process, where a shared
:class:`~repro.pipeline.cache.StageCache` makes repeated tables nearly
free.  A failing table never aborts the batch: its item carries the
error message and ``result=None``.
"""

from __future__ import annotations

import dataclasses
import os
import time
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..errors import ReproError
from ..flowtable.table import FlowTable
from .cache import StageCache
from .manager import PassEvent, PassManager
from .options import SynthesisOptions
from .spec import CacheSpec, PipelineSpec


@dataclass
class BatchItem:
    """Outcome of one table in a batch run.

    ``events`` is the per-pass telemetry of the run (name, wall-clock
    seconds, cache hit) — the :class:`~repro.pipeline.manager.PipelineReport`
    stream, flattened so it crosses process boundaries; ``seance batch
    --json`` emits it verbatim.  ``store_hit`` marks an item served
    whole from a content-addressed :class:`~repro.store.ResultStore`
    (no pass executed at all — ``events`` is empty).
    """

    index: int
    name: str
    result: object | None  # SynthesisResult on success
    error: str | None
    seconds: float
    cache_hits: tuple[str, ...] = ()
    events: tuple[PassEvent, ...] = ()
    store_hit: bool = False
    #: Domain exception class name of a failure (``"FlowTableError"``),
    #: so a stored failure can re-raise as its original type.
    error_type: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _error_message(error: ReproError) -> str:
    return str(error.args[0]) if error.args else repr(error)


#: Per-worker-process manager, built once by `_init_worker` so the
#: in-memory cache tier survives across the tables one worker handles.
_WORKER_MANAGER: PassManager | None = None


def _init_worker(
    spec_payload: dict, use_cache: bool, cache_path: str | None
) -> None:
    global _WORKER_MANAGER
    # Even without a disk tier, a memory-only per-worker cache is free
    # and serves repeated (table, options) pairs within one worker.  The
    # pipeline crosses the process boundary as its serialised spec (not
    # as pickled pass objects) — the same wire form `--spec` files use.
    cache = StageCache(path=cache_path) if use_cache else None
    spec = PipelineSpec.from_dict(spec_payload)
    _WORKER_MANAGER = spec.build_manager(cache=cache)


def _synthesize_one(
    index: int,
    table: FlowTable,
    options: SynthesisOptions,
) -> tuple[int, object | None, str | None, float, tuple, str | None]:
    """Worker body; module-level so ProcessPoolExecutor can pickle it."""
    start = time.perf_counter()
    manager = _WORKER_MANAGER or PassManager()
    try:
        result, report = manager.run_with_report(table, options)
        return (
            index,
            result,
            None,
            time.perf_counter() - start,
            tuple(report.events),
            None,
        )
    except ReproError as error:
        return (
            index,
            None,
            _error_message(error),
            time.perf_counter() - start,
            (),
            type(error).__name__,
        )


class BatchRunner:
    """Synthesises many tables with an ordered, deterministic result stream.

    Parameters
    ----------
    options:
        Applied to every table in the batch.  Mutually exclusive with
        ``spec`` (whose options then apply).
    jobs:
        Worker processes.  ``None`` → ``os.cpu_count()``; ``1`` → serial
        in-process (shares ``cache`` across tables and runs).
    cache:
        Stage cache for the serial path; overrides ``spec.cache``.
        Worker *processes* do not see the in-memory tier, but a
        disk-backed cache (``StageCache(path=...)``) is shared through
        the filesystem in every mode.
    spec:
        A :class:`~repro.pipeline.spec.PipelineSpec` selecting the pass
        list (and options, and — unless ``cache`` is given — the cache
        config).  Defaults to the paper pipeline.
    store:
        A content-addressed :class:`~repro.store.ResultStore` (or a
        directory path / backend to open one over).  Tables whose
        ``(table, spec)`` key is already stored are served whole —
        zero synthesis passes, ``item.store_hit`` set — and every
        freshly computed result (including deterministic synthesis
        failures) is written back, so repeat batches short-circuit
        entirely and shard workers publish through the same object.
    """

    def __init__(
        self,
        options: SynthesisOptions | None = None,
        jobs: int | None = None,
        cache: StageCache | None = None,
        spec: PipelineSpec | None = None,
        store=None,
    ):
        if spec is not None and options is not None:
            raise ValueError(
                "pass either options or a spec (whose options apply), "
                "not both"
            )
        self.spec = spec if spec is not None else PipelineSpec(
            options=options or SynthesisOptions(),
            # No implicit cache on the legacy path: a cache only exists
            # when the caller hands one over (or configures it in a
            # spec).
            cache=CacheSpec(enabled=False),
        )
        self.options = self.spec.options
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self.cache = cache if cache is not None else self.spec.cache.build()
        from ..store.store import open_store

        self.store = open_store(store)

    # ------------------------------------------------------------------
    def iter_results(
        self, tables: Sequence[FlowTable]
    ) -> Iterator[BatchItem]:
        """Yield one item per table, in input order."""
        yield from self._iter_pairs(
            [(table, self.options) for table in tables]
        )

    def run(self, tables: Sequence[FlowTable]) -> list[BatchItem]:
        return list(self.iter_results(tables))

    def run_names(self, names: Iterable[str]) -> list[BatchItem]:
        """Synthesise built-in benchmarks by name."""
        from ..bench.suite import benchmark

        return self.run([benchmark(name) for name in names])

    def run_matrix(
        self,
        tables: Sequence[FlowTable],
        options_list: Sequence[SynthesisOptions],
    ) -> list[BatchItem]:
        """Cross tables × option sets through one worker pool.

        The shape of an ablation sweep: every table synthesised under
        every option set, ordered option-major (all tables under
        ``options_list[0]`` first).  One pool amortises process start-up
        over the whole sweep instead of paying it per option set.
        """
        return list(
            self._iter_pairs(
                [(t, o) for o in options_list for t in tables]
            )
        )

    def run_pairs(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> list[BatchItem]:
        """Run explicit ``(table, options)`` pairs, in order.

        The shard worker's entry point: a
        :class:`~repro.store.ShardedBatch` hands each shard its own
        slice of the matrix and the shared store does the rest.
        """
        return list(self._iter_pairs(pairs))

    # ------------------------------------------------------------------
    def _unit_spec(self, options: SynthesisOptions) -> PipelineSpec:
        """The spec whose fingerprint names one pair's computation."""
        if options == self.spec.options:
            return self.spec
        return self.spec.with_options(options)

    def _iter_pairs(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        if self.store is None:
            yield from self._iter_computed(pairs)
            return
        # Resolve the whole stream against the store first: hits are
        # served without touching a worker, misses keep their relative
        # order and run through the normal serial/parallel machinery,
        # and every computed outcome is written back as it streams out.
        hits: dict[int, BatchItem] = {}
        miss_pairs: list[tuple[FlowTable, SynthesisOptions]] = []
        for index, (table, options) in enumerate(pairs):
            stored = self.store.get_synthesis(
                table, self._unit_spec(options)
            )
            if stored is None:
                miss_pairs.append((table, options))
            else:
                hits[index] = BatchItem(
                    index=index,
                    name=table.name,
                    result=stored.result,
                    error=stored.error,
                    seconds=0.0,
                    store_hit=True,
                    error_type=stored.error_type,
                )
        computed = self._iter_computed(miss_pairs)
        for index, (table, options) in enumerate(pairs):
            if index in hits:
                yield hits[index]
                continue
            item = dataclasses.replace(next(computed), index=index)
            if item.ok:
                self.store.put_synthesis(
                    table, self._unit_spec(options), item.result
                )
            elif not item.error.startswith("worker failed:"):
                # Domain failures are deterministic outcomes worth
                # remembering; a dead worker (OOM kill) is not.
                self.store.put_synthesis_error(
                    table,
                    self._unit_spec(options),
                    item.error,
                    error_type=item.error_type,
                )
            yield item

    def _iter_computed(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        if self.jobs == 1 or len(pairs) <= 1:
            yield from self._iter_serial(pairs)
        else:
            yield from self._iter_parallel(pairs)

    def _iter_serial(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        manager = self.spec.build_manager(cache=self.cache)
        for index, (table, options) in enumerate(pairs):
            start = time.perf_counter()
            try:
                result, report = manager.run_with_report(table, options)
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=result,
                    error=None,
                    seconds=time.perf_counter() - start,
                    cache_hits=report.cache_hits,
                    events=tuple(report.events),
                )
            except ReproError as error:
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=None,
                    error=_error_message(error),
                    seconds=time.perf_counter() - start,
                    error_type=type(error).__name__,
                )

    def _iter_parallel(
        self, pairs: Sequence[tuple[FlowTable, SynthesisOptions]]
    ) -> Iterator[BatchItem]:
        workers = min(self.jobs, len(pairs))
        # Worker processes cannot share the in-memory tier; a persistent
        # cache (disk directory or networked backend) is re-opened once
        # per worker (`_init_worker`) from its location string so warm
        # stages survive the pool and repeats within a worker stay
        # in-memory.
        cache_path = (
            self.cache.location if self.cache is not None else None
        )
        pool = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(self.spec.to_dict(), self.cache is not None, cache_path),
        )
        try:
            futures = [
                pool.submit(_synthesize_one, index, table, options)
                for index, (table, options) in enumerate(pairs)
            ]
            # Input order, not completion order: determinism beats a
            # marginal head-of-line latency win for this stream size.
            for job_index, ((table, _), future) in enumerate(
                zip(pairs, futures)
            ):
                try:
                    (
                        index,
                        result,
                        error,
                        seconds,
                        events,
                        error_type,
                    ) = future.result()
                except Exception as error:  # noqa: BLE001
                    # A dead worker (OOM kill, unpicklable artifact)
                    # must not take the rest of the batch with it.
                    yield BatchItem(
                        index=job_index,
                        name=table.name,
                        result=None,
                        error=f"worker failed: "
                        f"{type(error).__name__}: {error}",
                        seconds=0.0,
                    )
                    continue
                yield BatchItem(
                    index=index,
                    name=table.name,
                    result=result,
                    error=error,
                    seconds=seconds,
                    cache_hits=tuple(
                        e.name for e in events if e.cache_hit
                    ),
                    events=tuple(events),
                    error_type=error_type,
                )
        finally:
            # Normal exhaustion: every future is done, this returns at
            # once.  An abandoned generator: cancel queued work instead
            # of blocking the consumer until the whole batch finishes.
            pool.shutdown(wait=False, cancel_futures=True)


def synthesize_batch(
    tables: Sequence[FlowTable],
    options: SynthesisOptions | None = None,
    jobs: int | None = None,
    cache: StageCache | None = None,
    spec: PipelineSpec | None = None,
) -> list[BatchItem]:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(
        options=options, jobs=jobs, cache=cache, spec=spec
    ).run(tables)
