"""The pass manager: runs a declarative pass list over a flow table.

`PassManager.run` is the engine behind :func:`repro.core.seance.synthesize`
(and everything built on it — the CLI, the bench suite, the batch
runner).  For every pass it

* enforces the artifact contract (``requires`` present before, every
  ``provides`` present after);
* consults the content-hash :class:`~repro.pipeline.cache.StageCache`
  and, on a hit, restores the stage's artifacts instead of executing;
* times the stage (``stage_seconds``, same keys the monolithic
  ``Seance.run`` used, so result serialisation is unchanged);
* wraps unexpected exceptions in :class:`PassError` naming the failing
  pass (domain :class:`~repro.errors.ReproError`\\ s — validation
  failures, USTT violations — propagate untouched, preserving the
  pre-pipeline contract).

A :class:`PipelineReport` of per-pass events (duration, cache hit) is
returned alongside the result by :meth:`PassManager.run_with_report`
and kept on :attr:`PassManager.last_report` for instrumentation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ReproError, SynthesisError
from ..flowtable.table import FlowTable
from .cache import StageCache, run_fingerprint, stage_key
from .context import PipelineContext
from .options import SynthesisOptions
from .passes import Pass, default_passes


class PassError(SynthesisError):
    """A pass raised an unexpected (non-domain) exception.

    ``pass_name`` identifies the stage; the original exception is
    chained as ``__cause__``.
    """

    def __init__(self, pass_name: str, original: BaseException):
        super().__init__(
            f"pipeline pass {pass_name!r} failed: "
            f"{type(original).__name__}: {original}"
        )
        self.pass_name = pass_name


@dataclass(frozen=True)
class PassEvent:
    """One pass execution (or cache restore) inside a run."""

    name: str
    seconds: float
    cache_hit: bool


@dataclass
class PipelineReport:
    """Per-pass instrumentation of one `PassManager.run`.

    ``store_hit`` marks a run served whole from a content-addressed
    :class:`~repro.store.ResultStore`: no pass executed, so ``events``
    is empty — the telemetry contract warm-store acceptance tests pin.
    """

    table_name: str
    events: list[PassEvent] = field(default_factory=list)
    store_hit: bool = False

    @property
    def total_seconds(self) -> float:
        return sum(event.seconds for event in self.events)

    @property
    def cache_hits(self) -> tuple[str, ...]:
        return tuple(e.name for e in self.events if e.cache_hit)

    def describe(self) -> str:
        lines = [f"pipeline run of {self.table_name!r}:"]
        if self.store_hit:
            lines.append("  (served whole from the result store)")
        for event in self.events:
            marker = "cached" if event.cache_hit else "ran"
            lines.append(
                f"  {event.name:10s} {marker:6s} {event.seconds * 1000:8.2f}ms"
            )
        lines.append(f"  {'total':10s} {'':6s} {self.total_seconds * 1000:8.2f}ms")
        return "\n".join(lines)


class PassManager:
    """Runs a pass list; reusable across tables and thread-compatible
    apart from ``last_report`` (instrumentation only).

    Parameters
    ----------
    passes:
        The pipeline, in execution order.  Defaults to the paper's
        seven Figure-3 stages (:func:`~repro.pipeline.passes.default_passes`).
    cache:
        A :class:`StageCache` shared across runs, or None to disable
        caching entirely.
    """

    def __init__(
        self,
        passes: tuple[Pass, ...] | list[Pass] | None = None,
        cache: StageCache | None = None,
    ):
        self.passes = tuple(passes) if passes is not None else default_passes()
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise SynthesisError(f"duplicate pass names in pipeline: {names}")
        self.cache = cache
        self.last_report: PipelineReport | None = None

    # ------------------------------------------------------------------
    def run(self, table: FlowTable, options: SynthesisOptions | None = None):
        """Synthesise ``table``; returns a
        :class:`~repro.core.result.SynthesisResult`."""
        result, _ = self.run_with_report(table, options)
        return result

    def run_with_report(
        self, table: FlowTable, options: SynthesisOptions | None = None
    ):
        """Like :meth:`run` but also returns the :class:`PipelineReport`."""
        options = options or SynthesisOptions()
        ctx = PipelineContext(table, options)
        report = PipelineReport(table_name=table.name)
        stage_seconds: dict[str, float] = {}

        prefix = (
            run_fingerprint(table, options) if self.cache is not None else ""
        )
        # Lineage entries carry the implementing class, not just the pass
        # name: a custom pass reusing a default name ("reduce") must not
        # be served the default implementation's cached artifacts.  For
        # registry-built passes the registry key rides along too, so a
        # PipelineSpec's pass list is fingerprinted into every stage key
        # prefix by prefix (substituted stages diverge, shared upstream
        # stages keep their keys).
        lineage: list[str] = []

        for p in self.passes:
            lineage.append(
                f"{p.name}={getattr(p, 'registry_key', '')}"
                f"@{type(p).__module__}.{type(p).__qualname__}"
            )
            start = time.perf_counter()
            cached = None
            key = ""
            if self.cache is not None and p.cacheable:
                key = stage_key(prefix, tuple(lineage))
                cached = self.cache.get(key)

            if cached is not None:
                ctx.restore(cached)
                hit = True
            else:
                missing = [req for req in p.requires if not ctx.has(req)]
                if missing:
                    raise SynthesisError(
                        f"pipeline pass {p.name!r} requires artifacts "
                        f"{missing} that no earlier pass provided "
                        f"(pipeline: {[q.name for q in self.passes]})"
                    )
                try:
                    p.run(ctx)
                except ReproError:
                    raise
                except Exception as error:
                    raise PassError(p.name, error) from error
                unprovided = [
                    out for out in p.provides if not ctx.has(out)
                ]
                if unprovided:
                    raise SynthesisError(
                        f"pipeline pass {p.name!r} did not provide "
                        f"declared artifacts {unprovided}"
                    )
                if self.cache is not None and p.cacheable:
                    self.cache.put(key, ctx.snapshot(p.provides))
                hit = False

            seconds = time.perf_counter() - start
            stage_seconds[p.name] = seconds
            report.events.append(PassEvent(p.name, seconds, hit))

        result = self._assemble(ctx, stage_seconds)
        self.last_report = report
        return result, report

    # ------------------------------------------------------------------
    def _assemble(self, ctx: PipelineContext, stage_seconds: dict[str, float]):
        """Bundle the context's artifacts into a SynthesisResult."""
        from ..core.result import SynthesisResult

        return SynthesisResult(
            source=ctx.table,
            reduction=ctx.get("reduction"),
            assignment=ctx.get("assignment"),
            spec=ctx.get("spec"),
            analysis=ctx.get("analysis"),
            fsv=ctx.get("fsv"),
            next_state=ctx.get("next_state"),
            outputs=ctx.get("outputs"),
            ssd=ctx.get("ssd"),
            stage_seconds=stage_seconds,
        )
