"""The named-pass registry: string keys to pass factories.

Every pass the pipeline can run is registered under a string key —
``"reduce"``, ``"factor:joint"``, ``"hazards:off"`` — so that pipelines
can be *named and serialised* (a :class:`~repro.pipeline.spec.PipelineSpec`
is a list of these keys plus options) instead of passed around as live
Python objects.  Ablations and new workloads become **pass
substitutions**: replacing ``"factor"`` with ``"factor:joint"`` swaps
the Step-7 reduction style without touching any option flag, and the
substituted run shares every stage-cache entry upstream of the swap with
the paper-default run (same table, same options, same pass prefix).

Key grammar
-----------
``<stage>`` or ``<stage>:<variant>``.  The part before the colon is the
**base name** — the Figure-3 stage the pass implements — and every
variant of a stage registers (and caches, and reports timing) under that
same base name, so substituting a variant never changes the shape of
``stage_seconds`` or the artifact contract.  :func:`substitute` replaces
pipeline entries by base name.

Registration
------------
Pass classes self-register with the decorator::

    @register_pass("factor:joint")
    class JointFactorPass:
        name = "factor"
        ...

Factories (for passes needing construction arguments) register the same
way; the registry only requires that calling the registered object with
no arguments yields a :class:`~repro.pipeline.passes.Pass`.

Instances created through the registry carry their key as
``registry_key``; the :class:`~repro.pipeline.manager.PassManager`
embeds that key in the stage-cache lineage, so the *registry name* of
every pass that ran is part of every stage key — a
:class:`~repro.pipeline.spec.PipelineSpec`'s pass list is fingerprinted
into the existing cache keys pass by pass.
"""

from __future__ import annotations

from typing import Callable

from ..errors import SynthesisError

#: The paper's Figure-3 pipeline as registry keys, in order.
DEFAULT_PIPELINE: tuple[str, ...] = (
    "validate",
    "reduce",
    "assign",
    "outputs",
    "hazards",
    "fsv",
    "factor",
)

_REGISTRY: dict[str, Callable[[], object]] = {}


def register_pass(key: str):
    """Class/factory decorator binding ``key`` to a pass factory.

    Re-registering a key is an error — substitution is done per
    pipeline (see :func:`substitute`), never by mutating the registry.
    """
    if ":" in key and not all(part for part in key.split(":")):
        raise SynthesisError(f"malformed pass key {key!r}")

    def decorate(factory):
        if key in _REGISTRY:
            raise SynthesisError(
                f"pass key {key!r} is already registered "
                f"({_REGISTRY[key]!r})"
            )
        _REGISTRY[key] = factory
        return factory

    return decorate


def base_name(key: str) -> str:
    """The stage a key belongs to (``"factor:joint"`` -> ``"factor"``)."""
    return key.split(":", 1)[0]


def _ensure_builtin_passes() -> None:
    # The built-in pass classes register themselves on import; make sure
    # that import happened even when callers reached this module first.
    from . import passes  # noqa: F401


def registered_passes() -> tuple[str, ...]:
    """All registered keys, sorted (default-pipeline stages first)."""
    _ensure_builtin_passes()
    order = {name: i for i, name in enumerate(DEFAULT_PIPELINE)}
    return tuple(
        sorted(
            _REGISTRY,
            key=lambda k: (order.get(base_name(k), len(order)), k),
        )
    )


def create_pass(key: str):
    """Instantiate the pass registered under ``key``.

    The instance is stamped with ``registry_key`` so the manager can
    embed the key in stage-cache lineage entries.
    """
    _ensure_builtin_passes()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise SynthesisError(
            f"unknown pass {key!r}; registered passes: "
            f"{', '.join(registered_passes())}"
        ) from None
    instance = factory()
    instance.registry_key = key
    if base_name(key) != instance.name:
        raise SynthesisError(
            f"pass registered as {key!r} reports stage name "
            f"{instance.name!r}; variants must keep their base name"
        )
    return instance


def resolve_passes(keys) -> tuple:
    """Instantiate a whole pipeline from registry keys, in order."""
    return tuple(create_pass(key) for key in keys)


def substitute(pipeline: tuple[str, ...], *overrides: str) -> tuple[str, ...]:
    """Replace pipeline entries by base name.

    ``substitute(DEFAULT_PIPELINE, "factor:joint")`` yields the default
    pipeline with its ``factor`` stage swapped for the joint-reduction
    variant.  An override whose base name matches no pipeline entry is
    an error (a silent no-op would make ablation specs lie).
    """
    result = list(pipeline)
    for key in overrides:
        stage = base_name(key)
        hits = [i for i, entry in enumerate(result) if base_name(entry) == stage]
        if not hits:
            raise SynthesisError(
                f"substitution {key!r} matches no pipeline stage "
                f"(pipeline: {list(pipeline)})"
            )
        for i in hits:
            result[i] = key
    return tuple(result)
