"""The seven SEANCE stages (paper Figure 3) as pipeline passes.

Each pass wraps one step of the paper's flow and declares its artifact
contract (``requires``/``provides``) against the
:class:`~repro.pipeline.context.PipelineContext`:

=========  =========================  ==================================
pass       requires                   provides
=========  =========================  ==================================
validate   —                          —          (raises on a bad table)
reduce     —                          reduction, working
assign     working                    assignment, spec
outputs    spec                       outputs, ssd
hazards    spec                       analysis
fsv        spec, analysis             fsv_fn, y_fns
factor     spec, fsv_fn, y_fns        fsv, next_state
=========  =========================  ==================================

``default_passes()`` returns the paper pipeline in order; ablations and
future workloads build alternative lists from the same parts (or new
:class:`Pass` implementations) without touching the manager.

Every class here registers itself in the named-pass registry
(:mod:`repro.pipeline.registry`), the default stages under their stage
names and the ablation variants under ``stage:variant`` keys
(``"factor:joint"``, ``"hazards:off"``, ...).  A variant keeps its base
``name`` — it caches, times, and reports as the stage it replaces — so
swapping one in is a pure pass substitution, shape-preserving for every
consumer of ``stage_seconds`` and :class:`PipelineReport`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..assign.tracey import assign_states
from ..assign.verify import ustt_violations
from ..errors import SynthesisError
from ..flowtable.validation import validate
from ..minimize.reducer import ReductionResult, reduce_flow_table
from .context import PipelineContext
from .registry import DEFAULT_PIPELINE, register_pass, resolve_passes


@runtime_checkable
class Pass(Protocol):
    """One stage of the synthesis pipeline.

    ``name`` keys the stage's timing entry and its cache slot; ``requires``
    and ``provides`` are the artifact contract the manager enforces.  A
    pass with ``cacheable = False`` always executes (use for passes with
    side effects or non-deterministic diagnostics).
    """

    name: str
    requires: tuple[str, ...]
    provides: tuple[str, ...]
    cacheable: bool

    def run(self, ctx: PipelineContext) -> None:
        """Produce ``provides`` from ``ctx``; raise ReproError on failure."""
        ...


@register_pass("validate")
class ValidatePass:
    """Step 1: flow table preparation (validation)."""

    name = "validate"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        if ctx.options.validate_input:
            validate(ctx.table)


@register_pass("reduce")
class ReducePass:
    """Step 2: table reduction (state minimisation)."""

    name = "reduce"
    requires: tuple[str, ...] = ()
    provides = ("reduction", "working")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        if ctx.options.minimize:
            reduction = reduce_flow_table(ctx.table)
        else:
            reduction = ReductionResult(
                table=ctx.table,
                cover=_trivial_cover(ctx.table),
                state_map={s: (s,) for s in ctx.table.states},
            )
        ctx.set("reduction", reduction)
        ctx.set("working", reduction.table)


@register_pass("assign")
class AssignPass:
    """Step 3: USTT state assignment (Tracey)."""

    name = "assign"
    requires = ("working",)
    provides = ("assignment", "spec")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.spec import SpecifiedMachine

        working = ctx.get("working")
        assignment = assign_states(working)
        if ctx.options.verify_assignment:
            problems = ustt_violations(working, assignment.encoding)
            if problems:
                raise SynthesisError(
                    "state assignment violates the USTT condition:\n  "
                    + "\n  ".join(problems)
                )
        ctx.set("assignment", assignment)
        ctx.set("spec", SpecifiedMachine(working, assignment.encoding))


@register_pass("outputs")
class OutputsPass:
    """Step 4: output determination (Z and SSD)."""

    name = "outputs"
    requires = ("spec",)
    provides = ("outputs", "ssd")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.outputs import synthesize_outputs
        from ..core.ssd import synthesize_ssd

        spec = ctx.get("spec")
        ctx.set("outputs", synthesize_outputs(spec, ctx.options.output_policy))
        ctx.set("ssd", synthesize_ssd(spec, ctx.options.ssd_dc_policy))


@register_pass("hazards")
class HazardsPass:
    """Step 5: hazard search (paper Figure 4)."""

    name = "hazards"
    requires = ("spec",)
    provides = ("analysis",)
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.hazard_analysis import find_hazards

        ctx.set("analysis", find_hazards(ctx.get("spec")))


@register_pass("fsv")
class FsvPass:
    """Step 6: fsv and canonical Y equations."""

    name = "fsv"
    requires = ("spec", "analysis")
    provides = ("fsv_fn", "y_fns")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.fsv import fsv_function, next_state_functions
        from ..core.hazard_analysis import HazardAnalysis

        spec = ctx.get("spec")
        if ctx.options.hazard_correction:
            effective = ctx.get("analysis")
        else:
            effective = HazardAnalysis(num_state_vars=spec.num_state_vars)
        ctx.set("fsv_fn", fsv_function(spec, effective))
        ctx.set("y_fns", next_state_functions(spec, effective))


@register_pass("factor")
class FactorPass:
    """Step 7: hazard factoring (paper Figure 5)."""

    name = "factor"
    requires = ("spec", "fsv_fn", "y_fns")
    provides = ("fsv", "next_state")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.factoring import factor_fsv, factor_next_state

        spec = ctx.get("spec")
        fsv_index = spec.width  # fsv is the top bit of the doubled space
        ctx.set("fsv", factor_fsv(ctx.get("fsv_fn")))
        ctx.set(
            "next_state",
            [
                factor_next_state(
                    fn,
                    fsv_index,
                    name=spec.encoding.variables[n],
                    reduce_mode=ctx.options.reduce_mode,
                )
                for n, fn in enumerate(ctx.get("y_fns"))
            ],
        )


# ----------------------------------------------------------------------
# Registered ablation variants.  Each keeps its base stage name (it is a
# drop-in substitution) but is a distinct class, so the stage-cache
# lineage distinguishes it from the default implementation.
# ----------------------------------------------------------------------
@register_pass("validate:off")
class SkipValidatePass:
    """Step 1 disabled: accept the table as given (ablation/testing)."""

    name = "validate"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        return None


@register_pass("reduce:off")
class TrivialReducePass:
    """Step 2 disabled: keep every original state (one class per state).

    Unlike ``options.minimize=False`` this ignores the options entirely —
    the substitution *is* the knob.
    """

    name = "reduce"
    requires: tuple[str, ...] = ()
    provides = ("reduction", "working")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        reduction = ReductionResult(
            table=ctx.table,
            cover=_trivial_cover(ctx.table),
            state_map={s: (s,) for s in ctx.table.states},
        )
        ctx.set("reduction", reduction)
        ctx.set("working", reduction.table)


@register_pass("outputs:all-primes")
class AllPrimesOutputsPass:
    """Step 4 with all-primes covers for Z and SSD.

    The paper's architecture latches outputs at VOM, which is what lets
    Step 4 use *minimum* covers; this variant spends the full
    logic-hazard-free all-primes cover instead — the cover-ablation
    benchmark diffs the two to quantify what the latching buys.
    """

    name = "outputs"
    requires = ("spec",)
    provides = ("outputs", "ssd")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.outputs import OutputEquation
        from ..core.ssd import SsdEquation
        from ..logic.expr import sop_to_expr
        from ..logic.factor import first_level
        from ..logic.quine_mccluskey import all_primes_cover

        spec = ctx.get("spec")
        equations = []
        for k, name in enumerate(spec.table.outputs):
            cover = all_primes_cover(
                spec.output_function(k, ctx.options.output_policy)
            )
            equations.append(
                OutputEquation(
                    name=name,
                    cover=tuple(cover),
                    expr=first_level(sop_to_expr(cover, spec.names)),
                    exact=True,
                )
            )
        ctx.set("outputs", equations)
        ssd_cover = all_primes_cover(
            spec.ssd_function(ctx.options.ssd_dc_policy)
        )
        ctx.set(
            "ssd",
            SsdEquation(
                cover=tuple(ssd_cover),
                expr=first_level(sop_to_expr(ssd_cover, spec.names)),
                exact=True,
                dc_policy=ctx.options.ssd_dc_policy,
            ),
        )


@register_pass("hazards:off")
class SkipHazardsPass:
    """Step 5 disabled: report an *empty* hazard analysis without searching.

    Downstream stages then build the unprotected machine, and the result
    records no hazard points at all (contrast ``fsv:unprotected``, which
    still runs the search and reports what it knowingly leaves in).
    """

    name = "hazards"
    requires = ("spec",)
    provides = ("analysis",)
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.hazard_analysis import HazardAnalysis

        spec = ctx.get("spec")
        ctx.set(
            "analysis", HazardAnalysis(num_state_vars=spec.num_state_vars)
        )


@register_pass("fsv:unprotected")
class UnprotectedFsvPass:
    """Step 6 without the hazard correction: ``fsv`` is the constant 0.

    The Figure-4 analysis artifact is left untouched (and reported), so
    the result records which hazards were knowingly left in — this is
    the unprotected machine of the hazard-ablation benchmark, as a pass
    substitution instead of ``options.hazard_correction=False``.
    """

    name = "fsv"
    requires = ("spec", "analysis")
    provides = ("fsv_fn", "y_fns")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.fsv import fsv_function, next_state_functions
        from ..core.hazard_analysis import HazardAnalysis

        spec = ctx.get("spec")
        empty = HazardAnalysis(num_state_vars=spec.num_state_vars)
        ctx.set("fsv_fn", fsv_function(spec, empty))
        ctx.set("y_fns", next_state_functions(spec, empty))


class _ForcedModeFactorPass:
    """Step 7 with the reduction style pinned (ignores ``reduce_mode``)."""

    name = "factor"
    requires = ("spec", "fsv_fn", "y_fns")
    provides = ("fsv", "next_state")
    cacheable = True
    reduce_mode = "split"

    def run(self, ctx: PipelineContext) -> None:
        from ..core.factoring import factor_fsv, factor_next_state

        spec = ctx.get("spec")
        fsv_index = spec.width
        ctx.set("fsv", factor_fsv(ctx.get("fsv_fn")))
        ctx.set(
            "next_state",
            [
                factor_next_state(
                    fn,
                    fsv_index,
                    name=spec.encoding.variables[n],
                    reduce_mode=self.reduce_mode,
                )
                for n, fn in enumerate(ctx.get("y_fns"))
            ],
        )


@register_pass("factor:split")
class SplitFactorPass(_ForcedModeFactorPass):
    """Step 7 pinned to the paper's split (per-half) reduction."""

    reduce_mode = "split"


@register_pass("factor:joint")
class JointFactorPass(_ForcedModeFactorPass):
    """Step 7 pinned to joint reduction over the doubled space (ablation)."""

    reduce_mode = "joint"


# ----------------------------------------------------------------------
# Dynamic validation as a pipeline stage.
# ----------------------------------------------------------------------
@register_pass("verify")
class VerifyPass:
    """Dynamic validation gate: simulate the synthesised machine.

    Not part of the paper's Figure-3 pipeline (hence absent from
    ``DEFAULT_PIPELINE``); append it to a spec's pass list to make every
    synthesis run prove its machine dynamically::

        spec = PipelineSpec().with_passes(*DEFAULT_PIPELINE, "verify")

    The pass assembles the gate-level FANTOM machine from the pipeline
    artifacts and runs a small :class:`~repro.sim.campaign.
    ValidationCampaign` (``SWEEP`` seeded walks under each of
    ``MODELS``) on the compiled simulation kernel.  A dirty machine
    raises :class:`~repro.errors.ValidationError`, failing the run; a
    clean one stores the :class:`~repro.sim.campaign.CampaignResult`
    as the ``validation`` artifact.
    """

    name = "verify"
    requires = (
        "reduction",
        "assignment",
        "spec",
        "analysis",
        "fsv",
        "next_state",
        "outputs",
        "ssd",
    )
    provides = ("validation",)
    cacheable = True

    #: Campaign shape: small enough for an inline gate, covering the
    #: deterministic baseline (unit) and the Section-4.3 worst-case
    #: boundary (corner).  The loop-safe random model is deliberately
    #: absent: the whole built-in suite is clean under these models,
    #: while ``lion9`` has a pre-existing loop-safe anomaly (see
    #: ROADMAP) that would make the gate unusable on a paper benchmark.
    #: Use ``Session.validate()`` / ``seance validate`` for wider
    #: sweeps.
    SWEEP = 2
    STEPS = 12
    MODELS = ("unit", "corner")

    def run(self, ctx: PipelineContext) -> None:
        from ..core.result import SynthesisResult
        from ..errors import ValidationError
        from ..netlist.fantom import build_fantom
        from ..sim.campaign import ValidationCampaign

        result = SynthesisResult(
            source=ctx.table,
            reduction=ctx.get("reduction"),
            assignment=ctx.get("assignment"),
            spec=ctx.get("spec"),
            analysis=ctx.get("analysis"),
            fsv=ctx.get("fsv"),
            next_state=ctx.get("next_state"),
            outputs=ctx.get("outputs"),
            ssd=ctx.get("ssd"),
            stage_seconds={},
        )
        machine = build_fantom(result, use_fsv=ctx.options.hazard_correction)
        campaign = ValidationCampaign(
            sweep=self.SWEEP, steps=self.STEPS, delay_models=self.MODELS
        )
        report = campaign.run_machines([machine])
        if not report.all_clean:
            raise ValidationError(
                f"machine {ctx.table.name!r} failed dynamic validation:\n"
                f"{report.describe()}"
            )
        ctx.set("validation", report)


def default_passes() -> tuple[Pass, ...]:
    """The paper's Figure-3 pipeline, in order (from the registry)."""
    return resolve_passes(DEFAULT_PIPELINE)


def _trivial_cover(table):
    from ..minimize.cover_search import ClosedCover

    return ClosedCover(
        classes=tuple(frozenset({s}) for s in table.states),
        exact=True,
    )
