"""The seven SEANCE stages (paper Figure 3) as pipeline passes.

Each pass wraps one step of the paper's flow and declares its artifact
contract (``requires``/``provides``) against the
:class:`~repro.pipeline.context.PipelineContext`:

=========  =========================  ==================================
pass       requires                   provides
=========  =========================  ==================================
validate   —                          —          (raises on a bad table)
reduce     —                          reduction, working
assign     working                    assignment, spec
outputs    spec                       outputs, ssd
hazards    spec                       analysis
fsv        spec, analysis             fsv_fn, y_fns
factor     spec, fsv_fn, y_fns        fsv, next_state
=========  =========================  ==================================

``default_passes()`` returns the paper pipeline in order; ablations and
future workloads build alternative lists from the same parts (or new
:class:`Pass` implementations) without touching the manager.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..assign.tracey import assign_states
from ..assign.verify import ustt_violations
from ..errors import SynthesisError
from ..flowtable.validation import validate
from ..minimize.reducer import ReductionResult, reduce_flow_table
from .context import PipelineContext


@runtime_checkable
class Pass(Protocol):
    """One stage of the synthesis pipeline.

    ``name`` keys the stage's timing entry and its cache slot; ``requires``
    and ``provides`` are the artifact contract the manager enforces.  A
    pass with ``cacheable = False`` always executes (use for passes with
    side effects or non-deterministic diagnostics).
    """

    name: str
    requires: tuple[str, ...]
    provides: tuple[str, ...]
    cacheable: bool

    def run(self, ctx: PipelineContext) -> None:
        """Produce ``provides`` from ``ctx``; raise ReproError on failure."""
        ...


class ValidatePass:
    """Step 1: flow table preparation (validation)."""

    name = "validate"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        if ctx.options.validate_input:
            validate(ctx.table)


class ReducePass:
    """Step 2: table reduction (state minimisation)."""

    name = "reduce"
    requires: tuple[str, ...] = ()
    provides = ("reduction", "working")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        if ctx.options.minimize:
            reduction = reduce_flow_table(ctx.table)
        else:
            reduction = ReductionResult(
                table=ctx.table,
                cover=_trivial_cover(ctx.table),
                state_map={s: (s,) for s in ctx.table.states},
            )
        ctx.set("reduction", reduction)
        ctx.set("working", reduction.table)


class AssignPass:
    """Step 3: USTT state assignment (Tracey)."""

    name = "assign"
    requires = ("working",)
    provides = ("assignment", "spec")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.spec import SpecifiedMachine

        working = ctx.get("working")
        assignment = assign_states(working)
        if ctx.options.verify_assignment:
            problems = ustt_violations(working, assignment.encoding)
            if problems:
                raise SynthesisError(
                    "state assignment violates the USTT condition:\n  "
                    + "\n  ".join(problems)
                )
        ctx.set("assignment", assignment)
        ctx.set("spec", SpecifiedMachine(working, assignment.encoding))


class OutputsPass:
    """Step 4: output determination (Z and SSD)."""

    name = "outputs"
    requires = ("spec",)
    provides = ("outputs", "ssd")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.outputs import synthesize_outputs
        from ..core.ssd import synthesize_ssd

        spec = ctx.get("spec")
        ctx.set("outputs", synthesize_outputs(spec, ctx.options.output_policy))
        ctx.set("ssd", synthesize_ssd(spec, ctx.options.ssd_dc_policy))


class HazardsPass:
    """Step 5: hazard search (paper Figure 4)."""

    name = "hazards"
    requires = ("spec",)
    provides = ("analysis",)
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.hazard_analysis import find_hazards

        ctx.set("analysis", find_hazards(ctx.get("spec")))


class FsvPass:
    """Step 6: fsv and canonical Y equations."""

    name = "fsv"
    requires = ("spec", "analysis")
    provides = ("fsv_fn", "y_fns")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.fsv import fsv_function, next_state_functions
        from ..core.hazard_analysis import HazardAnalysis

        spec = ctx.get("spec")
        if ctx.options.hazard_correction:
            effective = ctx.get("analysis")
        else:
            effective = HazardAnalysis(num_state_vars=spec.num_state_vars)
        ctx.set("fsv_fn", fsv_function(spec, effective))
        ctx.set("y_fns", next_state_functions(spec, effective))


class FactorPass:
    """Step 7: hazard factoring (paper Figure 5)."""

    name = "factor"
    requires = ("spec", "fsv_fn", "y_fns")
    provides = ("fsv", "next_state")
    cacheable = True

    def run(self, ctx: PipelineContext) -> None:
        from ..core.factoring import factor_fsv, factor_next_state

        spec = ctx.get("spec")
        fsv_index = spec.width  # fsv is the top bit of the doubled space
        ctx.set("fsv", factor_fsv(ctx.get("fsv_fn")))
        ctx.set(
            "next_state",
            [
                factor_next_state(
                    fn,
                    fsv_index,
                    name=spec.encoding.variables[n],
                    reduce_mode=ctx.options.reduce_mode,
                )
                for n, fn in enumerate(ctx.get("y_fns"))
            ],
        )


def default_passes() -> tuple[Pass, ...]:
    """The paper's Figure-3 pipeline, in order."""
    return (
        ValidatePass(),
        ReducePass(),
        AssignPass(),
        OutputsPass(),
        HazardsPass(),
        FsvPass(),
        FactorPass(),
    )


def _trivial_cover(table):
    from ..minimize.cover_search import ClosedCover

    return ClosedCover(
        classes=tuple(frozenset({s}) for s in table.states),
        exact=True,
    )
