"""Input loading for the front door: anything-to-:class:`FlowTable`.

:func:`load_table` is the single dispatch point behind
:func:`repro.api.load`: it accepts every specification frontend the
library has — a built-in benchmark name, a KISS2 file, a serialised
flow-table JSON file, or the programmatic objects
(:class:`~repro.flowtable.table.FlowTable`,
:class:`~repro.flowtable.stg.Stg`,
:class:`~repro.flowtable.burst.BurstSpec`) — and always hands back a
flow table.  A :class:`~repro.flowtable.builder.FlowTableBuilder` is
deliberately *not* accepted: ``build()`` chooses the reset state and
name, which the loader cannot guess — pass the built table.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.serialize import table_from_dict
from ..errors import ReproError
from ..flowtable.builder import FlowTableBuilder
from ..flowtable.burst import BurstSpec
from ..flowtable.kiss import parse_kiss
from ..flowtable.stg import Stg
from ..flowtable.table import FlowTable

#: Anything :func:`load_table` accepts.
TableSource = "FlowTable | Stg | BurstSpec | FlowTableBuilder | str | os.PathLike"


def load_table(source, name: str | None = None) -> FlowTable:
    """Resolve any table source to a validated-shape :class:`FlowTable`.

    Dispatch, in order:

    * a :class:`FlowTable` passes through (renamed when ``name`` given);
    * :class:`Stg` / :class:`BurstSpec` are expanded via their
      ``to_flow_table`` converters;
    * a :class:`FlowTableBuilder` is rejected with guidance (call
      ``build(...)`` yourself — it chooses the reset state and name);
    * a ``corpus:FAMILY[:k=v,...]:SEED`` key generates that corpus
      machine (:mod:`repro.corpus`), raising
      :class:`~repro.errors.CorpusError` with the known family and
      parameter names on anything unknown;
    * a string naming a built-in benchmark loads that benchmark;
    * a path loads the file — ``.json`` as a serialised flow table
      (:func:`repro.core.serialize.table_from_dict`), anything else as
      KISS2 — with content sniffing (leading ``{``) as the fallback for
      unknown extensions.

    Structural validation (normal mode, connectivity) stays where it
    always ran: in the pipeline's ``validate`` pass.
    """
    if isinstance(source, FlowTable):
        return source.with_name(name) if name else source
    if isinstance(source, (Stg, BurstSpec)):
        return source.to_flow_table(name=name) if name else source.to_flow_table()
    if isinstance(source, FlowTableBuilder):
        raise ReproError(
            "pass the built table: FlowTableBuilder.build(...) chooses "
            "the reset state and name, which load() cannot guess"
        )
    if isinstance(source, (str, os.PathLike)):
        return _load_path_or_name(os.fspath(source), name)
    raise ReproError(
        f"cannot load a flow table from {type(source).__name__!r}"
    )


def _load_path_or_name(spec: str, name: str | None) -> FlowTable:
    from ..bench.suite import benchmark, benchmark_names

    if spec.startswith("corpus:"):
        # Corpus keys are workload names, never paths: resolve them
        # first so a typo'd family errors with the known families
        # instead of falling through to a confusing file-not-found.
        from ..corpus import generate

        table = generate(spec)
        return table.with_name(name) if name else table
    if spec in benchmark_names():
        table = benchmark(spec)
        return table.with_name(name) if name else table
    path = Path(spec)
    if not path.exists():
        raise ReproError(
            f"{spec!r} is neither a file nor a benchmark name "
            f"(benchmarks: {', '.join(benchmark_names())})"
        )
    try:
        text = path.read_text()
    except OSError as error:
        raise ReproError(f"cannot read {spec!r}: {error}") from error
    default_name = name or path.stem
    if path.suffix.lower() == ".json" or text.lstrip().startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"{spec!r} is not valid flow-table JSON: {error}"
            ) from error
        table = table_from_dict(payload)
        if name:
            return table.with_name(name)
        if "name" not in payload:
            # No embedded name: default to the path stem, like KISS2.
            return table.with_name(default_name)
        return table
    return parse_kiss(text, name=default_name)
