"""The fluent synthesis session: one table, one evolving configuration.

A :class:`Session` binds a loaded flow table to a
:class:`~repro.pipeline.spec.PipelineSpec` and a live
:class:`~repro.pipeline.cache.StageCache`.  Sessions are immutable: the
``with_*`` builders derive new sessions, and every session in one
derivation chain *shares the same cache object*, so an ablation sweep —

    base = api.load("lion")
    paper = base.run()
    joint = base.with_pass("factor:joint").run()

— re-executes only the substituted stage (the upstream stage-cache
entries carry over; see :mod:`repro.pipeline.registry`).
"""

from __future__ import annotations

from ..core.result import SynthesisResult
from ..flowtable.table import FlowTable
from ..pipeline.cache import StageCache
from ..pipeline.manager import PipelineReport
from ..pipeline.options import SynthesisOptions
from ..pipeline.spec import PipelineSpec
from .loaders import load_table


class Session:
    """An immutable (table, spec, cache, store) tuple with fluent builders."""

    def __init__(
        self,
        table: FlowTable,
        spec: PipelineSpec | None = None,
        cache: StageCache | None | type(...) = ...,
        store=None,
    ):
        from ..store.store import open_store

        self._table = table
        self._spec = spec if spec is not None else PipelineSpec()
        # ``...`` means "build what the spec configures"; an explicit
        # cache (or None) overrides the spec's cache config.
        self._cache = self._spec.cache.build() if cache is ... else cache
        self._store = open_store(store)

    # ------------------------------------------------------------------
    @property
    def table(self) -> FlowTable:
        return self._table

    @property
    def spec(self) -> PipelineSpec:
        return self._spec

    @property
    def cache(self) -> StageCache | None:
        return self._cache

    @property
    def store(self):
        """The attached :class:`~repro.store.ResultStore`, or None."""
        return self._store

    # ------------------------------------------------------------------
    # Builders (each returns a new Session sharing this one's cache)
    # ------------------------------------------------------------------
    def _derive(self, spec: PipelineSpec) -> "Session":
        return Session(
            self._table, spec, cache=self._cache, store=self._store
        )

    def with_table(self, source, name: str | None = None) -> "Session":
        """Same configuration, different machine."""
        return Session(
            load_table(source, name),
            self._spec,
            cache=self._cache,
            store=self._store,
        )

    def with_spec(self, spec: PipelineSpec) -> "Session":
        """Replace the whole spec.

        A changed cache *config* re-materialises the cache; otherwise
        the current cache object is kept warm.
        """
        if spec.cache != self._spec.cache:
            return Session(self._table, spec, store=self._store)
        return self._derive(spec)

    def with_options(
        self, options: SynthesisOptions | None = None, **overrides
    ) -> "Session":
        """Replace the options or update individual fields."""
        return self._derive(self._spec.with_options(options, **overrides))

    def with_passes(self, *passes: str) -> "Session":
        """Run exactly this pass list (registry keys, in order)."""
        return self._derive(self._spec.with_passes(*passes))

    def with_pass(self, *overrides: str) -> "Session":
        """Substitute stages by base name (``"factor:joint"`` → factor)."""
        return self._derive(self._spec.substitute(*overrides))

    def with_cache(self, cache) -> "Session":
        """Attach a cache: an existing :class:`StageCache`, a disk-tier
        directory path (str or PathLike), or None to disable caching."""
        import os

        from ..pipeline.spec import CacheSpec

        if isinstance(cache, (str, os.PathLike)):
            # Through CacheSpec.build for the domain-error wrapping.
            cache = CacheSpec(path=os.fspath(cache)).build()
        return Session(
            self._table, self._spec, cache=cache, store=self._store
        )

    def with_store(self, store) -> "Session":
        """Attach a content-addressed result store: an existing
        :class:`~repro.store.ResultStore`, a directory path, a
        :class:`~repro.store.StoreBackend`, or None to detach."""
        return Session(
            self._table, self._spec, cache=self._cache, store=store
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SynthesisResult:
        """Synthesise the table under the session's configuration."""
        result, _ = self.run_with_report()
        return result

    def run_with_report(self) -> tuple[SynthesisResult, PipelineReport]:
        """Like :meth:`run`, plus the per-pass :class:`PipelineReport`.

        With a store attached, a warm ``(table, spec)`` key
        short-circuits the whole pipeline: the stored result is
        returned under a report with ``store_hit=True`` and **no pass
        events** — zero synthesis passes executed.  A stored
        deterministic failure re-raises as the original domain error.
        """
        if self._store is not None:
            stored = self._store.get_synthesis(self._table, self._spec)
            if stored is not None:
                if not stored.ok:
                    stored.raise_error()
                return stored.result, PipelineReport(
                    table_name=self._table.name, store_hit=True
                )
        manager = self._spec.build_manager(cache=self._cache)
        result, report = manager.run_with_report(
            self._table, self._spec.options
        )
        if self._store is not None:
            self._store.put_synthesis(self._table, self._spec, result)
        return result, report

    def validate(
        self,
        sweep: int = 3,
        steps: int = 30,
        delay_models: tuple[str, ...] = ("loop-safe",),
        seed: int = 0,
        use_fsv: bool = True,
        jobs: int = 1,
        engine: str | None = None,
    ):
        """Synthesise, build the FANTOM machine, run a validation campaign.

        The session's spec and warm cache drive the synthesis, then a
        :class:`~repro.sim.campaign.ValidationCampaign` sweeps ``sweep``
        seeded random walks under each named delay model (see
        :data:`~repro.sim.campaign.DELAY_MODELS`).  ``engine`` selects
        the kernel (``"compiled"``, ``"ring"``, ``"reference"``; the
        default follows :func:`~repro.sim.campaign.default_engine`).
        Returns the
        deterministic :class:`~repro.sim.campaign.CampaignResult`::

            report = api.load("hazard_demo").validate(
                sweep=50, delay_models=("loop-safe", "corner"))
            assert report.all_clean
        """
        from ..netlist.fantom import build_fantom
        from ..sim.campaign import ValidationCampaign

        machine = build_fantom(self.run(), use_fsv=use_fsv)
        campaign = ValidationCampaign(
            sweep=sweep,
            steps=steps,
            delay_models=delay_models,
            base_seed=seed,
            use_fsv=use_fsv,
            jobs=jobs,
            spec=self._spec,
            engine=engine,
            store=self._store,
        )
        return campaign.run_machines([machine])

    def __repr__(self) -> str:
        return (
            f"Session({self._table.name!r}, passes={list(self._spec.passes)}, "
            f"cache={'on' if self._cache is not None else 'off'}, "
            f"store={'on' if self._store is not None else 'off'})"
        )


# ----------------------------------------------------------------------
# Module-level one-shots
# ----------------------------------------------------------------------
def load(source, name: str | None = None,
         spec: PipelineSpec | None = None, store=None) -> Session:
    """Open a session on any table source (see
    :func:`repro.api.loaders.load_table` for the accepted forms)."""
    return Session(load_table(source, name), spec, store=store)


def synthesize(
    source,
    options: SynthesisOptions | None = None,
    *,
    spec: PipelineSpec | None = None,
    cache: StageCache | None = None,
    store=None,
) -> SynthesisResult:
    """One-shot synthesis of any table source.

    ``options`` overrides the spec's options (the common case:
    ``api.synthesize(table, SynthesisOptions(minimize=False))``).

    A one-shot run has nothing to reuse, so no stage cache is built
    unless the caller passes one (or configures one in ``spec``) —
    exactly the old ``core.seance.synthesize`` behaviour.
    """
    if cache is None and spec is not None:
        cache = spec.cache.build()
    session = Session(
        load_table(source),
        spec if spec is not None else PipelineSpec(),
        cache=cache,
        store=store,
    )
    if options is not None:
        session = session.with_options(options)
    return session.run()


def batch(
    sources,
    *,
    spec: PipelineSpec | None = None,
    options: SynthesisOptions | None = None,
    jobs: int | None = 1,
    cache: StageCache | None = None,
    store=None,
):
    """Synthesise many sources with an ordered, deterministic stream.

    Returns a list of :class:`~repro.pipeline.batch.BatchItem`; each
    item carries the result (or the error), wall-clock seconds, and the
    per-pass :class:`~repro.pipeline.manager.PassEvent` telemetry.
    As in :func:`synthesize`, ``options`` given alongside a ``spec``
    override the spec's options.
    """
    from ..pipeline.batch import BatchRunner

    if spec is not None and options is not None:
        spec = spec.with_options(options)
        options = None
    tables = [load_table(source) for source in sources]
    runner = BatchRunner(
        options=options, jobs=jobs, cache=cache, spec=spec, store=store
    )
    return runner.run(tables)
