"""``repro.api`` — the typed front door of the library.

Everything a consumer needs to specify, configure, run, and serialise
synthesis lives here, under names rather than live objects:

* **Load** any table source — a benchmark name, a KISS2 or flow-table
  JSON file, an :class:`~repro.flowtable.stg.Stg` or
  :class:`~repro.flowtable.burst.BurstSpec` — with :func:`load`.
* **Configure** with a declarative :class:`PipelineSpec` (registry pass
  names + :class:`SynthesisOptions` + :class:`CacheSpec`); ablations are
  pass substitutions (``spec.substitute("factor:joint")``), and specs
  round-trip through JSON for reproducible, shareable runs.
* **Run** through the fluent :class:`Session`
  (``api.load("lion").with_pass("fsv:unprotected").run()``), the
  one-shot :func:`synthesize`, or :func:`batch`.
* **Serialise** results: :class:`SynthesisResult` round-trips through
  ``to_dict``/``from_dict`` byte-identically — the wire format for
  sharded batch runs and remote stage stores.
* **Archive and shard** with the content-addressed
  :class:`ResultStore` (``store=`` on :func:`load`/:func:`synthesize`/
  :func:`batch`, ``Session.with_store``): warm keys short-circuit
  synthesis and simulation entirely, and
  :class:`ShardedBatch`/:class:`ShardedCampaign` split a batch matrix
  or campaign cell grid across machines by the same content hashes
  (``seance shard run``/``merge``).

The older entry points (``repro.core.seance``, direct
``PassManager(...)`` construction) remain as shims over this module.
"""

from ..core.result import SynthesisResult
from ..flowtable.table import FlowTable
from ..pipeline.batch import BatchItem, BatchRunner
from ..pipeline.cache import StageCache
from ..pipeline.manager import PassEvent, PassManager, PipelineReport
from ..pipeline.options import SynthesisOptions
from ..pipeline.registry import (
    DEFAULT_PIPELINE,
    create_pass,
    register_pass,
    registered_passes,
    substitute,
)
from ..pipeline.spec import CacheSpec, PipelineSpec
from ..store import ResultStore, ShardedBatch, ShardedCampaign
from ..sim.campaign import (
    DELAY_MODELS,
    CampaignCell,
    CampaignResult,
    ValidationCampaign,
)
from .loaders import load_table
from .session import Session, batch, load, synthesize

__all__ = [
    "BatchItem",
    "BatchRunner",
    "CacheSpec",
    "CampaignCell",
    "CampaignResult",
    "DEFAULT_PIPELINE",
    "DELAY_MODELS",
    "FlowTable",
    "PassEvent",
    "PassManager",
    "PipelineReport",
    "PipelineSpec",
    "ResultStore",
    "Session",
    "ShardedBatch",
    "ShardedCampaign",
    "StageCache",
    "SynthesisOptions",
    "SynthesisResult",
    "ValidationCampaign",
    "batch",
    "create_pass",
    "load",
    "load_table",
    "register_pass",
    "registered_passes",
    "substitute",
    "synthesize",
]
