"""FANTOM/SEANCE: multiple-input-change asynchronous FSM synthesis.

A faithful, self-contained reproduction of

    Maureen Ladd and William P. Birmingham,
    "Synthesis of Multiple-Input Change Asynchronous Finite State
    Machines", 28th ACM/IEEE Design Automation Conference (DAC), 1991.

The library covers the full stack the paper describes:

* flow-table specification (KISS2 files, a builder API, or signal
  transition graphs) — :mod:`repro.flowtable`;
* the SEANCE synthesis pipeline (state minimisation, Tracey USTT
  assignment, output/SSD determination, the Figure-4 hazard search, the
  fantom state variable, Figure-5 hazard factoring) — :mod:`repro.core`
  with substrates :mod:`repro.minimize`, :mod:`repro.assign`,
  :mod:`repro.logic` and :mod:`repro.hazards`;
* the FANTOM architecture as a gate-level netlist (Figures 1-2) and an
  event-driven simulator with a 4-phase environment harness that
  validates machines against the flow-table semantics —
  :mod:`repro.netlist`, :mod:`repro.sim`;
* the baselines of the paper's comparisons — :mod:`repro.baselines`;
* the (reconstructed) Table-1 benchmark suite — :mod:`repro.bench`;
* the pass-manager pipeline the synthesis runs on — declarative pass
  lists, per-pass timing, a content-hash stage cache, and batch/parallel
  synthesis — :mod:`repro.pipeline`.

The typed front door is :mod:`repro.api`: ``api.load(...)`` opens a
fluent :class:`~repro.api.Session`, :class:`~repro.pipeline.spec.
PipelineSpec` names pipeline configurations declaratively (and
round-trips through JSON), and results serialise completely via
``SynthesisResult.to_dict``/``from_dict``.

Quickstart
----------
>>> from repro import benchmark, synthesize
>>> result = synthesize(benchmark("lion"))
>>> result.table1_row()
('lion', 3, 5, 9)
"""

from . import api
from .api import PipelineSpec, Session, load
from .bench import (
    PAPER_TABLE1,
    TABLE1_BENCHMARKS,
    benchmark,
    benchmark_names,
    kiss_source,
    synthesize_suite,
)
from .core import (
    Seance,
    SynthesisOptions,
    SynthesisResult,
)

# The package-level one-shot keeps the historical `table` parameter
# name (keyword callers exist); it routes through repro.api internally.
from .core.seance import synthesize
from .errors import (
    CoveringError,
    FlowTableError,
    KissFormatError,
    NetlistError,
    ReproError,
    SimulationError,
    SpecificationError,
    StateAssignmentError,
    SynthesisError,
)
from .flowtable import (
    BurstSpec,
    FlowTable,
    FlowTableBuilder,
    Stg,
    parse_kiss,
    write_kiss,
)
from .netlist import FantomMachine, build_fantom, timing_report
from .pipeline import (
    BatchItem,
    BatchRunner,
    PassManager,
    StageCache,
    synthesize_batch,
)
from .sim import (
    FantomHarness,
    FlowTableInterpreter,
    hostile_random,
    loop_safe_random,
    skewed_random,
    synthesize_and_validate,
    validate_against_reference,
)

__version__ = "1.0.0"

__all__ = [
    "BatchItem",
    "BatchRunner",
    "BurstSpec",
    "CoveringError",
    "FantomHarness",
    "FantomMachine",
    "FlowTable",
    "FlowTableBuilder",
    "FlowTableError",
    "FlowTableInterpreter",
    "KissFormatError",
    "NetlistError",
    "PAPER_TABLE1",
    "PassManager",
    "PipelineSpec",
    "ReproError",
    "Seance",
    "Session",
    "StageCache",
    "SimulationError",
    "SpecificationError",
    "StateAssignmentError",
    "Stg",
    "SynthesisError",
    "SynthesisOptions",
    "SynthesisResult",
    "TABLE1_BENCHMARKS",
    "api",
    "benchmark",
    "benchmark_names",
    "build_fantom",
    "hostile_random",
    "kiss_source",
    "load",
    "loop_safe_random",
    "parse_kiss",
    "skewed_random",
    "synthesize",
    "synthesize_and_validate",
    "synthesize_batch",
    "synthesize_suite",
    "timing_report",
    "validate_against_reference",
    "write_kiss",
]
