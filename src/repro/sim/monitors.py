"""Trace analysis: glitch detection and the single-output-change check.

FANTOM "allows multiple-output bit changes, as long as the output vector
obeys the single-output-change (SOC) principle, i.e. bits can change only
once per input transition" (paper Section 2.2).  The monitors here
post-process simulator traces into exactly those judgements:

* per hand-shake cycle, each latched output bit must change at most once;
* the latched outputs must match the reference interpreter's values;
* ``VOM`` must pulse exactly once per cycle (one fall, one rise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .simulator import NetChange


@dataclass(frozen=True)
class CycleReport:
    """Judgement of one hand-shake cycle (one input application)."""

    index: int
    column: int
    expected_state: str
    observed_state: str | None
    expected_outputs: tuple[int | None, ...]
    observed_outputs: tuple[int, ...]
    output_changes: dict[str, int]
    vom_rises: int

    @property
    def state_correct(self) -> bool:
        return self.observed_state == self.expected_state

    @property
    def outputs_correct(self) -> bool:
        return all(
            expected is None or expected == observed
            for expected, observed in zip(
                self.expected_outputs, self.observed_outputs
            )
        )

    @property
    def soc_respected(self) -> bool:
        """Each output bit changed at most once during the cycle."""
        return all(count <= 1 for count in self.output_changes.values())

    @property
    def clean(self) -> bool:
        return (
            self.state_correct
            and self.outputs_correct
            and self.soc_respected
            and self.vom_rises == 1
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON wire form; :meth:`from_dict` round-trips it exactly.

        ``output_changes`` keeps its insertion order (the machine's
        output-net order), so serialisation is deterministic and two
        identical cycles emit identical bytes — the property the
        sharded result store's byte-identity contract rests on.
        """
        return {
            "index": self.index,
            "column": self.column,
            "expected_state": self.expected_state,
            "observed_state": self.observed_state,
            "expected_outputs": list(self.expected_outputs),
            "observed_outputs": list(self.observed_outputs),
            "output_changes": dict(self.output_changes),
            "vom_rises": self.vom_rises,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CycleReport":
        return cls(
            index=payload["index"],
            column=payload["column"],
            expected_state=payload["expected_state"],
            observed_state=payload["observed_state"],
            expected_outputs=tuple(payload["expected_outputs"]),
            observed_outputs=tuple(payload["observed_outputs"]),
            output_changes=dict(payload["output_changes"]),
            vom_rises=payload["vom_rises"],
        )


#: Counter keys of a kernel-telemetry snapshot, in wire order.  Only
#: counters that are deterministic for a given walk belong here: the
#: ring kernel's replay counters depend on how warm its segment cache
#: is (which cells ran earlier in the same process), so they stay
#: in-process diagnostics on ``sim.kernel_stats`` and never enter the
#: summary — the sharded store's byte-identity contract requires the
#: wire form to be partition-independent.
_KERNEL_COUNTERS = ("fronts", "front_events")


@dataclass
class ValidationSummary:
    """Aggregate of a whole validation run (many cycles, many seeds).

    ``kernel`` aggregates the per-walk kernel telemetry the simulators
    expose (``sim.kernel_stats``): which engine paths the walks ended on
    (``ring``/``ticks``/``calendar``/``heap``), any fast-path demotions
    (``migrations``), and the batching counters.  ``None`` means no walk
    contributed telemetry (e.g. the reference kernel).
    """

    cycles: list[CycleReport] = field(default_factory=list)
    kernel: dict | None = None

    def add(self, report: CycleReport) -> None:
        self.cycles.append(report)

    def merge_kernel(self, snapshot: dict | None) -> None:
        """Fold one walk's kernel-telemetry snapshot into the aggregate."""
        if snapshot is None:
            return
        kernel = self.kernel
        if kernel is None:
            kernel = self.kernel = {
                "paths": {},
                "migrations": {},
                **{key: 0 for key in _KERNEL_COUNTERS},
            }
        for path, count in snapshot.get("paths", {}).items():
            kernel["paths"][path] = kernel["paths"].get(path, 0) + count
        for reason, count in snapshot.get("migrations", {}).items():
            kernel["migrations"] = kernel.get("migrations", {})
            kernel["migrations"][reason] = (
                kernel["migrations"].get(reason, 0) + count
            )
        for key in _KERNEL_COUNTERS:
            kernel[key] = kernel.get(key, 0) + snapshot.get(key, 0)

    @property
    def total(self) -> int:
        return len(self.cycles)

    @property
    def failures(self) -> list[CycleReport]:
        return [c for c in self.cycles if not c.clean]

    @property
    def state_errors(self) -> int:
        return sum(1 for c in self.cycles if not c.state_correct)

    @property
    def output_errors(self) -> int:
        return sum(1 for c in self.cycles if not c.outputs_correct)

    @property
    def soc_violations(self) -> int:
        return sum(1 for c in self.cycles if not c.soc_respected)

    @property
    def all_clean(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        return (
            f"{self.total} cycles: "
            f"{self.state_errors} state errors, "
            f"{self.output_errors} output errors, "
            f"{self.soc_violations} SOC violations"
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON wire form (cycle stream, in order).

        ``kernel`` is emitted only when telemetry was collected, with
        its sub-dicts in sorted key order — deterministic bytes for the
        store's byte-identity contract, and old payloads (no kernel)
        keep their exact historical shape.
        """
        payload: dict = {
            "cycles": [cycle.to_dict() for cycle in self.cycles]
        }
        if self.kernel is not None:
            kernel = self.kernel
            payload["kernel"] = {
                "paths": dict(sorted(kernel.get("paths", {}).items())),
                "migrations": dict(
                    sorted(kernel.get("migrations", {}).items())
                ),
                **{key: kernel.get(key, 0) for key in _KERNEL_COUNTERS},
            }
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidationSummary":
        summary = cls()
        for cycle in payload["cycles"]:
            summary.add(CycleReport.from_dict(cycle))
        kernel = payload.get("kernel")
        if kernel is not None:
            summary.merge_kernel(kernel)
        return summary


def count_changes(
    trace: list[NetChange], nets: list[str], start: float, end: float
) -> dict[str, int]:
    """Transitions per net within the half-open window [start, end)."""
    counts = {net: 0 for net in nets}
    for change in trace:
        if change.net in counts and start <= change.time < end:
            counts[change.net] += 1
    return counts
