"""Event-driven simulation: delays, compiled simulator, oracle, 4-phase
harness, and Monte-Carlo validation campaigns."""

from ._reference import ReferenceSimulator
from .campaign import (
    DELAY_MODELS,
    ENGINES,
    CampaignCell,
    CampaignResult,
    ValidationCampaign,
    default_engine,
    delay_model,
)
from .delays import (
    CornerDelay,
    DelayModel,
    RandomDelay,
    UnitDelay,
    hostile_random,
    loop_safe_random,
    skewed_random,
)
from .harness import (
    FantomHarness,
    random_legal_walk,
    synthesize_and_validate,
    validate_against_reference,
    validate_walk,
)
from .monitors import CycleReport, ValidationSummary, count_changes
from .reference import FlowTableInterpreter, ReferenceStep
from .ring import RingSimulator
from .simulator import NetChange, Simulator
from .vcd import trace_to_vcd, write_vcd

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CornerDelay",
    "CycleReport",
    "DELAY_MODELS",
    "DelayModel",
    "ENGINES",
    "FantomHarness",
    "FlowTableInterpreter",
    "NetChange",
    "RandomDelay",
    "ReferenceSimulator",
    "ReferenceStep",
    "RingSimulator",
    "Simulator",
    "UnitDelay",
    "ValidationCampaign",
    "ValidationSummary",
    "count_changes",
    "default_engine",
    "delay_model",
    "hostile_random",
    "loop_safe_random",
    "random_legal_walk",
    "skewed_random",
    "synthesize_and_validate",
    "trace_to_vcd",
    "validate_against_reference",
    "validate_walk",
    "write_vcd",
]
