"""Event-driven simulation: delays, simulator, oracle, 4-phase harness."""

from .delays import (
    DelayModel,
    RandomDelay,
    UnitDelay,
    hostile_random,
    loop_safe_random,
    skewed_random,
)
from .harness import (
    FantomHarness,
    random_legal_walk,
    synthesize_and_validate,
    validate_against_reference,
)
from .monitors import CycleReport, ValidationSummary, count_changes
from .reference import FlowTableInterpreter, ReferenceStep
from .simulator import NetChange, Simulator
from .vcd import trace_to_vcd, write_vcd

__all__ = [
    "CycleReport",
    "DelayModel",
    "FantomHarness",
    "FlowTableInterpreter",
    "NetChange",
    "RandomDelay",
    "ReferenceStep",
    "Simulator",
    "UnitDelay",
    "ValidationSummary",
    "count_changes",
    "hostile_random",
    "loop_safe_random",
    "random_legal_walk",
    "skewed_random",
    "synthesize_and_validate",
    "trace_to_vcd",
    "validate_against_reference",
    "write_vcd",
]
