"""The 4-phase environment harness driving a FANTOM machine.

One hand-shake cycle, exactly as Section 4.2 prescribes:

1. wait for ``VOM`` high (the machine advertises completion);
2. drive the external pins ``X*`` to the new vector, then raise ``VI``;
3. the machine raises ``G`` internally, latches the inputs, and drops
   ``VOM``; on seeing that, the environment drops ``VI``;
4. the machine settles (possibly through an ``fsv``-mediated second state
   change) and re-asserts ``VOM``, latching the outputs into ``FFZ``.

"Like-successive" inputs are legal — re-applying the resting vector still
completes a full hand-shake (paper Section 3's extension of the SI
model) — and the harness exercises them in its random walks.

`validate_against_reference` runs random legal input walks and scores
each cycle against the flow-table interpreter, producing the
:class:`~repro.sim.monitors.ValidationSummary` the hazard benchmarks
aggregate.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from operator import attrgetter

from ..errors import SimulationError
from ..netlist.fantom import FantomMachine
from .delays import DelayModel, loop_safe_random
from .monitors import CycleReport, ValidationSummary
from .reference import FlowTableInterpreter
from .simulator import Simulator

_change_time = attrgetter("time")


class FantomHarness:
    """Owns one machine instance, one simulator, and the hand-shake.

    ``simulator_factory`` selects the event kernel — the compiled
    :class:`~repro.sim.simulator.Simulator` by default, or the retained
    :class:`~repro.sim._reference.ReferenceSimulator` for equivalence
    pinning and benchmarking (both take the same constructor arguments
    and expose the same driving surface).
    """

    #: Environment think-time between observing an edge and reacting.
    ENV_DELAY = 2.0
    #: Budget for each wait; generous relative to any benchmark's depth.
    WAIT_BUDGET = 600.0

    def __init__(
        self,
        machine: FantomMachine,
        delays: DelayModel | None = None,
        simulator_factory=Simulator,
    ):
        self.machine = machine
        self.simulator = simulator_factory(
            machine.netlist,
            delays=delays,
            initial_values=machine.initial_values(),
        )
        self.simulator.watch(
            machine.vom, machine.g, *machine.output_nets
        )
        self._read_state = self.simulator.values_reader(machine.state_nets)
        self._read_outputs = self.simulator.values_reader(
            machine.output_nets
        )
        # Pre-resolved single-net readers: the hand-shake polls VOM and
        # the pins every cycle, and resolving net names per poll is pure
        # overhead on the campaign's hot path.
        self._read_vom = self.simulator.net_reader(machine.vom)
        self._pin_readers = [
            (net, self.simulator.net_reader(net))
            for net in machine.external_inputs
        ]
        self._output_net_list = list(machine.output_nets)
        self.cycle_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.simulator.now

    def state_code(self) -> int:
        code = 0
        for n, bit in enumerate(self._read_state()):
            code |= bit << n
        return code

    def observed_state(self) -> str | None:
        return self.machine.result.spec.encoding.state_of(self.state_code())

    def outputs(self) -> tuple[int, ...]:
        return self._read_outputs()

    # ------------------------------------------------------------------
    def _wait_for(self, net: str, value: int) -> None:
        # The hand-shake only ever waits on VOM; the pre-resolved
        # reader skips the per-poll net-name lookup on this hot path.
        read = self._read_vom if net == self.machine.vom else (
            lambda: self.simulator.value(net)
        )
        if read() == value:
            return
        deadline = self.now + self.WAIT_BUDGET
        self.simulator.run(until=deadline, stop_net=net, stop_value=value)
        if read() != value:
            raise SimulationError(
                f"timeout waiting for {net}={value} "
                f"(machine {self.machine.netlist.name!r})"
            )

    def apply(self, column: int) -> tuple[str | None, tuple[int, ...]]:
        """Run one full hand-shake delivering ``column`` to the machine.

        Returns the decoded state and the latched outputs after VOM
        re-asserts.
        """
        machine = self.machine
        sim = self.simulator
        self._wait_for(machine.vom, 1)
        sim.run_until_quiet(self.WAIT_BUDGET)

        start = self.now
        for i, (net, read) in enumerate(self._pin_readers):
            bit = column >> i & 1
            # The pins are quiet here (the queue just drained), so a
            # pin already at its target level needs no event — walks
            # re-apply like-successive columns constantly.
            if read() != bit:
                sim.schedule(net, bit, at=start + self.ENV_DELAY)
        sim.schedule(machine.vi, 1, at=start + 2 * self.ENV_DELAY)
        self._wait_for(machine.vom, 0)
        sim.schedule(machine.vi, 0, at=self.now + self.ENV_DELAY)
        self._wait_for(machine.vom, 1)
        sim.run_until_quiet(self.WAIT_BUDGET)
        self.cycle_count += 1
        return self.observed_state(), self.outputs()

    # ------------------------------------------------------------------
    def scored_apply(
        self, column: int, reference: FlowTableInterpreter, index: int
    ) -> CycleReport:
        """Apply one column and judge the cycle against the reference."""
        return self.scored_apply_expected(
            column, reference.apply(column), index
        )

    def scored_apply_expected(
        self, column: int, expected, index: int
    ) -> CycleReport:
        """Apply one column, judged against a precomputed reference step.

        The campaign replays one walk under many delay models; the
        expected :class:`~repro.sim.reference.ReferenceStep` stream
        depends only on (table, walk), so precomputing it once and
        passing each step here removes the interpreter from every
        timed cell.
        """
        window_start = self.now
        observed_state, observed_outputs = self.apply(column)
        window_end = self.now
        # The trace is appended in event order, so it is sorted by time;
        # bisect the cycle's window out and score it in one pass instead
        # of rescanning the whole run's trace every cycle (the campaign
        # runs thousands of them).  Output changes count over
        # [start, end), VOM rises over (start, end] — the original
        # judgement windows exactly.
        trace = self.simulator.trace
        vom = self.machine.vom
        changes = dict.fromkeys(self._output_net_list, 0)
        vom_rises = 0
        for change in trace[
            bisect_left(trace, window_start, key=_change_time)
            : bisect_right(trace, window_end, key=_change_time)
        ]:
            net = change.net
            if net in changes:
                if window_start <= change.time < window_end:
                    changes[net] += 1
            elif (
                net == vom
                and change.value == 1
                and window_start < change.time
            ):
                vom_rises += 1
        return CycleReport(
            index=index,
            column=column,
            expected_state=expected.state,
            observed_state=observed_state,
            expected_outputs=expected.outputs,
            observed_outputs=observed_outputs,
            output_changes=changes,
            vom_rises=vom_rises,
        )


def kernel_snapshot(sim) -> dict | None:
    """One walk's kernel telemetry in :class:`ValidationSummary` form.

    Reads the simulator's ``kernel_stats`` (both event kernels expose
    it; the reference kernel does not — ``None`` then) and normalises it
    to the aggregatable shape ``merge_kernel`` folds: the walk counts
    one unit towards the path it *ended* on, so a demoted walk shows up
    under its fallback path with the demotion itself in ``migrations``.
    """
    stats = getattr(sim, "kernel_stats", None)
    if stats is None:
        return None
    return {
        "paths": {stats["path"]: 1},
        "migrations": dict(stats.get("migrations", {})),
        # The replay counters are deliberately absent: they vary with
        # segment-cache warmth (an in-process execution detail), and
        # the summary's wire form must be partition-independent.
        "fronts": stats.get("fronts", 0),
        "front_events": stats.get("front_events", 0),
    }


def expected_walk(table, walk: list[int]) -> list:
    """The reference interpreter's step stream for one column walk.

    Depends only on (table, walk) — the campaign computes it once per
    (table, seed) and shares it across every delay model's cell.
    """
    reference = FlowTableInterpreter(table)
    return [reference.apply(column) for column in walk]


def random_legal_walk(
    table,
    steps: int,
    seed: int | None = None,
    favour_mic: bool = True,
    rng: random.Random | None = None,
) -> list[int]:
    """A random sequence of legal input columns for ``table``.

    Starts at the reset state's stable column; each step picks a
    specified column of the current (settled) state, preferring
    multiple-input changes when available so the hazard machinery gets
    exercised.  Like-successive inputs (re-applying the resting column)
    are included.

    Randomness is explicit: pass ``seed`` (a private
    ``random.Random(seed)`` is built) or thread an existing ``rng``.
    The global ``random`` module is never touched, so every walk is
    reproducible from its arguments alone.
    """
    if rng is None:
        if seed is None:
            raise SimulationError(
                "random_legal_walk needs a seed or an explicit rng"
            )
        rng = random.Random(seed)
    interpreter = FlowTableInterpreter(table)
    current_column = interpreter.stable_column()
    walk: list[int] = []
    for _ in range(steps):
        legal = interpreter.legal_columns()
        mic = [
            c
            for c in legal
            if (c ^ current_column).bit_count() >= 2
        ]
        pool = mic if (favour_mic and mic and rng.random() < 0.6) else legal
        column = rng.choice(pool)
        walk.append(column)
        interpreter.apply(column)
        current_column = column
    return walk


def synthesize_and_validate(
    table,
    options=None,
    *,
    use_fsv: bool = True,
    steps: int = 30,
    seeds: tuple[int, ...] = (0, 1, 2),
    delays_factory=loop_safe_random,
    manager=None,
    spec=None,
) -> ValidationSummary:
    """Flow table → pass pipeline → FANTOM netlist → dynamic validation.

    The one-call version of the paper's full loop: synthesise ``table``
    through :func:`repro.api.synthesize` (pass a
    :class:`~repro.pipeline.spec.PipelineSpec` to select pass variants,
    or a cached ``manager`` to skip already-computed stages — the
    ablation benchmarks validate the same table with and without fsv,
    sharing upstream stages), build the gate-level machine, and run
    :func:`validate_against_reference`.  ``use_fsv=False`` wires the
    unprotected machine (the hazard ablation).
    """
    from ..netlist.fantom import build_fantom

    if manager is not None:
        if spec is not None:
            raise SimulationError(
                "pass either a manager or a spec, not both (a manager "
                "already carries its pass list)"
            )
        result = manager.run(table, options)
    else:
        from ..api import synthesize

        result = synthesize(table, options, spec=spec)
    machine = build_fantom(result, use_fsv=use_fsv)
    return validate_against_reference(
        machine, steps=steps, seeds=seeds, delays_factory=delays_factory
    )


def validate_against_reference(
    machine: FantomMachine,
    steps: int = 30,
    seeds: tuple[int, ...] = (0, 1, 2),
    delays_factory=loop_safe_random,
    simulator_factory=Simulator,
) -> ValidationSummary:
    """Random-walk validation of a machine against its flow table.

    For each seed a fresh harness (fresh silicon: new random delays) runs
    a random legal walk; every cycle is scored.  The returned summary is
    the material of the hazard-ablation benchmark: a FANTOM machine must
    come back all-clean, the fsv-less machine must not (on hazardous
    workloads).  Each seed fully determines its walk and its silicon, so
    a reported failure is replayable from ``(machine, steps, seed)``.
    """
    table = machine.result.table
    summary = ValidationSummary()
    for seed in seeds:
        walk = random_legal_walk(table, steps, rng=random.Random(seed))
        validate_walk(
            machine,
            walk,
            delays=delays_factory(seed),
            simulator_factory=simulator_factory,
            into=summary,
        )
    return summary


def build_timed_fantom(result, use_fsv: bool = True) -> FantomMachine:
    """Build a FANTOM machine with Gate A padded per Section 4.3.

    ``build_fantom`` leaves the VOM AND gate at the default unit delay;
    on deep output covers that lets ``VOM`` rise in the same instant a
    transiently-asserted ``Ẑ`` falls, and ``FFZ`` latches the stale
    value (critical path 3 violated).  The paper's prescription —
    realised by :func:`repro.netlist.timing.timing_report`'s default
    ``gate_a_padding`` — is to set ``t_f`` one level above the ``Ẑ``
    settling depth, which this constructor applies.  The differential
    fuzzer and the corpus regression suite build every machine this
    way, so a dirty cell there is a logic anomaly, never a CP3 race.
    """
    from ..netlist.fantom import build_fantom
    from ..netlist.timing import timing_report

    padding = timing_report(result).t_f
    return build_fantom(
        result, use_fsv=use_fsv, vom_gate_delay=float(padding)
    )


def export_walk_vcd(
    machine: FantomMachine,
    walk: list[int],
    delays: DelayModel | None = None,
    simulator_factory=Simulator,
) -> str:
    """Replay one walk with a full debug watch-set and render it as VCD.

    The scoring run watches only what the monitors need; when a cell
    comes back dirty, this deterministic replay — same walk, same seed,
    so the same silicon and the same events — records the whole
    hand-shake surface (external pins, ``VI``/``G``/``VOM``, state
    nets, outputs) for waveform inspection.  A
    :class:`~repro.errors.SimulationError` mid-walk ends the replay;
    the trace up to the failure is exactly the evidence wanted.
    """
    from .vcd import trace_to_vcd

    harness = FantomHarness(
        machine, delays=delays, simulator_factory=simulator_factory
    )
    nets = list(
        dict.fromkeys(
            [
                *machine.external_inputs,
                machine.vi,
                machine.g,
                machine.vom,
                *machine.state_nets,
                *machine.output_nets,
            ]
        )
    )
    harness.simulator.watch(*nets)
    for column in walk:
        try:
            harness.apply(column)
        except SimulationError:
            break
    return trace_to_vcd(
        harness.simulator.trace,
        nets,
        machine.initial_values(),
        module=machine.netlist.name,
    )


def validate_walk(
    machine: FantomMachine,
    walk: list[int],
    delays: DelayModel | None = None,
    simulator_factory=Simulator,
    into: ValidationSummary | None = None,
    expected: list | None = None,
) -> ValidationSummary:
    """Score one precomputed column walk on fresh silicon.

    The per-seed body of :func:`validate_against_reference`, split out so
    a :class:`~repro.sim.campaign.ValidationCampaign` can reuse one walk
    across many delay models (the walk depends only on the table and the
    seed).  Pass ``expected`` (from :func:`expected_walk`) to also reuse
    the reference interpreter's step stream across those cells.  A
    :class:`~repro.errors.SimulationError` mid-walk is recorded as a
    failed cycle and ends the walk, exactly as before.  The walk's
    kernel telemetry is folded into the summary's ``kernel`` aggregate.
    """
    summary = into if into is not None else ValidationSummary()
    harness = FantomHarness(
        machine, delays=delays, simulator_factory=simulator_factory
    )
    if expected is None:
        expected = expected_walk(machine.result.table, walk)
    for index, column in enumerate(walk):
        step = expected[index]
        try:
            report = harness.scored_apply_expected(column, step, index)
        except SimulationError:
            report = CycleReport(
                index=index,
                column=column,
                expected_state=step.state,
                observed_state=None,
                expected_outputs=(),
                observed_outputs=(),
                output_changes={},
                vom_rises=0,
            )
            summary.add(report)
            break
        summary.add(report)
    summary.merge_kernel(kernel_snapshot(harness.simulator))
    return summary
