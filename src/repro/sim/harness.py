"""The 4-phase environment harness driving a FANTOM machine.

One hand-shake cycle, exactly as Section 4.2 prescribes:

1. wait for ``VOM`` high (the machine advertises completion);
2. drive the external pins ``X*`` to the new vector, then raise ``VI``;
3. the machine raises ``G`` internally, latches the inputs, and drops
   ``VOM``; on seeing that, the environment drops ``VI``;
4. the machine settles (possibly through an ``fsv``-mediated second state
   change) and re-asserts ``VOM``, latching the outputs into ``FFZ``.

"Like-successive" inputs are legal — re-applying the resting vector still
completes a full hand-shake (paper Section 3's extension of the SI
model) — and the harness exercises them in its random walks.

`validate_against_reference` runs random legal input walks and scores
each cycle against the flow-table interpreter, producing the
:class:`~repro.sim.monitors.ValidationSummary` the hazard benchmarks
aggregate.
"""

from __future__ import annotations

import random

from ..errors import SimulationError
from ..netlist.fantom import FantomMachine
from .delays import DelayModel, loop_safe_random
from .monitors import CycleReport, ValidationSummary, count_changes
from .reference import FlowTableInterpreter
from .simulator import Simulator


class FantomHarness:
    """Owns one machine instance, one simulator, and the hand-shake."""

    #: Environment think-time between observing an edge and reacting.
    ENV_DELAY = 2.0
    #: Budget for each wait; generous relative to any benchmark's depth.
    WAIT_BUDGET = 600.0

    def __init__(
        self,
        machine: FantomMachine,
        delays: DelayModel | None = None,
    ):
        self.machine = machine
        self.simulator = Simulator(
            machine.netlist,
            delays=delays,
            initial_values=machine.initial_values(),
        )
        self.simulator.watch(
            machine.vom, machine.g, *machine.output_nets
        )
        self.cycle_count = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.simulator.now

    def state_code(self) -> int:
        code = 0
        for n, net in enumerate(self.machine.state_nets):
            code |= self.simulator.value(net) << n
        return code

    def observed_state(self) -> str | None:
        return self.machine.result.spec.encoding.state_of(self.state_code())

    def outputs(self) -> tuple[int, ...]:
        return tuple(
            self.simulator.value(net) for net in self.machine.output_nets
        )

    # ------------------------------------------------------------------
    def _wait_for(self, net: str, value: int) -> None:
        if self.simulator.value(net) == value:
            return
        deadline = self.now + self.WAIT_BUDGET
        self.simulator.run(
            until=deadline,
            stop_when=lambda sim: sim.value(net) == value,
        )
        if self.simulator.value(net) != value:
            raise SimulationError(
                f"timeout waiting for {net}={value} "
                f"(machine {self.machine.netlist.name!r})"
            )

    def apply(self, column: int) -> tuple[str | None, tuple[int, ...]]:
        """Run one full hand-shake delivering ``column`` to the machine.

        Returns the decoded state and the latched outputs after VOM
        re-asserts.
        """
        machine = self.machine
        sim = self.simulator
        self._wait_for(machine.vom, 1)
        sim.run_until_quiet(self.WAIT_BUDGET)

        start = self.now
        for i, net in enumerate(machine.external_inputs):
            sim.schedule(net, column >> i & 1, at=start + self.ENV_DELAY)
        sim.schedule(machine.vi, 1, at=start + 2 * self.ENV_DELAY)
        self._wait_for(machine.vom, 0)
        sim.schedule(machine.vi, 0, at=self.now + self.ENV_DELAY)
        self._wait_for(machine.vom, 1)
        sim.run_until_quiet(self.WAIT_BUDGET)
        self.cycle_count += 1
        return self.observed_state(), self.outputs()

    # ------------------------------------------------------------------
    def scored_apply(
        self, column: int, reference: FlowTableInterpreter, index: int
    ) -> CycleReport:
        """Apply one column and judge the cycle against the reference."""
        window_start = self.now
        expected = reference.apply(column)
        observed_state, observed_outputs = self.apply(column)
        window_end = self.now
        changes = count_changes(
            self.simulator.trace,
            list(self.machine.output_nets),
            window_start,
            window_end,
        )
        vom_rises = sum(
            1
            for change in self.simulator.trace
            if change.net == self.machine.vom
            and change.value == 1
            and window_start < change.time <= window_end
        )
        return CycleReport(
            index=index,
            column=column,
            expected_state=expected.state,
            observed_state=observed_state,
            expected_outputs=expected.outputs,
            observed_outputs=observed_outputs,
            output_changes=changes,
            vom_rises=vom_rises,
        )


def random_legal_walk(
    table, steps: int, seed: int, favour_mic: bool = True
) -> list[int]:
    """A random sequence of legal input columns for ``table``.

    Starts at the reset state's stable column; each step picks a
    specified column of the current (settled) state, preferring
    multiple-input changes when available so the hazard machinery gets
    exercised.  Like-successive inputs (re-applying the resting column)
    are included.
    """
    rng = random.Random(seed)
    interpreter = FlowTableInterpreter(table)
    current_column = interpreter.stable_column()
    walk: list[int] = []
    for _ in range(steps):
        legal = interpreter.legal_columns()
        mic = [
            c
            for c in legal
            if (c ^ current_column).bit_count() >= 2
        ]
        pool = mic if (favour_mic and mic and rng.random() < 0.6) else legal
        column = rng.choice(pool)
        walk.append(column)
        interpreter.apply(column)
        current_column = column
    return walk


def synthesize_and_validate(
    table,
    options=None,
    *,
    use_fsv: bool = True,
    steps: int = 30,
    seeds: tuple[int, ...] = (0, 1, 2),
    delays_factory=loop_safe_random,
    manager=None,
    spec=None,
) -> ValidationSummary:
    """Flow table → pass pipeline → FANTOM netlist → dynamic validation.

    The one-call version of the paper's full loop: synthesise ``table``
    through :func:`repro.api.synthesize` (pass a
    :class:`~repro.pipeline.spec.PipelineSpec` to select pass variants,
    or a cached ``manager`` to skip already-computed stages — the
    ablation benchmarks validate the same table with and without fsv,
    sharing upstream stages), build the gate-level machine, and run
    :func:`validate_against_reference`.  ``use_fsv=False`` wires the
    unprotected machine (the hazard ablation).
    """
    from ..netlist.fantom import build_fantom

    if manager is not None:
        if spec is not None:
            raise SimulationError(
                "pass either a manager or a spec, not both (a manager "
                "already carries its pass list)"
            )
        result = manager.run(table, options)
    else:
        from ..api import synthesize

        result = synthesize(table, options, spec=spec)
    machine = build_fantom(result, use_fsv=use_fsv)
    return validate_against_reference(
        machine, steps=steps, seeds=seeds, delays_factory=delays_factory
    )


def validate_against_reference(
    machine: FantomMachine,
    steps: int = 30,
    seeds: tuple[int, ...] = (0, 1, 2),
    delays_factory=loop_safe_random,
) -> ValidationSummary:
    """Random-walk validation of a machine against its flow table.

    For each seed a fresh harness (fresh silicon: new random delays) runs
    a random legal walk; every cycle is scored.  The returned summary is
    the material of the hazard-ablation benchmark: a FANTOM machine must
    come back all-clean, the fsv-less machine must not (on hazardous
    workloads).
    """
    table = machine.result.table
    summary = ValidationSummary()
    for seed in seeds:
        harness = FantomHarness(machine, delays=delays_factory(seed))
        reference = FlowTableInterpreter(table)
        walk = random_legal_walk(table, steps, seed)
        for index, column in enumerate(walk):
            try:
                report = harness.scored_apply(column, reference, index)
            except SimulationError:
                report = CycleReport(
                    index=index,
                    column=column,
                    expected_state=reference.state,
                    observed_state=None,
                    expected_outputs=(),
                    observed_outputs=(),
                    output_changes={},
                    vom_rises=0,
                )
                summary.add(report)
                break
            summary.add(report)
    return summary
