"""Flow-table reference interpreter: the simulation oracle.

Executes a flow table at the *semantic* level — no gates, no delays —
producing the stable state and latched outputs after each input change.
The dynamic validation harness compares the gate-level FANTOM machine
against this interpreter step by step; any divergence is a hazard the
architecture failed to contain (or, with ``fsv`` ablated, the hazard the
paper's mechanism exists to prevent).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..flowtable.table import FlowTable


@dataclass(frozen=True)
class ReferenceStep:
    """Outcome of one input application."""

    column: int
    state: str
    outputs: tuple[int | None, ...]


class FlowTableInterpreter:
    """Stateful executor of a normal-mode flow table."""

    def __init__(self, table: FlowTable, state: str | None = None):
        self.table = table
        self.state = state or table.reset_state or table.states[0]
        if self.state not in table.states:
            raise SimulationError(f"unknown start state {self.state!r}")
        self._legal: dict[str, list[int]] = {}
        self._steps: dict[tuple[str, int], ReferenceStep] = {}

    def stable_column(self) -> int:
        columns = self.table.stable_columns(self.state)
        if not columns:
            raise SimulationError(
                f"state {self.state!r} has no stable column"
            )
        return columns[0]

    def legal_columns(self) -> list[int]:
        """Columns with a specified entry from the current state.

        Cached per state — the walk generators ask once per step, and
        the table is immutable.
        """
        columns = self._legal.get(self.state)
        if columns is None:
            columns = [
                column
                for column in self.table.columns
                if self.table.is_specified(self.state, column)
            ]
            self._legal[self.state] = columns
        return columns

    def apply(self, column: int) -> ReferenceStep:
        """Apply one (total) input vector and settle.

        Normal mode settles in at most one hop; chains are followed
        defensively, with oscillation detected.  The table's cell store
        is read directly (one dict probe per hop), and settled steps are
        memoised per (state, column) — the table is immutable and the
        settled point is a pure function of the pair, while ``apply``
        runs once per hand-shake cycle of every validation-campaign
        cell.
        """
        cached = self._steps.get((self.state, column))
        if cached is not None:
            self.state = cached.state
            return cached
        start = self.state
        entries = self.table._entries
        seen = {self.state}
        current = self.state
        while True:
            cell = entries.get((current, column))
            nxt = cell.next_state if cell is not None else None
            if nxt is None:
                raise SimulationError(
                    f"unspecified entry ({current!r}, "
                    f"{self.table.column_string(column)}): the environment "
                    f"applied an illegal input"
                )
            if nxt == current:
                break
            if nxt in seen:
                raise SimulationError(
                    f"oscillation under column "
                    f"{self.table.column_string(column)}"
                )
            seen.add(nxt)
            current = nxt
        self.state = current
        step = ReferenceStep(
            column=column, state=current, outputs=cell.outputs
        )
        self._steps[(start, column)] = step
        return step

    def run(self, columns: list[int]) -> list[ReferenceStep]:
        return [self.apply(column) for column in columns]
