"""Flow-table reference interpreter: the simulation oracle.

Executes a flow table at the *semantic* level — no gates, no delays —
producing the stable state and latched outputs after each input change.
The dynamic validation harness compares the gate-level FANTOM machine
against this interpreter step by step; any divergence is a hazard the
architecture failed to contain (or, with ``fsv`` ablated, the hazard the
paper's mechanism exists to prevent).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..flowtable.table import FlowTable


@dataclass(frozen=True)
class ReferenceStep:
    """Outcome of one input application."""

    column: int
    state: str
    outputs: tuple[int | None, ...]


class FlowTableInterpreter:
    """Stateful executor of a normal-mode flow table."""

    def __init__(self, table: FlowTable, state: str | None = None):
        self.table = table
        self.state = state or table.reset_state or table.states[0]
        if self.state not in table.states:
            raise SimulationError(f"unknown start state {self.state!r}")

    def stable_column(self) -> int:
        columns = self.table.stable_columns(self.state)
        if not columns:
            raise SimulationError(
                f"state {self.state!r} has no stable column"
            )
        return columns[0]

    def legal_columns(self) -> list[int]:
        """Columns with a specified entry from the current state."""
        return [
            column
            for column in self.table.columns
            if self.table.is_specified(self.state, column)
        ]

    def apply(self, column: int) -> ReferenceStep:
        """Apply one (total) input vector and settle.

        Normal mode settles in at most one hop; chains are followed
        defensively, with oscillation detected.
        """
        seen = {self.state}
        current = self.state
        while True:
            nxt = self.table.next_state(current, column)
            if nxt is None:
                raise SimulationError(
                    f"unspecified entry ({current!r}, "
                    f"{self.table.column_string(column)}): the environment "
                    f"applied an illegal input"
                )
            if nxt == current:
                break
            if nxt in seen:
                raise SimulationError(
                    f"oscillation under column "
                    f"{self.table.column_string(column)}"
                )
            seen.add(nxt)
            current = nxt
        self.state = current
        outputs = self.table.output_vector(current, column)
        return ReferenceStep(column=column, state=current, outputs=outputs)

    def run(self, columns: list[int]) -> list[ReferenceStep]:
        return [self.apply(column) for column in columns]
