"""The event-ring simulation kernel: batched fronts over integer time.

:class:`RingSimulator` is the third event kernel (after the seed
interpreter in :mod:`repro.sim._reference` and the compiled heap kernel
in :mod:`repro.sim.simulator`), selectable as ``--engine ring``.  It is
pinned trace-equivalent to both: identical
:class:`~repro.sim.simulator.NetChange` streams, values and simulation
times on every netlist and delay model (``events_processed``
intentionally differs, exactly as the compiled kernel's push-time
filtering already does).

Where the compiled kernel replaced *interpretation* costs (string keys,
virtual calls) with a flat integer program, the ring kernel replaces the
*event queue* itself for the delay regimes that allow it:

* **bucket-ring queue** — when every resolved delay is an integer (the
  ``unit`` model, and any netlist with integral annotated delays), event
  times are integers, so the heap becomes a sorted ring of time buckets:
  scheduling is an append, popping is a batch take, and heap tie-break
  order is exactly bucket append order (sequence numbers are assigned
  monotonically);
* **batched front evaluation** — a whole same-timestamp fanout front is
  applied in one pass: values and flip-flop samples are committed in
  sequence order, then each *touched* gate is evaluated **once** against
  its final ones-count (``tt >> count & 1``) instead of once per fanout
  edge, and the surviving pushes are emitted in exactly the order the
  serial kernel's supersession chain would leave behind.  Wide fronts
  hand the truth-table evaluation to numpy (a structured gather over the
  touched set); narrow fronts stay scalar — the crossover is
  :data:`FRONT_VECTOR_MIN`;
* **run-segment replay** — a FANTOM hand-shake revisits a small set of
  ``(net values, queued events, wait)`` situations over and over (the
  walk graph has few distinct edges).  In integer-time mode every
  ``run()`` call is a pure function of that situation, so completed
  segments are memoised on the compiled program (shared by every
  campaign cell over the same machine and delay vector) and replayed:
  values, counts, trace, queue and the clock advance in O(changes) with
  no event processing at all.

Float-delay instances (``loop-safe``, ``skewed``, ``hostile``, and the
``corner`` model's fractional clock-to-Q band) take the inherited
compiled heap loop unchanged — for those regimes the ring layout has
nothing to batch (measured same-timestamp fronts are of size 1–2), and
the compiled loop is already within a small factor of the CPython floor.
A non-integral external ``schedule()`` in ring mode migrates the buckets
into the heap mid-session and continues there, so the kernel is a
drop-in for arbitrary stimuli.

numpy is optional: without it the front path evaluates scalar-wise and
everything else is pure python (see the ``REPRO_SIM_ENGINE`` fallback in
:mod:`repro.sim.campaign`).
"""

from __future__ import annotations

import heapq
from bisect import insort

from ..errors import SimulationError
from .simulator import NetChange, Simulator

try:  # numpy is a declared dependency, but the kernel degrades gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Buckets at least this large take the batched front path.
FRONT_MIN = 6
#: Touched-gate sets at least this large are evaluated with numpy.
FRONT_VECTOR_MIN = 32

_INF = float("inf")


class _Segment:
    """One memoised run segment (see module docs)."""

    __slots__ = (
        "events", "end_dt", "values", "count_deltas", "trace", "queue",
        "next",
    )

    def __init__(self, events, end_dt, values, count_deltas, trace, queue):
        self.events = events
        self.end_dt = end_dt
        #: successor edges: (externals signature, run args) -> _Segment.
        #: The post-replay state is exact, so the next ``run()``'s full
        #: key is a function of this segment, the externally scheduled
        #: events since, and the call's arguments — steady-state walks
        #: chain segment to segment without rebuilding keys at all.
        self.next: dict = {}
        #: ((nid, value), ...) final values of the nets the segment changed.
        self.values = values
        #: ((gate, delta), ...) aggregated ones-count adjustments.
        self.count_deltas = count_deltas
        #: ((dt, nid, value), ...) watched changes, in apply order.
        self.trace = trace
        #: ((dt, ((nid, value, tracked), ...)), ...) the queue left
        #: behind, grouped per bucket, dts ascending, entries pop order.
        self.queue = queue


class RingSimulator(Simulator):
    """Event-driven simulation on the bucket-ring kernel.

    Construction, driving surface and observable behaviour are identical
    to :class:`~repro.sim.simulator.Simulator`; only the execution
    strategy differs (and only when every resolved delay is integral).
    """

    def __init__(
        self,
        netlist,
        delays=None,
        initial_values=None,
        max_events: int = 200_000,
        inertial: bool = True,
    ):
        super().__init__(
            netlist,
            delays=delays,
            initial_values=initial_values,
            max_events=max_events,
            inertial=inertial,
        )
        # The compiled kernel's generated closures, kept as the fallback
        # engine for float-delay instances and post-migration operation.
        self._heap_run = self.run
        self._heap_schedule = self.schedule

        gate_delays = self._gate_delays
        dff_delays = self._dff_delays
        self._ring = all(
            float(d).is_integer() for d in gate_delays
        ) and all(float(d).is_integer() for d in dff_delays)
        if not self._ring:
            return

        prog = self._prog
        plan_key = (tuple(gate_delays), tuple(dff_delays))
        self._plan_key = plan_key

        ring_key = ("ring-plans", plan_key)
        cached = prog.plan_cache.get(ring_key)
        if cached is None:
            plans_i = [
                None
                if plan is None
                else tuple(
                    (g, out_nid, int(delay), table)
                    for g, out_nid, delay, table in plan
                )
                for plan in self._plans
            ]
            dff_plans_i = [
                tuple((d, q, int(delay)) for d, q, delay in fans)
                for fans in self._dff_plans
            ]
            gate_delays_i = [int(d) for d in gate_delays]
            dff_delays_i = [int(d) for d in dff_delays]
            num_nets = prog.num_nets
            driver_gate = [-1] * num_nets
            for g, out in enumerate(prog.gate_output):
                driver_gate[out] = g
            driver_dff = [-1] * num_nets
            for f, q in enumerate(prog.dff_q):
                driver_dff[q] = f
            driven = [
                driver_gate[n] >= 0 or driver_dff[n] >= 0
                for n in range(num_nets)
            ]
            cached = (
                plans_i, dff_plans_i, gate_delays_i, dff_delays_i,
                driver_gate, driver_dff, driven,
            )
            prog.plan_cache[ring_key] = cached
        (
            self._plans_i, self._dff_plans_i, self._gate_delays_i,
            self._dff_delays_i, self._driver_gate, self._driver_dff,
            self._driven,
        ) = cached

        #: sorted distinct integer event times (the ring index).
        self._times: list[int] = []
        #: time -> [(seq, nid, value), ...] in push (= pop tie-break) order.
        self._buckets: dict[int, list[tuple[int, int, int]]] = {}
        #: a replayed-but-unmaterialised queue: ``(segment, base_time)``.
        #: In steady chained replay each segment's end queue is replaced
        #: by its successor's before anything reads it, so :meth:`_replay`
        #: only stores this stub and :meth:`_materialise_queue` rebuilds
        #: ``_times``/``_buckets`` (and the tracked ``_pending`` entries)
        #: on first genuine access.  Invariant: when the stub is set, the
        #: containers are empty and no pending entries of its events
        #: exist yet.
        self._queue_stub: tuple[_Segment, int] | None = None
        #: external pushes made while a stub is pending, in push order as
        #: ``(time, nid, value)``; merged (after the stub's own events,
        #: matching their later sequence numbers) on materialisation.
        #: Invariant: non-empty only while ``_queue_stub`` is set.
        self._stub_extras: list[tuple[int, int, int]] = []
        self._segments: dict | None = None
        self._running = False
        #: externally scheduled events since the last anchored run
        #: (absolute int time, nid, value) — the successor-edge signature.
        self._ext_log: list[tuple[int, int, int]] = []
        #: the segment whose replay (or recording) produced the current
        #: state, when nothing but logged externals touched it since.
        self._last_segment: _Segment | None = None

        self.run = self._ring_run
        self.schedule = self._ring_schedule

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def watch(self, *nets: str) -> None:
        super().watch(*nets)
        # The watched set is part of a segment's observable output.
        self._segments = None
        self._last_segment = None

    def _materialise_queue(self) -> None:
        """Rebuild ``_times``/``_buckets`` from a pending replay stub."""
        stub = self._queue_stub
        if stub is None:
            return
        self._queue_stub = None
        segment, base = stub
        pending = self._pending
        seq = self._sequence
        times = self._times
        buckets = self._buckets
        for dt, entries in segment.queue:
            t = base + dt
            times.append(t)
            bucket = []
            for nid, value, tracked in entries:
                seq += 1
                if tracked:
                    pending[nid] = seq
                bucket.append((seq, nid, value))
            buckets[t] = bucket
        self._sequence = seq
        extras = self._stub_extras
        if extras:
            for t, nid, value in extras:
                self._bucket_push(t, nid, value, tracked=False)
            extras.clear()

    def _ring_schedule(self, net: str, value: int, at: float) -> None:
        if at < self.now:
            raise SimulationError(
                f"cannot schedule {net} at {at} before now ({self.now})"
            )
        nid = self._ids.get(net)
        if nid is None:
            raise SimulationError(f"unknown net {net!r}")
        if not float(at).is_integer():
            # A fractional stimulus ends integer time: migrate the ring
            # into the heap and continue on the compiled loop.
            if self._running:
                raise SimulationError(
                    "cannot schedule a fractional-time event from a "
                    "stop_when callback while the ring loop is running"
                )
            self._migrate_to_heap()
            self._heap_schedule(net, value, at)
            return
        t = int(at)
        v = 1 if value else 0
        self._ext_log.append((t, nid, v))
        if self._queue_stub is not None:
            # Keep the stub lazy: buffer the push, merge on materialise.
            self._stub_extras.append((t, nid, v))
        else:
            self._bucket_push(t, nid, v, tracked=False)

    def _bucket_push(
        self, t: int, nid: int, value: int, tracked: bool
    ) -> None:
        self._sequence = seq = self._sequence + 1
        if tracked:
            self._pending[nid] = seq
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [(seq, nid, value)]
            insort(self._times, t)
        else:
            bucket.append((seq, nid, value))

    def _migrate_to_heap(self) -> None:
        """Convert the buckets into the inherited heap, preserving order."""
        self._materialise_queue()
        queue = self._queue
        for t in self._times:
            ft = float(t)
            for seq, nid, value in self._buckets[t]:
                heapq.heappush(queue, (ft, seq, nid, value))
        self._times = []
        self._buckets = {}
        self._ring = False
        self._last_segment = None
        self.run = self._heap_run
        self.schedule = self._heap_schedule

    # ------------------------------------------------------------------
    # Queue inspection (the base class reads self._queue directly)
    # ------------------------------------------------------------------
    def has_live_events(self) -> bool:
        if not self._ring:
            return super().has_live_events()
        self._materialise_queue()
        pending = self._pending
        inertial = self.inertial
        for t in self._times:
            for seq, nid, _value in self._buckets[t]:
                if inertial:
                    live = pending[nid]
                    if live and live != seq:
                        continue
                return True
        return False

    def pending_events(self) -> int:
        if not self._ring:
            return super().pending_events()
        self._materialise_queue()
        return sum(len(self._buckets[t]) for t in self._times)

    def run_until_quiet(self, timeout: float) -> float:
        deadline = self.now + timeout
        if self._ring:
            # A replay stub is only stored for a non-empty end queue.
            empty = not self._times and self._queue_stub is None
        else:
            empty = not self._queue
        if empty:  # already quiet: just advance time
            self.now = deadline
            return deadline
        reached = self.run(until=deadline)
        if self.has_live_events():
            raise SimulationError(
                f"netlist {self.netlist.name!r} did not quiesce within "
                f"{timeout} time units"
            )
        return reached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _ring_run(
        self,
        until=None,
        stop_when=None,
        stop_net=None,
        stop_value=1,
    ) -> float:
        if not self._ring:
            return self._heap_run(until, stop_when, stop_net, stop_value)
        values = self._values
        stop_nid = -1
        if stop_net is not None:
            stop_nid = self._ids.get(stop_net, -1)
            if stop_nid < 0:
                raise SimulationError(f"unknown net {stop_net!r}")
            if values[stop_nid] == stop_value:
                return self.now
        now = self.now
        base = int(now)
        if stop_when is not None or base != now:
            # Callbacks may inspect or schedule arbitrarily, and a
            # fractional ``now`` makes the horizon offset ambiguous
            # relative to the integer bucket times: run live, unmemoised.
            self._last_segment = None
            return self._ring_loop(
                until, stop_when, stop_nid, stop_value, None
            )

        until_dt = None if until is None else until - now

        # Successor chaining: the state is the last segment's exact
        # output plus the logged externals, so the full key is already
        # determined — follow the cached edge without rebuilding it.
        last = self._last_segment
        self._last_segment = None
        edge = None
        if last is not None:
            log = self._ext_log
            edge = (
                tuple((t - base, nid, v) for t, nid, v in log)
                if log
                else (),
                until_dt, stop_nid, stop_value,
            )
            nxt = last.next.get(edge)
            if (
                nxt is not None
                and self._events_processed + nxt.events <= self.max_events
            ):
                self._ext_log.clear()
                self._last_segment = nxt
                return self._replay(nxt)
        self._ext_log.clear()

        segments = self._segment_cache()
        self._materialise_queue()
        pending = self._pending
        qsig = tuple(
            (
                t - base,
                tuple(
                    (nid, value, pending[nid] == seq)
                    for seq, nid, value in self._buckets[t]
                ),
            )
            for t in self._times
        )
        key = (tuple(values), qsig, until_dt, stop_nid, stop_value)
        segment = segments.get(key)
        if (
            segment is not None
            and self._events_processed + segment.events <= self.max_events
        ):
            if edge is not None:
                last.next[edge] = segment
            self._last_segment = segment
            return self._replay(segment)

        # Live run, recorded.  A raising segment (budget exhaustion, a
        # quiesce failure upstream) is never cached: the exception
        # propagates before the cache write, so every revisit runs it
        # fresh and raises at the same point.
        events_before = self._events_processed
        recorder = {"changed": {}, "trace": [], "queue": ()}
        result = self._ring_loop(until, None, stop_nid, stop_value, recorder)
        start_values = key[0]
        changed = {
            nid: value
            for nid, value in recorder["changed"].items()
            if value != start_values[nid]
        }
        count_deltas: dict[int, int] = {}
        fan_counts = self._prog.fan_counts
        for nid, value in changed.items():
            step = 1 if value else -1
            for g, mult in fan_counts[nid]:
                count_deltas[g] = count_deltas.get(g, 0) + step * mult
        segments[key] = segment = _Segment(
            events=self._events_processed - events_before,
            end_dt=self.now - now,
            values=tuple(changed.items()),
            count_deltas=tuple(
                (g, d) for g, d in count_deltas.items() if d
            ),
            trace=tuple(recorder["trace"]),
            queue=recorder["queue"],
        )
        if edge is not None:
            last.next[edge] = segment
        self._last_segment = segment
        return result

    def _segment_cache(self) -> dict:
        cache = self._segments
        if cache is None:
            root_key = (
                "ring-segments",
                self._plan_key,
                self.inertial,
                frozenset(
                    nid
                    for nid, flag in enumerate(self._watched_flags)
                    if flag
                ),
            )
            cache = self._prog.plan_cache.setdefault(root_key, {})
            self._segments = cache
        return cache

    def _replay(self, segment: _Segment) -> float:
        values = self._values
        counts = self._counts
        pending = self._pending
        now = self.now
        for nid, value in segment.values:
            values[nid] = value
        for g, delta in segment.count_deltas:
            counts[g] += delta
        if segment.trace:
            names = self._prog.net_names
            trace = self.trace
            for dt, nid, value in segment.trace:
                trace.append(NetChange(now + dt, names[nid], value))
        # The replayed-from state had exactly the keyed queue; discard it.
        # An unmaterialised stub never wrote its pending entries, so only
        # a materialised queue needs them cleared (buffered external
        # pushes were untracked and die with the stub).
        if self._queue_stub is not None:
            self._queue_stub = None
            if self._stub_extras:
                self._stub_extras.clear()
        elif self._times:
            for t in self._times:
                for seq, nid, _value in self._buckets[t]:
                    if pending[nid] == seq:
                        pending[nid] = 0
            self._times = []
            self._buckets = {}
        # The recorded end queue replaces it — lazily.  In steady chained
        # replay the successor's replay discards it unread, so the
        # per-event rebuild (fresh sequence numbers, pending writes) is
        # deferred to :meth:`_materialise_queue` and usually never runs.
        if segment.queue:
            self._queue_stub = (segment, int(now))
        self._events_processed += segment.events
        self.now = now + segment.end_dt
        return self.now

    # ------------------------------------------------------------------
    def _ring_loop(
        self, until, stop_when, stop_nid, stop_value, recorder
    ) -> float:
        """The live bucket loop (records into ``recorder`` when given)."""
        self._materialise_queue()
        times = self._times
        buckets = self._buckets
        values = self._values
        pending = self._pending
        counts = self._counts
        watched = self._watched_flags
        trace = self.trace
        plans = self._plans_i
        dff_plans = self._dff_plans_i
        fan_counts = self._prog.fan_counts
        fan_gates = self._prog.fan_gates
        gate_output = self._prog.gate_output
        tts = self._prog.gate_tt
        gate_delays = self._gate_delays_i
        net_names = self._prog.net_names
        inertial = self.inertial
        max_events = self.max_events
        deadline = _INF if until is None else until
        events = self._events_processed
        now = self.now
        start = now
        if recorder is not None:
            rec_changed = recorder["changed"]
            rec_trace = recorder["trace"]
        else:
            rec_changed = rec_trace = None
        front_ok = inertial and stop_when is None
        self._running = True
        try:
            while times:
                t = times[0]
                if t > deadline:
                    now = until
                    return now
                batch = buckets[t]
                ft = float(t)
                if (
                    front_ok
                    and len(batch) >= FRONT_MIN
                    and self._front_eligible(batch)
                ):
                    del buckets[t]
                    times.pop(0)
                    now = ft
                    events, stopped, error = self._front(
                        t, batch, stop_nid, stop_value, events,
                        rec_changed, rec_trace, start,
                    )
                    if error is not None:
                        raise error
                    if stopped:
                        return now
                    continue
                index = 0
                stop_here = False
                # Index loop: a stop_when callback may schedule into the
                # current instant, growing this bucket (heap order puts
                # such events after the existing ones, as append does).
                while index < len(batch):
                    eseq, nid, value = batch[index]
                    index += 1
                    events += 1
                    if events > max_events:
                        now = ft
                        rest = batch[index:]
                        if rest:
                            buckets[t] = rest
                        else:
                            del buckets[t]
                            times.pop(0)
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            f"oscillating feedback loop in "
                            f"{self.netlist.name!r}?"
                        )
                    now = ft
                    live = pending[nid]
                    if live:
                        if inertial and live != eseq:
                            continue  # superseded by a re-evaluation
                        if live == eseq:
                            pending[nid] = 0
                    if values[nid] == value:
                        continue
                    values[nid] = value
                    if rec_changed is not None:
                        rec_changed[nid] = value
                    if watched[nid]:
                        trace.append(NetChange(ft, net_names[nid], value))
                        if rec_trace is not None:
                            rec_trace.append((t - int(start), nid, value))
                    plan = plans[nid]
                    if plan is None:
                        if value:
                            for g, mult in fan_counts[nid]:
                                counts[g] += mult
                        else:
                            for g, mult in fan_counts[nid]:
                                counts[g] -= mult
                        for g in fan_gates[nid]:
                            out_nid = gate_output[g]
                            out = tts[g] >> counts[g] & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + gate_delays[g], out_nid, out, True
                                )
                    elif value:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] + 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + delay, out_nid, out, True
                                )
                    else:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] - 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + delay, out_nid, out, True
                                )
                    if value == 1:
                        for d_nid, q_nid, delay in dff_plans[nid]:
                            sampled = values[d_nid]
                            if pending[q_nid] or sampled != values[q_nid]:
                                self._bucket_push(
                                    t + delay, q_nid, sampled, True
                                )
                    if stop_nid >= 0 and values[stop_nid] == stop_value:
                        stop_here = True
                        break
                    if stop_when is not None:
                        self.now = now
                        self._events_processed = events
                        if stop_when(self):
                            stop_here = True
                            break
                rest = batch[index:]
                if rest:
                    buckets[t] = rest
                else:
                    del buckets[t]
                    times.pop(0)
                if stop_here:
                    return now
            if until is not None and until > now:
                now = until
            return now
        finally:
            self._running = False
            self.now = now
            self._events_processed = events
            if recorder is not None:
                base = int(start)
                recorder["queue"] = tuple(
                    (
                        t - base,
                        tuple(
                            (nid, value, pending[nid] == seq)
                            for seq, nid, value in buckets[t]
                        ),
                    )
                    for t in times
                )

    def _front_eligible(self, batch) -> bool:
        """True when the batched front path is exact for ``batch``.

        Requirements (see the proofs in :meth:`_front`): every entry on
        a driven net must be *tracked* (its sequence is the net's
        pending one — always true for gate/flip-flop pushes; an external
        stimulus aimed at a driven net forces the serial path), and no
        applied net may feed any gate more than once (the duplicate-
        occurrence push order is a serial-path artefact).
        """
        pending = self._pending
        driven = self._driven
        plans = self._plans_i
        for seq, nid, _value in batch:
            if driven[nid]:
                live = pending[nid]
                if live != seq and live != 0:
                    continue  # dead entry: skipped either way
                if live != seq:
                    return False  # untracked external on a driven net
            if plans[nid] is None:
                return False
        return True

    def _front(
        self, t, batch, stop_nid, stop_value, events,
        rec_changed, rec_trace, start,
    ):
        """Apply one same-timestamp front in a single batched pass.

        Pass A walks the batch in sequence order: supersession decisions,
        value commits, the trace tap, ones-count updates and flip-flop
        D-sampling are all order-sensitive and run serially (they are
        O(1) each).  Pass B then evaluates every *touched* gate exactly
        once against its final count and emits the surviving pushes in
        the order the serial kernel's supersession would leave behind —
        (last touching event, plan position) — which reproduces sequence
        numbering, and therefore future pop order, bit for bit.

        Exactness relies on the :meth:`_front_eligible` guards: with
        every driven-net entry tracked, an earlier touch of a net's
        driver implies the serial kernel *would* have pushed (its push
        condition ``pending or differs`` is automatically true while
        that entry is pending), so "driver touched earlier" is exactly
        the dead-entry rule, and only the *last* touch's push survives
        supersession.  A gate touched more than once is replayed over
        its recorded count sequence, so intermediate evaluations that
        arm (or fail to arm) the push chain are honoured.

        Returns ``(events, stopped, error)``; the caller syncs counters
        before raising ``error`` so the post-exception state matches the
        serial kernel's.
        """
        values = self._values
        pending = self._pending
        counts = self._counts
        watched = self._watched_flags
        trace = self.trace
        fan_counts = self._prog.fan_counts
        fan_dffs = self._prog.fan_dffs
        gate_output = self._prog.gate_output
        tts = self._prog.gate_tt
        gate_delays = self._gate_delays_i
        dff_d = self._prog.dff_d
        dff_q = self._prog.dff_q
        dff_delays = self._dff_delays_i
        driver_gate = self._driver_gate
        driver_dff = self._driver_dff
        net_names = self._prog.net_names
        max_events = self.max_events
        ft = float(t)
        rec_base = int(start)

        #: gate -> list of ones-counts after each touch (batch order).
        touch_counts: dict[int, list[int]] = {}
        #: gate -> (last touching batch index, 0, plan position).
        touch_order: dict[int, tuple[int, int, int]] = {}
        #: flip-flops that pushed during this front (their Q is dirty).
        pushed_dffs: set[int] = set()
        #: (order key, target nid, value, delay) for every surviving push.
        push_log: list[tuple[tuple[int, int, int], int, int, int]] = []

        stopped = False
        stop_index = len(batch)
        error = None
        for index, (eseq, nid, value) in enumerate(batch):
            events += 1
            if events > max_events:
                error = SimulationError(
                    f"event budget exceeded ({max_events}); "
                    f"oscillating feedback loop in {self.netlist.name!r}?"
                )
                stop_index = index
                break
            live = pending[nid]
            if live:
                if live != eseq:
                    continue  # superseded before this front began
                # Dead-entry rule: an earlier applied event touched this
                # net's driver, so the serial kernel's re-evaluation push
                # would have superseded this entry.
                g = driver_gate[nid]
                if g >= 0 and g in touch_counts:
                    continue
                f = driver_dff[nid]
                if f >= 0 and f in pushed_dffs:
                    continue
                pending[nid] = 0
            if values[nid] == value:
                continue
            values[nid] = value
            if rec_changed is not None:
                rec_changed[nid] = value
            if watched[nid]:
                trace.append(NetChange(ft, net_names[nid], value))
                if rec_trace is not None:
                    rec_trace.append((t - rec_base, nid, value))
            if value:
                for j, (g, mult) in enumerate(fan_counts[nid]):
                    c = counts[g] + mult
                    counts[g] = c
                    seen = touch_counts.get(g)
                    if seen is None:
                        touch_counts[g] = [c]
                    else:
                        seen.append(c)
                    touch_order[g] = (index, 0, j)
                for f in fan_dffs[nid]:
                    q_nid = dff_q[f]
                    sampled = values[dff_d[f]]
                    if pending[q_nid] or sampled != values[q_nid]:
                        push_log.append(
                            ((index, 1, f), q_nid, sampled, dff_delays[f])
                        )
                        pushed_dffs.add(f)
            else:
                for j, (g, mult) in enumerate(fan_counts[nid]):
                    c = counts[g] - mult
                    counts[g] = c
                    seen = touch_counts.get(g)
                    if seen is None:
                        touch_counts[g] = [c]
                    else:
                        seen.append(c)
                    touch_order[g] = (index, 0, j)
            if stop_nid >= 0 and values[stop_nid] == stop_value:
                stopped = True
                stop_index = index
                break

        # Pass B: evaluate each touched gate once.  Gates touched more
        # than once replay their count sequence — an intermediate
        # deviation arms the push chain, after which every later touch
        # pushes (superseding), so only the final value survives.
        single_gates: list[int] = []
        for g, counts_seen in touch_counts.items():
            if len(counts_seen) == 1:
                single_gates.append(g)
                continue
            out_nid = gate_output[g]
            table = tts[g]
            current = values[out_nid]
            armed = pending[out_nid] != 0
            out = current
            for c in counts_seen:
                out = table >> c & 1
                if not armed and out != current:
                    armed = True
            if armed:
                push_log.append(
                    (touch_order[g], out_nid, out, gate_delays[g])
                )

        if _np is not None and len(single_gates) >= FRONT_VECTOR_MIN:
            n = len(single_gates)
            tt_arr = _np.fromiter(
                (tts[g] for g in single_gates), dtype=_np.int64, count=n
            )
            cnt_arr = _np.fromiter(
                (touch_counts[g][0] for g in single_gates),
                dtype=_np.int64, count=n,
            )
            out_nids = _np.fromiter(
                (gate_output[g] for g in single_gates),
                dtype=_np.int64, count=n,
            )
            outs = (tt_arr >> cnt_arr) & 1
            cur = _np.fromiter(
                (values[nid] for nid in out_nids), dtype=_np.int64, count=n
            )
            pend = _np.fromiter(
                (pending[nid] for nid in out_nids), dtype=_np.int64, count=n
            )
            for k in _np.nonzero((pend != 0) | (outs != cur))[0]:
                g = single_gates[k]
                push_log.append(
                    (
                        touch_order[g], int(out_nids[k]), int(outs[k]),
                        gate_delays[g],
                    )
                )
        else:
            for g in single_gates:
                out_nid = gate_output[g]
                out = tts[g] >> touch_counts[g][0] & 1
                if pending[out_nid] or out != values[out_nid]:
                    push_log.append(
                        (touch_order[g], out_nid, out, gate_delays[g])
                    )

        # Emit surviving pushes in serial supersession order.
        push_log.sort(key=lambda item: item[0])
        for _order, out_nid, out, delay in push_log:
            self._bucket_push(t + delay, out_nid, out, True)

        if error is not None or stopped:
            rest = batch[stop_index + 1 :]
            if rest:
                self._buckets[t] = rest
                insort(self._times, t)
        return events, stopped, error
