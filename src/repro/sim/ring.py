"""The event-ring simulation kernel: batched fronts over tick time.

:class:`RingSimulator` is the third event kernel (after the seed
interpreter in :mod:`repro.sim._reference` and the compiled heap kernel
in :mod:`repro.sim.simulator`), selectable as ``--engine ring``.  It is
pinned trace-equivalent to both: identical
:class:`~repro.sim.simulator.NetChange` streams, values and simulation
times on every netlist and delay model (``events_processed``
intentionally differs, exactly as the compiled kernel's push-time
filtering already does).

Where the compiled kernel replaced *interpretation* costs (string keys,
virtual calls) with a flat integer program, the ring kernel replaces the
*event queue* itself for the delay regimes that allow it:

* **bucket-ring queue over negotiated ticks** — the resolved delay
  vector is put to :func:`~repro.sim.delays.negotiate_time_quantum`:
  every finite float is a dyadic rational, so when the vector's largest
  denominator is practical (``2**k``, ``k <= TICK_SHIFT_LIMIT``) every
  event time is an integer number of ``2**-k`` ticks and the heap
  becomes a sorted ring of tick buckets — scheduling is an append,
  popping is a batch take, and heap tie-break order is exactly bucket
  append order.  Scaling by a power of two is exact both ways, and all
  float time arithmetic on the grid is exact below the horizon
  ``2**(53 - k)``, so the tick kernel is bit-for-bit trace-equivalent
  to the float kernels — the built-in random sweep models
  (``loop-safe``/``skewed``/``hostile``/``corner``) draw on the
  :data:`~repro.sim.delays.TIME_GRID_BITS` grid precisely so their
  campaign cells ride this path (``path: ticks``; the all-integer case
  is ``path: ring``);
* **batched front evaluation** — a whole same-timestamp fanout front is
  applied in one pass: values and flip-flop samples are committed in
  sequence order, then each *touched* gate is evaluated **once** against
  its final ones-count (``tt >> count & 1``) instead of once per fanout
  edge, and the surviving pushes are emitted in exactly the order the
  serial kernel's supersession chain would leave behind.  Wide fronts
  hand the truth-table evaluation to numpy (a structured gather over the
  touched set); narrow fronts stay scalar — the crossover is
  :data:`FRONT_VECTOR_MIN`;
* **run-segment replay** — a FANTOM hand-shake revisits a small set of
  ``(net values, queued events, wait)`` situations over and over (the
  walk graph has few distinct edges).  In integer-time mode every
  ``run()`` call is a pure function of that situation, so completed
  segments are memoised on the compiled program (shared by every
  campaign cell over the same machine and delay vector) and replayed:
  values, counts, trace, queue and the clock advance in O(changes) with
  no event processing at all.

Vectors with no practical quantum (hand-annotated off-grid delays, or a
:class:`~repro.sim.delays.RandomDelay` built with ``grid_bits=None``)
run on a **calendar-queue bucket ring** (``path: calendar``) — Brown's
calendar queue: a wrapping slot wheel over exact float times with O(1)
amortised schedule and pop, replacing the binary heap in that regime
while reproducing its exact ``(time, sequence)`` total order.  An
off-grid external ``schedule()`` mid-session migrates a tick ring onto
the calendar the same way.  The only remaining use of the inherited
compiled heap loop is the documented quantum-overflow fallback
(``path: heap``): event times approaching the tick horizon migrate the
buckets into the heap and continue there, so the kernel is a drop-in
for arbitrary stimuli.

Every path transition is counted in :attr:`RingSimulator.kernel_stats`
(fronts, replays, migrations, current path) — the telemetry surfaced
through :class:`~repro.sim.monitors.ValidationSummary` and
``seance validate --json`` so a silent fast-path loss is visible.

numpy is optional: without it the front path evaluates scalar-wise and
everything else is pure python (see the ``REPRO_SIM_ENGINE`` fallback in
:mod:`repro.sim.campaign`).
"""

from __future__ import annotations

import heapq
from bisect import insort

from ..errors import SimulationError
from .delays import TICK_SHIFT_LIMIT, negotiate_time_quantum
from .simulator import (
    NetChange,
    Simulator,
    plan_cache_get,
    plan_cache_put,
)

try:  # numpy is a declared dependency, but the kernel degrades gracefully
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Buckets at least this large take the batched front path.
FRONT_MIN = 6
#: Touched-gate sets at least this large are evaluated with numpy.
FRONT_VECTOR_MIN = 32

_INF = float("inf")


class _CalendarIndex:
    """Ascending multiplexer over distinct event times (floats).

    Brown's calendar queue, reduced to what the bucket loop needs: the
    bucket *dict* groups same-time entries, this index yields the
    distinct times in ascending order.  A time belongs to absolute slot
    ``int(t / width)`` (its physical slot is that modulo ``nslots``);
    float division is monotone, so smaller absolute slots hold strictly
    smaller times and the minimum always lives in the lowest non-empty
    absolute slot — placement and lookup use the same computation, so
    sub-ULP boundary rounding cannot reorder anything.  ``add`` is an
    insort into a short slot list, ``peek`` resumes the cursor scan, and
    a fruitless full wrap jumps the cursor straight to the next
    occupied year (far-future events cost one O(nslots) scan, not one
    lap per empty year).
    """

    __slots__ = ("width", "nslots", "wheel", "count", "pos")

    def __init__(self, width: float = 1.0, nslots: int = 64):
        self.width = width
        self.nslots = nslots
        self.wheel: list[list[float]] = [[] for _ in range(nslots)]
        self.count = 0
        #: absolute slot number of the search cursor; invariant: no
        #: stored time has a smaller absolute slot.
        self.pos = 0

    def add(self, t: float) -> None:
        a = int(t / self.width)
        insort(self.wheel[a % self.nslots], t)
        self.count += 1
        if a < self.pos:
            self.pos = a
        if self.count > 4 * self.nslots:
            self._grow()

    def _grow(self) -> None:
        times = [t for slot in self.wheel for t in slot]
        pos = self.pos
        self.nslots *= 2
        self.wheel = [[] for _ in range(self.nslots)]
        self.count = 0
        for t in times:
            self.add(t)
        self.pos = pos

    def peek(self) -> float:
        """The smallest stored time (cursor advances, nothing removed)."""
        wheel = self.wheel
        nslots = self.nslots
        width = self.width
        pos = self.pos
        scanned = 0
        while True:
            slot = wheel[pos % nslots]
            if slot and int(slot[0] / width) == pos:
                self.pos = pos
                return slot[0]
            pos += 1
            scanned += 1
            if scanned >= nslots:
                # A whole year is empty: jump to the next occupied one.
                pos = min(
                    int(slot[0] / width) for slot in wheel if slot
                )
                scanned = 0

    def remove(self, t: float) -> None:
        slot = self.wheel[int(t / self.width) % self.nslots]
        slot.remove(t)
        self.count -= 1

    def times(self) -> list[float]:
        """All stored times, ascending (inspection paths only)."""
        return sorted(t for slot in self.wheel for t in slot)


class _Segment:
    """One memoised run segment (see module docs)."""

    __slots__ = (
        "events", "end_dt", "exit_values", "exit_counts", "trace", "queue",
        "fronts", "front_events", "next",
    )

    def __init__(self, events, end_dt, exit_values, exit_counts, trace,
                 queue, fronts=0, front_events=0):
        self.events = events
        self.end_dt = end_dt
        #: fronts fired while this segment was recorded; replays re-count
        #: them so the telemetry totals match an all-live run no matter
        #: how warm the cache was (the store's byte-identity contract).
        self.fronts = fronts
        self.front_events = front_events
        #: successor edges: (externals signature, run args) -> _Segment.
        #: The post-replay state is exact, so the next ``run()``'s full
        #: key is a function of this segment, the externally scheduled
        #: events since, and the call's arguments — steady-state walks
        #: chain segment to segment without rebuilding keys at all.
        self.next: dict = {}
        #: Complete post-run net values.  The entry values are part of
        #: the segment key, so the exit state is fixed — storing it whole
        #: lets a replay restore it with one C-level slice copy instead
        #: of a Python loop over per-net deltas.
        self.exit_values = exit_values
        #: Complete post-run per-gate ones-counts (derived from values,
        #: hence equally fixed per segment).
        self.exit_counts = exit_counts
        #: ((dt, nid, value), ...) watched changes, in apply order.
        self.trace = trace
        #: ((dt, ((nid, value, tracked), ...)), ...) the queue left
        #: behind, grouped per bucket, dts ascending, entries pop order.
        self.queue = queue


class RingSimulator(Simulator):
    """Event-driven simulation on the bucket-ring kernel.

    Construction, driving surface and observable behaviour are identical
    to :class:`~repro.sim.simulator.Simulator`; only the execution
    strategy differs (and only when every resolved delay is integral).
    """

    def __init__(
        self,
        netlist,
        delays=None,
        initial_values=None,
        max_events: int = 200_000,
        inertial: bool = True,
    ):
        super().__init__(
            netlist,
            delays=delays,
            initial_values=initial_values,
            max_events=max_events,
            inertial=inertial,
        )
        # The compiled kernel's generated closures, kept as the engine
        # for post-migration (quantum overflow) operation.
        self._heap_run = self.run
        self._heap_schedule = self.schedule
        self._running = False
        self._calendar = False

        gate_delays = self._gate_delays
        dff_delays = self._dff_delays
        shift = negotiate_time_quantum(
            [*gate_delays, *dff_delays], limit=TICK_SHIFT_LIMIT
        )
        #: Kernel telemetry: current engine path, the negotiated tick
        #: shift, batched-front and segment-replay counts, and any path
        #: migrations (reason -> count).  Everything here is
        #: deterministic for a deterministic workload.
        self.kernel_stats = {
            "path": "heap",
            "shift": 0 if shift is None else shift,
            "fronts": 0,
            "front_events": 0,
            "replays": 0,
            "replayed_events": 0,
            "migrations": {},
        }
        if shift is None:
            # No practical common quantum: the calendar-queue regime.
            self._ring = False
            self._init_calendar()
            return

        self._ring = True
        self._shift = shift
        #: tick <-> time scaling; powers of two, so both conversions are
        #: exact for every representable value below the horizon.
        self._up = float(1 << shift)
        self._down = 1.0 / self._up
        self.kernel_stats["path"] = "ring" if shift == 0 else "ticks"

        prog = self._prog
        plan_key = (tuple(gate_delays), tuple(dff_delays))
        self._plan_key = plan_key

        ring_key = ("ring-plans", plan_key)
        cached = plan_cache_get(prog.plan_cache, ring_key)
        if cached is None:
            up = self._up
            plans_i = [
                None
                if plan is None
                else tuple(
                    (g, out_nid, int(delay * up), table)
                    for g, out_nid, delay, table in plan
                )
                for plan in self._plans
            ]
            dff_plans_i = [
                tuple((d, q, int(delay * up)) for d, q, delay in fans)
                for fans in self._dff_plans
            ]
            gate_delays_i = [int(d * up) for d in gate_delays]
            dff_delays_i = [int(d * up) for d in dff_delays]
            num_nets = prog.num_nets
            driver_gate = [-1] * num_nets
            for g, out in enumerate(prog.gate_output):
                driver_gate[out] = g
            driver_dff = [-1] * num_nets
            for f, q in enumerate(prog.dff_q):
                driver_dff[q] = f
            driven = [
                driver_gate[n] >= 0 or driver_dff[n] >= 0
                for n in range(num_nets)
            ]
            cached = (
                plans_i, dff_plans_i, gate_delays_i, dff_delays_i,
                driver_gate, driver_dff, driven,
            )
            plan_cache_put(prog.plan_cache, ring_key, cached)
        (
            self._plans_i, self._dff_plans_i, self._gate_delays_i,
            self._dff_delays_i, self._driver_gate, self._driver_dff,
            self._driven,
        ) = cached

        # Exactness horizon: every tick must stay below 2**53 for the
        # tick<->float conversions (and the float kernels' arithmetic)
        # to be exact.  The guard is conservative — one run can extend
        # the queue by at most the remaining event budget times the
        # largest delay, so checking at run/schedule entry suffices.
        max_delay = max(self._gate_delays_i + self._dff_delays_i, default=1)
        self._tick_safe = float(
            2**53 - (max_events + 2) * (max_delay + 1)
        )

        #: sorted distinct integer event tick times (the ring index).
        self._times: list[int] = []
        #: time -> [(seq, nid, value), ...] in push (= pop tie-break) order.
        self._buckets: dict[int, list[tuple[int, int, int]]] = {}
        #: a replayed-but-unmaterialised queue: ``(segment, base_time)``.
        #: In steady chained replay each segment's end queue is replaced
        #: by its successor's before anything reads it, so :meth:`_replay`
        #: only stores this stub and :meth:`_materialise_queue` rebuilds
        #: ``_times``/``_buckets`` (and the tracked ``_pending`` entries)
        #: on first genuine access.  Invariant: when the stub is set, the
        #: containers are empty and no pending entries of its events
        #: exist yet.
        self._queue_stub: tuple[_Segment, int] | None = None
        #: external pushes made while a stub is pending, in push order as
        #: ``(time, nid, value)``; merged (after the stub's own events,
        #: matching their later sequence numbers) on materialisation.
        #: Invariant: non-empty only while ``_queue_stub`` is set.
        self._stub_extras: list[tuple[int, int, int]] = []
        self._segments: dict | None = None
        self._running = False
        #: externally scheduled events since the last anchored run
        #: (absolute int time, nid, value) — the successor-edge signature.
        self._ext_log: list[tuple[int, int, int]] = []
        #: the segment whose replay (or recording) produced the current
        #: state, when nothing but logged externals touched it since.
        self._last_segment: _Segment | None = None

        self.run = self._ring_run
        self.schedule = self._ring_schedule

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def watch(self, *nets: str) -> None:
        super().watch(*nets)
        # The watched set is part of a segment's observable output.
        self._segments = None
        self._last_segment = None

    def _materialise_queue(self) -> None:
        """Rebuild ``_times``/``_buckets`` from a pending replay stub."""
        stub = self._queue_stub
        if stub is None:
            return
        self._queue_stub = None
        segment, base = stub
        pending = self._pending
        seq = self._sequence
        times = self._times
        buckets = self._buckets
        for dt, entries in segment.queue:
            t = base + dt
            times.append(t)
            bucket = []
            for nid, value, tracked in entries:
                seq += 1
                if tracked:
                    pending[nid] = seq
                bucket.append((seq, nid, value))
            buckets[t] = bucket
        self._sequence = seq
        extras = self._stub_extras
        if extras:
            for t, nid, value in extras:
                self._bucket_push(t, nid, value, tracked=False)
            extras.clear()

    def _ring_schedule(self, net: str, value: int, at: float) -> None:
        if at < self.now:
            raise SimulationError(
                f"cannot schedule {net} at {at} before now ({self.now})"
            )
        nid = self._ids.get(net)
        if nid is None:
            raise SimulationError(f"unknown net {net!r}")
        scaled = at * self._up
        if scaled >= self._tick_safe:
            # Quantum overflow: ticks would leave the exactness horizon.
            # The documented fallback — migrate into the legacy heap.
            if self._running:
                raise SimulationError(
                    "cannot schedule an event beyond the tick horizon "
                    "from a stop_when callback while the ring loop is "
                    "running"
                )
            self._migrate_to_heap("overflow")
            self._heap_schedule(net, value, at)
            return
        if not scaled.is_integer():
            # An off-grid stimulus ends tick time: migrate the buckets
            # onto the calendar queue and continue there.
            if self._running:
                raise SimulationError(
                    "cannot schedule an off-grid event from a "
                    "stop_when callback while the ring loop is running"
                )
            self._migrate_to_calendar("off-grid-stimulus")
            self.schedule(net, value, at)
            return
        t = int(scaled)
        v = 1 if value else 0
        self._ext_log.append((t, nid, v))
        if self._queue_stub is not None:
            # Keep the stub lazy: buffer the push, merge on materialise.
            self._stub_extras.append((t, nid, v))
        else:
            self._bucket_push(t, nid, v, tracked=False)

    def _bucket_push(
        self, t: int, nid: int, value: int, tracked: bool
    ) -> None:
        self._sequence = seq = self._sequence + 1
        if tracked:
            self._pending[nid] = seq
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [(seq, nid, value)]
            insort(self._times, t)
        else:
            bucket.append((seq, nid, value))

    def _migrate_to_heap(self, reason: str) -> None:
        """Convert the buckets into the inherited heap, preserving order."""
        self._materialise_queue()
        queue = self._queue
        down = self._down
        for t in self._times:
            ft = t * down
            for seq, nid, value in self._buckets[t]:
                heapq.heappush(queue, (ft, seq, nid, value))
        self._times = []
        self._buckets = {}
        self._ring = False
        self._last_segment = None
        stats = self.kernel_stats
        stats["path"] = "heap"
        migrations = stats["migrations"]
        migrations[reason] = migrations.get(reason, 0) + 1
        self.run = self._heap_run
        self.schedule = self._heap_schedule

    def _migrate_to_calendar(self, reason: str) -> None:
        """Move the tick buckets onto the calendar queue, order intact.

        Sequence numbers and pending entries survive untouched — only
        the time representation changes (exact tick -> float), so the
        pop order, supersession decisions and traces are unaffected.
        """
        self._materialise_queue()
        down = self._down
        times, buckets = self._times, self._buckets
        self._times = []
        self._buckets = {}
        self._ring = False
        self._last_segment = None
        self._init_calendar()
        cal_buckets = self._cal_buckets
        index = self._cal_index
        for t in times:
            ft = t * down
            cal_buckets[ft] = list(buckets[t])
            index.add(ft)
        stats = self.kernel_stats
        stats["path"] = "calendar"
        migrations = stats["migrations"]
        migrations[reason] = migrations.get(reason, 0) + 1

    # ------------------------------------------------------------------
    # Queue inspection (the base class reads self._queue directly)
    # ------------------------------------------------------------------
    def has_live_events(self) -> bool:
        if self._calendar:
            pending = self._pending
            inertial = self.inertial
            for bucket in self._cal_buckets.values():
                for seq, nid, _value in bucket:
                    if inertial:
                        live = pending[nid]
                        if live and live != seq:
                            continue
                    return True
            return False
        if not self._ring:
            return super().has_live_events()
        self._materialise_queue()
        pending = self._pending
        inertial = self.inertial
        for t in self._times:
            for seq, nid, _value in self._buckets[t]:
                if inertial:
                    live = pending[nid]
                    if live and live != seq:
                        continue
                return True
        return False

    def pending_events(self) -> int:
        if self._calendar:
            return sum(len(b) for b in self._cal_buckets.values())
        if not self._ring:
            return super().pending_events()
        self._materialise_queue()
        return sum(len(self._buckets[t]) for t in self._times)

    def run_until_quiet(self, timeout: float) -> float:
        deadline = self.now + timeout
        if self._calendar:
            empty = not self._cal_index.count
        elif self._ring:
            # A replay stub is only stored for a non-empty end queue.
            empty = not self._times and self._queue_stub is None
        else:
            empty = not self._queue
        if empty:  # already quiet: just advance time
            self.now = deadline
            return deadline
        reached = self.run(until=deadline)
        if self.has_live_events():
            raise SimulationError(
                f"netlist {self.netlist.name!r} did not quiesce within "
                f"{timeout} time units"
            )
        return reached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _ring_run(
        self,
        until=None,
        stop_when=None,
        stop_net=None,
        stop_value=1,
    ) -> float:
        if self._calendar:
            return self._calendar_run(until, stop_when, stop_net, stop_value)
        if not self._ring:
            return self._heap_run(until, stop_when, stop_net, stop_value)
        now = self.now
        scaled = now * self._up
        if scaled >= self._tick_safe:
            # Quantum overflow: the next run could push ticks past the
            # exactness horizon — take the documented heap fallback.
            self._migrate_to_heap("overflow")
            return self._heap_run(until, stop_when, stop_net, stop_value)
        values = self._values
        stop_nid = -1
        if stop_net is not None:
            stop_nid = self._ids.get(stop_net, -1)
            if stop_nid < 0:
                raise SimulationError(f"unknown net {stop_net!r}")
            if values[stop_nid] == stop_value:
                return self.now
        base = int(scaled)
        if stop_when is not None or base != scaled:
            # Callbacks may inspect or schedule arbitrarily, and an
            # off-grid ``now`` makes the horizon offset ambiguous
            # relative to the tick bucket times: run live, unmemoised.
            self._last_segment = None
            return self._ring_loop(
                until, stop_when, stop_nid, stop_value, None
            )

        until_dt = None if until is None else until - now

        # Successor chaining: the state is the last segment's exact
        # output plus the logged externals, so the full key is already
        # determined — follow the cached edge without rebuilding it.
        last = self._last_segment
        self._last_segment = None
        edge = None
        if last is not None:
            log = self._ext_log
            edge = (
                tuple((t - base, nid, v) for t, nid, v in log)
                if log
                else (),
                until_dt, stop_nid, stop_value,
            )
            nxt = last.next.get(edge)
            if (
                nxt is not None
                and self._events_processed + nxt.events <= self.max_events
            ):
                self._ext_log.clear()
                self._last_segment = nxt
                return self._replay(nxt)
        self._ext_log.clear()

        segments = self._segment_cache()
        self._materialise_queue()
        pending = self._pending
        qsig = tuple(
            (
                t - base,
                tuple(
                    (nid, value, pending[nid] == seq)
                    for seq, nid, value in self._buckets[t]
                ),
            )
            for t in self._times
        )
        key = (tuple(values), qsig, until_dt, stop_nid, stop_value)
        segment = segments.get(key)
        if (
            segment is not None
            and self._events_processed + segment.events <= self.max_events
        ):
            if edge is not None:
                last.next[edge] = segment
            self._last_segment = segment
            return self._replay(segment)

        # Live run, recorded.  A raising segment (budget exhaustion, a
        # quiesce failure upstream) is never cached: the exception
        # propagates before the cache write, so every revisit runs it
        # fresh and raises at the same point.
        events_before = self._events_processed
        stats = self.kernel_stats
        fronts_before = stats["fronts"]
        front_events_before = stats["front_events"]
        recorder = {"changed": {}, "trace": [], "queue": ()}
        result = self._ring_loop(until, None, stop_nid, stop_value, recorder)
        segments[key] = segment = _Segment(
            events=self._events_processed - events_before,
            end_dt=self.now - now,
            exit_values=list(values),
            exit_counts=list(self._counts),
            trace=tuple(recorder["trace"]),
            queue=recorder["queue"],
            fronts=stats["fronts"] - fronts_before,
            front_events=stats["front_events"] - front_events_before,
        )
        if edge is not None:
            last.next[edge] = segment
        self._last_segment = segment
        return result

    def _segment_cache(self) -> dict:
        cache = self._segments
        if cache is None:
            root_key = (
                "ring-segments",
                self._plan_key,
                self.inertial,
                frozenset(
                    nid
                    for nid, flag in enumerate(self._watched_flags)
                    if flag
                ),
            )
            cache = plan_cache_get(self._prog.plan_cache, root_key)
            if cache is None:
                cache = {}
                plan_cache_put(self._prog.plan_cache, root_key, cache)
            self._segments = cache
        return cache

    def _replay(self, segment: _Segment) -> float:
        pending = self._pending
        now = self.now
        stats = self.kernel_stats
        stats["replays"] += 1
        stats["replayed_events"] += segment.events
        if segment.fronts:
            stats["fronts"] += segment.fronts
            stats["front_events"] += segment.front_events
        # Slice-assign so the list identities survive (values_reader
        # closures and the base class hold references to these lists).
        self._values[:] = segment.exit_values
        self._counts[:] = segment.exit_counts
        if segment.trace:
            names = self._prog.net_names
            trace = self.trace
            down = self._down
            for dt, nid, value in segment.trace:
                trace.append(NetChange(now + dt * down, names[nid], value))
        # The replayed-from state had exactly the keyed queue; discard it.
        # An unmaterialised stub never wrote its pending entries, so only
        # a materialised queue needs them cleared (buffered external
        # pushes were untracked and die with the stub).
        if self._queue_stub is not None:
            self._queue_stub = None
            if self._stub_extras:
                self._stub_extras.clear()
        elif self._times:
            for t in self._times:
                for seq, nid, _value in self._buckets[t]:
                    if pending[nid] == seq:
                        pending[nid] = 0
            self._times = []
            self._buckets = {}
        # The recorded end queue replaces it — lazily.  In steady chained
        # replay the successor's replay discards it unread, so the
        # per-event rebuild (fresh sequence numbers, pending writes) is
        # deferred to :meth:`_materialise_queue` and usually never runs.
        if segment.queue:
            self._queue_stub = (segment, int(now * self._up))
        self._events_processed += segment.events
        self.now = now + segment.end_dt
        return self.now

    # ------------------------------------------------------------------
    def _ring_loop(
        self, until, stop_when, stop_nid, stop_value, recorder
    ) -> float:
        """The live bucket loop (records into ``recorder`` when given)."""
        self._materialise_queue()
        times = self._times
        buckets = self._buckets
        values = self._values
        pending = self._pending
        counts = self._counts
        watched = self._watched_flags
        trace = self.trace
        plans = self._plans_i
        dff_plans = self._dff_plans_i
        fan_counts = self._prog.fan_counts
        fan_gates = self._prog.fan_gates
        gate_output = self._prog.gate_output
        tts = self._prog.gate_tt
        gate_delays = self._gate_delays_i
        net_names = self._prog.net_names
        inertial = self.inertial
        max_events = self.max_events
        up = self._up
        down = self._down
        deadline = _INF if until is None else until * up
        events = self._events_processed
        now = self.now
        start = now
        rec_base = 0
        if recorder is not None:
            rec_changed = recorder["changed"]
            rec_trace = recorder["trace"]
            rec_base = int(start * up)
        else:
            rec_changed = rec_trace = None
        stats = self.kernel_stats
        front_ok = inertial and stop_when is None
        self._running = True
        try:
            while times:
                t = times[0]
                if t > deadline:
                    now = until
                    return now
                batch = buckets[t]
                ft = t * down
                if (
                    front_ok
                    and len(batch) >= FRONT_MIN
                    and self._front_eligible(batch)
                ):
                    del buckets[t]
                    times.pop(0)
                    now = ft
                    stats["fronts"] += 1
                    stats["front_events"] += len(batch)
                    events, stopped, error = self._front(
                        t, batch, stop_nid, stop_value, events,
                        rec_changed, rec_trace, rec_base,
                    )
                    if error is not None:
                        raise error
                    if stopped:
                        return now
                    continue
                index = 0
                stop_here = False
                # Index loop: a stop_when callback may schedule into the
                # current instant, growing this bucket (heap order puts
                # such events after the existing ones, as append does).
                while index < len(batch):
                    eseq, nid, value = batch[index]
                    index += 1
                    events += 1
                    if events > max_events:
                        now = ft
                        rest = batch[index:]
                        if rest:
                            buckets[t] = rest
                        else:
                            del buckets[t]
                            times.pop(0)
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            f"oscillating feedback loop in "
                            f"{self.netlist.name!r}?"
                        )
                    now = ft
                    live = pending[nid]
                    if live:
                        if inertial and live != eseq:
                            continue  # superseded by a re-evaluation
                        if live == eseq:
                            pending[nid] = 0
                    if values[nid] == value:
                        continue
                    values[nid] = value
                    if rec_changed is not None:
                        rec_changed[nid] = value
                    if watched[nid]:
                        trace.append(NetChange(ft, net_names[nid], value))
                        if rec_trace is not None:
                            rec_trace.append((t - rec_base, nid, value))
                    plan = plans[nid]
                    if plan is None:
                        if value:
                            for g, mult in fan_counts[nid]:
                                counts[g] += mult
                        else:
                            for g, mult in fan_counts[nid]:
                                counts[g] -= mult
                        for g in fan_gates[nid]:
                            out_nid = gate_output[g]
                            out = tts[g] >> counts[g] & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + gate_delays[g], out_nid, out, True
                                )
                    elif value:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] + 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + delay, out_nid, out, True
                                )
                    else:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] - 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                self._bucket_push(
                                    t + delay, out_nid, out, True
                                )
                    if value == 1:
                        for d_nid, q_nid, delay in dff_plans[nid]:
                            sampled = values[d_nid]
                            if pending[q_nid] or sampled != values[q_nid]:
                                self._bucket_push(
                                    t + delay, q_nid, sampled, True
                                )
                    if stop_nid >= 0 and values[stop_nid] == stop_value:
                        stop_here = True
                        break
                    if stop_when is not None:
                        self.now = now
                        self._events_processed = events
                        if stop_when(self):
                            stop_here = True
                            break
                rest = batch[index:]
                if rest:
                    buckets[t] = rest
                else:
                    del buckets[t]
                    times.pop(0)
                if stop_here:
                    return now
            if until is not None and until > now:
                now = until
            return now
        finally:
            self._running = False
            self.now = now
            self._events_processed = events
            if recorder is not None:
                recorder["queue"] = tuple(
                    (
                        t - rec_base,
                        tuple(
                            (nid, value, pending[nid] == seq)
                            for seq, nid, value in buckets[t]
                        ),
                    )
                    for t in times
                )

    def _front_eligible(self, batch) -> bool:
        """True when the batched front path is exact for ``batch``.

        Requirements (see the proofs in :meth:`_front`): every entry on
        a driven net must be *tracked* (its sequence is the net's
        pending one — always true for gate/flip-flop pushes; an external
        stimulus aimed at a driven net forces the serial path), and no
        applied net may feed any gate more than once (the duplicate-
        occurrence push order is a serial-path artefact).
        """
        pending = self._pending
        driven = self._driven
        plans = self._plans_i
        for seq, nid, _value in batch:
            if driven[nid]:
                live = pending[nid]
                if live != seq and live != 0:
                    continue  # dead entry: skipped either way
                if live != seq:
                    return False  # untracked external on a driven net
            if plans[nid] is None:
                return False
        return True

    def _front(
        self, t, batch, stop_nid, stop_value, events,
        rec_changed, rec_trace, rec_base,
    ):
        """Apply one same-timestamp front in a single batched pass.

        Pass A walks the batch in sequence order: supersession decisions,
        value commits, the trace tap, ones-count updates and flip-flop
        D-sampling are all order-sensitive and run serially (they are
        O(1) each).  Pass B then evaluates every *touched* gate exactly
        once against its final count and emits the surviving pushes in
        the order the serial kernel's supersession would leave behind —
        (last touching event, plan position) — which reproduces sequence
        numbering, and therefore future pop order, bit for bit.

        Exactness relies on the :meth:`_front_eligible` guards: with
        every driven-net entry tracked, an earlier touch of a net's
        driver implies the serial kernel *would* have pushed (its push
        condition ``pending or differs`` is automatically true while
        that entry is pending), so "driver touched earlier" is exactly
        the dead-entry rule, and only the *last* touch's push survives
        supersession.  A gate touched more than once is replayed over
        its recorded count sequence, so intermediate evaluations that
        arm (or fail to arm) the push chain are honoured.

        Returns ``(events, stopped, error)``; the caller syncs counters
        before raising ``error`` so the post-exception state matches the
        serial kernel's.
        """
        values = self._values
        pending = self._pending
        counts = self._counts
        watched = self._watched_flags
        trace = self.trace
        fan_counts = self._prog.fan_counts
        fan_dffs = self._prog.fan_dffs
        gate_output = self._prog.gate_output
        tts = self._prog.gate_tt
        gate_delays = self._gate_delays_i
        dff_d = self._prog.dff_d
        dff_q = self._prog.dff_q
        dff_delays = self._dff_delays_i
        driver_gate = self._driver_gate
        driver_dff = self._driver_dff
        net_names = self._prog.net_names
        max_events = self.max_events
        ft = t * self._down

        #: gate -> list of ones-counts after each touch (batch order).
        touch_counts: dict[int, list[int]] = {}
        #: gate -> (last touching batch index, 0, plan position).
        touch_order: dict[int, tuple[int, int, int]] = {}
        #: flip-flops that pushed during this front (their Q is dirty).
        pushed_dffs: set[int] = set()
        #: (order key, target nid, value, delay) for every surviving push.
        push_log: list[tuple[tuple[int, int, int], int, int, int]] = []

        stopped = False
        stop_index = len(batch)
        error = None
        for index, (eseq, nid, value) in enumerate(batch):
            events += 1
            if events > max_events:
                error = SimulationError(
                    f"event budget exceeded ({max_events}); "
                    f"oscillating feedback loop in {self.netlist.name!r}?"
                )
                stop_index = index
                break
            live = pending[nid]
            if live:
                if live != eseq:
                    continue  # superseded before this front began
                # Dead-entry rule: an earlier applied event touched this
                # net's driver, so the serial kernel's re-evaluation push
                # would have superseded this entry.
                g = driver_gate[nid]
                if g >= 0 and g in touch_counts:
                    continue
                f = driver_dff[nid]
                if f >= 0 and f in pushed_dffs:
                    continue
                pending[nid] = 0
            if values[nid] == value:
                continue
            values[nid] = value
            if rec_changed is not None:
                rec_changed[nid] = value
            if watched[nid]:
                trace.append(NetChange(ft, net_names[nid], value))
                if rec_trace is not None:
                    rec_trace.append((t - rec_base, nid, value))
            if value:
                for j, (g, mult) in enumerate(fan_counts[nid]):
                    c = counts[g] + mult
                    counts[g] = c
                    seen = touch_counts.get(g)
                    if seen is None:
                        touch_counts[g] = [c]
                    else:
                        seen.append(c)
                    touch_order[g] = (index, 0, j)
                for f in fan_dffs[nid]:
                    q_nid = dff_q[f]
                    sampled = values[dff_d[f]]
                    if pending[q_nid] or sampled != values[q_nid]:
                        push_log.append(
                            ((index, 1, f), q_nid, sampled, dff_delays[f])
                        )
                        pushed_dffs.add(f)
            else:
                for j, (g, mult) in enumerate(fan_counts[nid]):
                    c = counts[g] - mult
                    counts[g] = c
                    seen = touch_counts.get(g)
                    if seen is None:
                        touch_counts[g] = [c]
                    else:
                        seen.append(c)
                    touch_order[g] = (index, 0, j)
            if stop_nid >= 0 and values[stop_nid] == stop_value:
                stopped = True
                stop_index = index
                break

        # Pass B: evaluate each touched gate once.  Gates touched more
        # than once replay their count sequence — an intermediate
        # deviation arms the push chain, after which every later touch
        # pushes (superseding), so only the final value survives.
        single_gates: list[int] = []
        for g, counts_seen in touch_counts.items():
            if len(counts_seen) == 1:
                single_gates.append(g)
                continue
            out_nid = gate_output[g]
            table = tts[g]
            current = values[out_nid]
            armed = pending[out_nid] != 0
            out = current
            for c in counts_seen:
                out = table >> c & 1
                if not armed and out != current:
                    armed = True
            if armed:
                push_log.append(
                    (touch_order[g], out_nid, out, gate_delays[g])
                )

        if _np is not None and len(single_gates) >= FRONT_VECTOR_MIN:
            n = len(single_gates)
            tt_arr = _np.fromiter(
                (tts[g] for g in single_gates), dtype=_np.int64, count=n
            )
            cnt_arr = _np.fromiter(
                (touch_counts[g][0] for g in single_gates),
                dtype=_np.int64, count=n,
            )
            out_nids = _np.fromiter(
                (gate_output[g] for g in single_gates),
                dtype=_np.int64, count=n,
            )
            outs = (tt_arr >> cnt_arr) & 1
            cur = _np.fromiter(
                (values[nid] for nid in out_nids), dtype=_np.int64, count=n
            )
            pend = _np.fromiter(
                (pending[nid] for nid in out_nids), dtype=_np.int64, count=n
            )
            for k in _np.nonzero((pend != 0) | (outs != cur))[0]:
                g = single_gates[k]
                push_log.append(
                    (
                        touch_order[g], int(out_nids[k]), int(outs[k]),
                        gate_delays[g],
                    )
                )
        else:
            for g in single_gates:
                out_nid = gate_output[g]
                out = tts[g] >> touch_counts[g][0] & 1
                if pending[out_nid] or out != values[out_nid]:
                    push_log.append(
                        (touch_order[g], out_nid, out, gate_delays[g])
                    )

        # Emit surviving pushes in serial supersession order.
        push_log.sort(key=lambda item: item[0])
        for _order, out_nid, out, delay in push_log:
            self._bucket_push(t + delay, out_nid, out, True)

        if error is not None or stopped:
            rest = batch[stop_index + 1 :]
            if rest:
                self._buckets[t] = rest
                insort(self._times, t)
        return events, stopped, error

    # ------------------------------------------------------------------
    # Calendar-queue mode (vectors with no practical tick quantum)
    # ------------------------------------------------------------------
    def _init_calendar(self) -> None:
        """Switch the driving surface onto the calendar-queue loop.

        Same bucket semantics as the tick ring — a dict groups same-time
        entries in push order, the index yields distinct times ascending
        — but keyed on exact float times, so any delay vector runs here.
        Segments and fronts stay off: without a shared quantum the
        relative-time rebasing they rely on is not exact, and measured
        same-timestamp fronts are of size 1–2 anyway.
        """
        self._calendar = True
        self.kernel_stats["path"] = "calendar"
        #: time -> [(seq, nid, value), ...] in push (= pop) order.
        self._cal_buckets: dict[float, list[tuple[int, int, int]]] = {}
        self._cal_index = _CalendarIndex()
        self.run = self._calendar_run
        self.schedule = self._calendar_schedule

    def _calendar_schedule(self, net: str, value: int, at: float) -> None:
        if at < self.now:
            raise SimulationError(
                f"cannot schedule {net} at {at} before now ({self.now})"
            )
        nid = self._ids.get(net)
        if nid is None:
            raise SimulationError(f"unknown net {net!r}")
        self._cal_push(float(at), nid, 1 if value else 0, tracked=False)

    def _cal_push(
        self, t: float, nid: int, value: int, tracked: bool
    ) -> None:
        self._sequence = seq = self._sequence + 1
        if tracked:
            self._pending[nid] = seq
        bucket = self._cal_buckets.get(t)
        if bucket is None:
            self._cal_buckets[t] = [(seq, nid, value)]
            self._cal_index.add(t)
        else:
            bucket.append((seq, nid, value))

    def _calendar_run(
        self,
        until=None,
        stop_when=None,
        stop_net=None,
        stop_value=1,
    ) -> float:
        """The serial bucket loop over the calendar index.

        Event application is the compiled heap loop verbatim (same
        supersession, push filtering and plan walks, on the same float
        delays), so the two orderings coincide exactly: the calendar
        yields times ascending and buckets preserve sequence order —
        the heap's ``(time, seq)`` total order.
        """
        values = self._values
        stop_nid = -1
        if stop_net is not None:
            stop_nid = self._ids.get(stop_net, -1)
            if stop_nid < 0:
                raise SimulationError(f"unknown net {stop_net!r}")
            if values[stop_nid] == stop_value:
                return self.now
        index_q = self._cal_index
        buckets = self._cal_buckets
        pending = self._pending
        counts = self._counts
        watched = self._watched_flags
        trace = self.trace
        plans = self._plans
        dff_plans = self._dff_plans
        fan_counts = self._prog.fan_counts
        fan_gates = self._prog.fan_gates
        gate_output = self._prog.gate_output
        tts = self._prog.gate_tt
        gate_delays = self._gate_delays
        net_names = self._prog.net_names
        inertial = self.inertial
        max_events = self.max_events
        cal_push = self._cal_push
        deadline = _INF if until is None else until
        events = self._events_processed
        now = self.now
        self._running = True
        try:
            while index_q.count:
                t = index_q.peek()
                if t > deadline:
                    now = until
                    return now
                batch = buckets[t]
                index = 0
                stop_here = False
                # Index loop: a stop_when callback may schedule into the
                # current instant, growing this bucket (heap order puts
                # such events after the existing ones, as append does).
                while index < len(batch):
                    eseq, nid, value = batch[index]
                    index += 1
                    events += 1
                    if events > max_events:
                        now = t
                        rest = batch[index:]
                        if rest:
                            buckets[t] = rest
                        else:
                            del buckets[t]
                            index_q.remove(t)
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            f"oscillating feedback loop in "
                            f"{self.netlist.name!r}?"
                        )
                    now = t
                    live = pending[nid]
                    if live:
                        if inertial and live != eseq:
                            continue  # superseded by a re-evaluation
                        if live == eseq:
                            pending[nid] = 0
                    if values[nid] == value:
                        continue
                    values[nid] = value
                    if watched[nid]:
                        trace.append(NetChange(t, net_names[nid], value))
                    plan = plans[nid]
                    if plan is None:
                        if value:
                            for g, mult in fan_counts[nid]:
                                counts[g] += mult
                        else:
                            for g, mult in fan_counts[nid]:
                                counts[g] -= mult
                        for g in fan_gates[nid]:
                            out_nid = gate_output[g]
                            out = tts[g] >> counts[g] & 1
                            if pending[out_nid] or out != values[out_nid]:
                                cal_push(
                                    t + gate_delays[g], out_nid, out, True
                                )
                    elif value:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] + 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                cal_push(t + delay, out_nid, out, True)
                    else:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] - 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                cal_push(t + delay, out_nid, out, True)
                    if value == 1:
                        for d_nid, q_nid, delay in dff_plans[nid]:
                            sampled = values[d_nid]
                            if pending[q_nid] or sampled != values[q_nid]:
                                cal_push(t + delay, q_nid, sampled, True)
                    if stop_nid >= 0 and values[stop_nid] == stop_value:
                        stop_here = True
                        break
                    if stop_when is not None:
                        self.now = now
                        self._events_processed = events
                        if stop_when(self):
                            stop_here = True
                            break
                rest = batch[index:]
                if rest:
                    buckets[t] = rest
                else:
                    del buckets[t]
                    index_q.remove(t)
                if stop_here:
                    return now
            if until is not None and until > now:
                now = until
            return now
        finally:
            self._running = False
            self.now = now
            self._events_processed = events
