"""Delay models for the event-driven simulator.

The SI model behind FANTOM treats gate delays as unbounded but finite
(paper Section 3); hazards are consequences of *relative* delays, so the
simulator's delay model is where physical skew is injected:

* :class:`UnitDelay` — every gate one unit; deterministic baseline.
* :class:`RandomDelay` — per-gate delays drawn once from a seeded uniform
  range (a delay is a property of a piece of silicon, not of an event).
  Flip-flop clock-to-Q values get their own range, because the FFX bank's
  per-bit clock-to-Q spread is what exposes intermediate input vectors.

`loop_safe_random` draws random delays that respect the paper's
loop-delay assumption — the maximum input-path skew stays below the
minimum feedback-loop delay — which is the regime FANTOM guarantees
hazard-freedom in.  The ablation benchmark uses the same model, so any
failure of the fsv-less machine is attributable to the missing
protection, not to breaking the architecture's stated assumptions.

Time quantum
------------
Every built-in model snaps its delays onto the dyadic grid
``2**-TIME_GRID_BITS`` (a sub-3e-8 perturbation of the drawn value,
physically meaningless at the model ranges in play).  On that grid every
float the event kernels compute — sums and comparisons of event times —
is *exact* IEEE arithmetic as long as times stay below
``2**(53 - TIME_GRID_BITS)``, so a fixed-point tick kernel
(:mod:`repro.sim.ring`) scaled by the negotiated quantum reproduces the
float kernels bit for bit.  :func:`negotiate_time_quantum` is that
negotiation: given a resolved delay vector it returns the shared shift,
or ``None`` when no practical quantum exists (hand-annotated off-grid
delays), in which case the kernel falls back to its calendar queue.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..netlist.gates import Dff, Gate

#: Built-in delay draws land on multiples of ``2**-TIME_GRID_BITS``.
TIME_GRID_BITS = 24

#: The largest per-vector tick shift the ring kernel will run on.  With
#: shift ``k`` the exactness horizon is ``2**(53 - k)`` time units
#: (~5.4e8 at the default grid) — far beyond any campaign walk.
TICK_SHIFT_LIMIT = 30


def snap_to_grid(value: float, bits: int = TIME_GRID_BITS) -> float:
    """The nearest multiple of ``2**-bits`` (exact power-of-two scaling)."""
    scale = 1 << bits
    return round(value * scale) / scale


def dyadic_shift(value: float) -> int:
    """The smallest ``k`` with ``value * 2**k`` integral.

    Exact for every finite float: ``float.as_integer_ratio`` always
    returns a power-of-two denominator.
    """
    _num, den = float(value).as_integer_ratio()
    return den.bit_length() - 1


def negotiate_time_quantum(
    values, limit: int = TICK_SHIFT_LIMIT
) -> int | None:
    """The shared tick shift for a resolved delay vector, or ``None``.

    Returns the smallest ``k`` such that every value is an integer
    multiple of ``2**-k`` — the vector's exact common quantum — provided
    it does not exceed ``limit`` (a denominator-bounded stand-in for the
    LCM blow-up of impractical quanta).  ``0`` means the plain integer
    ring suffices.
    """
    shift = 0
    for value in values:
        k = dyadic_shift(value)
        if k > limit:
            return None
        if k > shift:
            shift = k
    return shift


class DelayModel:
    """Assigns a fixed delay to every gate and flip-flop instance.

    Built-in models keep their delays on the dyadic time grid
    (:data:`TIME_GRID_BITS`) so the fixed-point tick kernel applies;
    models are free to return off-grid values, at the cost of the
    calendar-queue path.
    """

    def gate_delay(self, gate: Gate) -> float:
        raise NotImplementedError

    def clk_to_q(self, dff: Dff) -> float:
        raise NotImplementedError


@dataclass
class UnitDelay(DelayModel):
    """Every gate ``unit``, every flip-flop ``unit`` clock-to-Q."""

    unit: float = 1.0

    def gate_delay(self, gate: Gate) -> float:
        return gate.delay if gate.delay is not None else self.unit

    def clk_to_q(self, dff: Dff) -> float:
        return dff.clk_to_q if dff.clk_to_q is not None else self.unit


class RandomDelay(DelayModel):
    """Seeded per-instance uniform delays.

    ``gate_range`` bounds combinational gates, ``ff_range`` bounds
    flip-flop clock-to-Q.  Each instance's delay is drawn once on first
    use and cached, so repeated evaluations of the same gate are
    consistent within a run, and two simulators built with the same seed
    see identical silicon.

    Draws are snapped to the dyadic grid ``2**-grid_bits`` (and clamped
    inside the stated range, whose ends may themselves be off-grid), so
    the tick kernel's quantum negotiation always succeeds on built-in
    silicon.  Pass ``grid_bits=None`` for raw uniform draws — the
    calendar-queue regime.
    """

    def __init__(
        self,
        seed: int,
        gate_range: tuple[float, float] = (0.8, 1.2),
        ff_range: tuple[float, float] = (0.2, 1.0),
        grid_bits: int | None = TIME_GRID_BITS,
    ):
        if gate_range[0] <= 0 or ff_range[0] <= 0:
            raise ValueError("delays must be strictly positive")
        self.seed = seed
        self.gate_range = gate_range
        self.ff_range = ff_range
        self.grid_bits = grid_bits
        self._cache: dict[str, float] = {}

    def _draw(self, key: str, lo: float, hi: float) -> float:
        if key not in self._cache:
            rng = random.Random(f"{self.seed}:{key}")
            value = rng.uniform(lo, hi)
            bits = self.grid_bits
            if bits is not None:
                scale = 1 << bits
                tick = round(value * scale)
                tick = max(tick, math.ceil(lo * scale))
                tick = min(tick, math.floor(hi * scale))
                value = tick / scale
            self._cache[key] = value
        return self._cache[key]

    def gate_delay(self, gate: Gate) -> float:
        if gate.delay is not None:
            return gate.delay
        return self._draw(f"g:{gate.name}", *self.gate_range)

    def clk_to_q(self, dff: Dff) -> float:
        if dff.clk_to_q is not None:
            return dff.clk_to_q
        return self._draw(f"f:{dff.name}", *self.ff_range)


def loop_safe_random(seed: int) -> RandomDelay:
    """A random model honouring the loop-delay assumption.

    Flip-flop clock-to-Q spreads over [0.2, 1.0] (input skew window up to
    0.8), while every combinational gate takes at least 1.5 — so the
    state feedback loop (>= one full gate) is always slower than the
    largest input skew, which is the paper's "maximum line delay less
    than minimum loop delay" requirement.
    """
    return RandomDelay(
        seed, gate_range=(1.5, 2.5), ff_range=(0.2, 1.0)
    )


def skewed_random(seed: int) -> RandomDelay:
    """A deliberately hostile model: input skew comparable to gate delay.

    Violates nothing the environment promises (inputs still settle before
    the next hand-shake), but widens the intermediate-vector window, used
    to stress the hazard ablation.
    """
    return RandomDelay(
        seed, gate_range=(0.9, 1.6), ff_range=(0.2, 2.0)
    )


class CornerDelay(DelayModel):
    """The deterministic worst-case corner of the loop-safe regime.

    Random delay sweeps sample the interior of the paper's Section-4.3
    timing region; this model pins every instance to the *boundary*:

    * every combinational gate takes exactly ``gate_floor`` — the loop
      (one gate minimum) is as fast as the loop-delay assumption allows,
      so the protection margin between input skew and state feedback is
      minimal;
    * flip-flop clock-to-Q alternates between the two extremes of the
      loop-safe band by bank position, so *adjacent* bits see the
      maximum pairwise skew — the widest intermediate-vector window per
      input change.  ``phase`` flips which bits are fast and which are
      slow, so a sweep over phases visits both polarities of every
      corner.

    The defaults keep the paper's "maximum line delay less than minimum
    loop delay" assumption satisfied with the tightest sensible margin:
    skew window ``ff_extremes[1] - ff_extremes[0]`` = 0.8 against a 1.0
    loop floor.  Bank position is parsed from the instance name
    (``FFX3`` → 3), not from call order, so both event kernels and any
    evaluation order assign identical silicon.

    Like the random models, the extremes are snapped to the dyadic time
    grid (nearest multiple of ``2**-TIME_GRID_BITS``) so corner cells
    run on the tick kernel; the snap moves a boundary by under 3e-8.
    """

    def __init__(
        self,
        phase: int = 0,
        gate_floor: float = 1.0,
        ff_extremes: tuple[float, float] = (0.2, 1.0),
    ):
        if gate_floor <= ff_extremes[1] - ff_extremes[0]:
            raise ValueError(
                "corner violates the loop-delay assumption: skew window "
                f"{ff_extremes[1] - ff_extremes[0]} >= loop floor {gate_floor}"
            )
        if min(ff_extremes) <= 0 or gate_floor <= 0:
            raise ValueError("delays must be strictly positive")
        self.phase = phase
        self.gate_floor = snap_to_grid(gate_floor)
        self.ff_extremes = tuple(snap_to_grid(v) for v in ff_extremes)

    def gate_delay(self, gate: Gate) -> float:
        if gate.delay is not None:
            return gate.delay
        return self.gate_floor

    def clk_to_q(self, dff: Dff) -> float:
        if dff.clk_to_q is not None:
            return dff.clk_to_q
        position = int("".join(ch for ch in dff.name if ch.isdigit()) or 0)
        return self.ff_extremes[(position + self.phase) % 2]


def hostile_random(seed: int) -> RandomDelay:
    """Maximum-stress model: input skew up to several gate delays.

    The intermediate-vector window now dwarfs the logic's reaction time,
    so every function M-hazard of an unprotected machine has ample room
    to fire; a FANTOM machine must still come back clean (its hold-or-
    proceed construction is delay-independent).
    """
    return RandomDelay(
        seed, gate_range=(0.5, 1.2), ff_range=(0.2, 3.0)
    )
