"""Event-driven gate-level simulation with transport delays.

The simulator executes a :class:`~repro.netlist.netlist.Netlist` under a
:class:`~repro.sim.delays.DelayModel`:

* combinational gates re-evaluate whenever an input net changes and
  schedule their (possibly glitchy) output after the gate's delay —
  **transport** semantics, so every hazard pulse the logic can produce is
  visible to the monitors;
* positive edge-triggered flip-flops sample ``D`` at the instant their
  clock net goes 0 to 1 and drive ``Q`` after their clock-to-Q delay;
* combinational feedback loops (the ``G`` latch, the state feedback) are
  handled naturally — every gate has strictly positive delay, so loops
  iterate through time instead of diverging.

An event budget guards against genuinely unstable logic (an oscillating
feedback loop raises :class:`~repro.errors.SimulationError` rather than
hanging).

Execution model
---------------
The kernel runs the netlist's **compiled program**
(:meth:`Netlist.compile() <repro.netlist.netlist.Netlist.compile>`):
net values live in a flat list indexed by integer net id, heap events
are ``(time, sequence, net_id, value)`` int tuples, gate evaluation is
one bit-index into a precomputed truth-table int (the ones-count among
a gate's inputs is maintained incrementally per fanout edge), and every
per-instance delay is resolved through the
:class:`~repro.sim.delays.DelayModel` exactly once at construction — no
per-event dict lookups, string hashing, or virtual delay calls.  The
original object-graph interpreter is retained as
:class:`repro.sim._reference.ReferenceSimulator` and pinned
trace-equivalent by the Hypothesis suite in ``tests/sim/``; event
ordering (including heap tie-breaks via sequence numbers) is reproduced
bit-for-bit, so both kernels emit identical :class:`NetChange` streams.

Two deliberate facade differences from the retained reference: net
values are normalised to 0/1 (the reference would carry any truthy
object through), and :meth:`Simulator.schedule` rejects unknown nets
(the reference silently accepted them).  ``Simulator.values`` is a
snapshot property, not the live store.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..errors import SimulationError
from ..netlist.netlist import Netlist
from .delays import DelayModel, UnitDelay

#: Entries kept in a compiled program's plan cache.  Campaign sweeps
#: cycle through one plan set per (model, seed) — an LRU keeps the live
#: working set warm where the old wholesale clear-at-16 threw away every
#: cell's plans (and the ring kernel's segment memos) mid-sweep.
PLAN_CACHE_LIMIT = 64


def plan_cache_get(cache: dict, key):
    """LRU lookup: a hit is refreshed to most-recently-used."""
    entry = cache.pop(key, None)
    if entry is not None:
        cache[key] = entry
    return entry


def plan_cache_put(cache: dict, key, entry) -> None:
    """LRU insert, evicting the stalest entries beyond the cap."""
    cache.pop(key, None)
    while len(cache) >= PLAN_CACHE_LIMIT:
        del cache[next(iter(cache))]
    cache[key] = entry


@dataclass(frozen=True)
class NetChange:
    """One recorded transition on a net."""

    time: float
    net: str
    value: int


class Simulator:
    """Event-driven simulation of one netlist instance."""

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel | None = None,
        initial_values: dict[str, int] | None = None,
        max_events: int = 200_000,
        inertial: bool = True,
    ):
        self.netlist = netlist
        self.delays = delays or UnitDelay()
        self.max_events = max_events
        self.inertial = inertial
        self.now = 0.0
        self._queue: list[tuple[float, int, int, int]] = []
        self._sequence = 0
        self._events_processed = 0
        self.trace: list[NetChange] = []

        prog = netlist.compile()
        self._prog = prog
        self._ids = prog.net_ids
        num_nets = prog.num_nets

        #: live sequence number per net id (0 = none pending).
        self._pending = [0] * num_nets
        self._watched_flags = [False] * num_nets
        self._watched: set[str] = set()

        self._values = [0] * num_nets
        #: initial values for nets the netlist does not know (kept so
        #: ``value()`` answers for them, as the reference kernel did).
        self._extra: dict[str, int] = {}
        if initial_values:
            ids = self._ids
            for net, value in initial_values.items():
                nid = ids.get(net)
                if nid is None:
                    self._extra[net] = value
                else:
                    self._values[nid] = 1 if value else 0

        #: per-gate count of inputs currently 1 (the truth-table index).
        values = self._values
        self._counts = [
            sum(values[nid] for nid in inputs) for inputs in prog.gate_inputs
        ]

        # Delay models assign a *fixed* delay per instance (their stated
        # contract), so resolve them all once here instead of per event.
        self._gate_delays = [
            self.delays.gate_delay(gate) for gate in netlist.gates
        ]
        self._dff_delays = [self.delays.clk_to_q(dff) for dff in netlist.dffs]

        # Per-net fanout plans, fusing everything one event touches into
        # one tuple walk: (gate, output id, delay, truth table) per
        # reading gate.  For duplicate-free nets (the normal case) the
        # count update and the evaluation run in a single pass — a gate
        # sees its count fully updated because this net moves it exactly
        # once.  A net feeding one gate twice keeps ``None`` here and
        # takes the generic two-phase path.  Plans depend only on the
        # program and the resolved delays, so they are memoised on the
        # compiled program — every unit-delay (or same-seed) cell of a
        # campaign shares them.
        plan_key = (tuple(self._gate_delays), tuple(self._dff_delays))
        cached = plan_cache_get(prog.plan_cache, plan_key)
        if cached is None:
            gate_delays = self._gate_delays
            plans: list[tuple | None] = []
            for readers in prog.fan_gates:
                if len(set(readers)) != len(readers):
                    plans.append(None)
                else:
                    plans.append(
                        tuple(
                            (
                                g,
                                prog.gate_output[g],
                                gate_delays[g],
                                prog.gate_tt[g],
                            )
                            for g in readers
                        )
                    )
            dff_delays = self._dff_delays
            dff_plans = [
                tuple(
                    (prog.dff_d[f], prog.dff_q[f], dff_delays[f])
                    for f in fans
                )
                for fans in prog.fan_dffs
            ]
            cached = (plans, dff_plans)
            plan_cache_put(prog.plan_cache, plan_key, cached)
        self._plans, self._dff_plans = cached
        #: Engine-path provenance; the ring kernel replaces this with its
        #: full telemetry dict.  The compiled kernel *is* the heap path.
        self.kernel_stats = {"path": "heap", "migrations": {}}
        self._run_events = self._make_runner()
        # Shadow the class methods with generated closures: one frame,
        # zero rebinding, per harness wait / input-pin edge.
        self.run = self._run_events
        self.schedule = self._make_scheduler()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    @property
    def compiled(self):
        """The :class:`~repro.netlist.compiled.CompiledNetlist` program."""
        return self._prog

    @property
    def values(self) -> dict[str, int]:
        """Snapshot of every net's current value (name -> 0/1)."""
        snapshot = dict(zip(self._prog.net_names, self._values))
        snapshot.update(self._extra)
        return snapshot

    def watch(self, *nets: str) -> None:
        """Record every transition of the given nets into the trace."""
        self._watched.update(nets)
        ids = self._ids
        for net in nets:
            nid = ids.get(net)
            if nid is not None:
                self._watched_flags[nid] = True

    def schedule(self, net: str, value: int, at: float) -> None:
        """Schedule an externally driven net change (primary inputs).

        External schedules are never cancelled by inertial semantics —
        the environment's waveform is what it is.  (As with :meth:`run`,
        the constructor shadows this with a generated closure.)
        """
        if at < self.now:
            raise SimulationError(
                f"cannot schedule {net} at {at} before now ({self.now})"
            )
        nid = self._ids.get(net)
        if nid is None:
            raise SimulationError(f"unknown net {net!r}")
        self._sequence += 1
        heapq.heappush(
            self._queue, (at, self._sequence, nid, 1 if value else 0)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        stop_when: "callable | None" = None,
        stop_net: str | None = None,
        stop_value: int = 1,
    ) -> float:
        """Process events up to ``until`` (or until the queue drains).

        ``stop_when(sim)`` is evaluated after each processed event; when
        it returns True execution pauses (the queue keeps its remaining
        events).  ``stop_net``/``stop_value`` is the same pause as
        ``stop_when=lambda sim: sim.value(stop_net) == stop_value`` but
        checked inline — the 4-phase harness waits on a net level after
        nearly every hand-shake edge, and a Python callback per event
        would tax the compiled kernel's whole margin.  Returns the
        simulation time reached.

        (The constructor shadows this method with the instance's
        generated event loop — see :meth:`_make_runner`; this body only
        serves subclasses that bypass ``__init__``.)
        """
        return self._run_events(until, stop_when, stop_net, stop_value)

    def _make_scheduler(self):
        sim = self

        def schedule(
            net,
            value,
            at,
            ids=self._ids,
            queue=self._queue,
            heappush=heapq.heappush,
        ):
            if at < sim.now:
                raise SimulationError(
                    f"cannot schedule {net} at {at} before now ({sim.now})"
                )
            nid = ids.get(net)
            if nid is None:
                raise SimulationError(f"unknown net {net!r}")
            sim._sequence = seq = sim._sequence + 1
            heappush(queue, (at, seq, nid, 1 if value else 0))

        return schedule

    def _make_runner(self):
        """Build this instance's event loop.

        Every loop invariant — the compiled program's arrays, this
        simulator's state lists, the heap primitives — is bound as a
        default argument, so a ``run()`` call has no per-call rebinding
        cost (the 4-phase harness calls ``run`` several times per
        hand-shake cycle) and every per-event access is a C-speed local.
        """
        sim = self
        heappush = heapq.heappush
        heappop = heapq.heappop

        def run_events(
            until=None,
            stop_when=None,
            stop_net=None,
            stop_value=1,
            ids=self._ids,
            queue=self._queue,
            values=self._values,
            pending=self._pending,
            counts=self._counts,
            watched=self._watched_flags,
            trace=self.trace,
            plans=self._plans,
            dff_plans=self._dff_plans,
            fan_gates=self._prog.fan_gates,
            fan_counts=self._prog.fan_counts,
            gate_output=self._prog.gate_output,
            tt=self._prog.gate_tt,
            net_names=self._prog.net_names,
            gate_delays=self._gate_delays,
            inertial=self.inertial,
            max_events=self.max_events,
            inf=float("inf"),
        ):
            stop_nid = -1
            if stop_net is not None:
                stop_nid = ids.get(stop_net, -1)
                if stop_nid < 0:
                    raise SimulationError(f"unknown net {stop_net!r}")
                if values[stop_nid] == stop_value:
                    return sim.now
            deadline = inf if until is None else until
            events = sim._events_processed
            seq = sim._sequence
            now = sim.now
            try:
                while queue:
                    event = heappop(queue)
                    at = event[0]
                    if at > deadline:
                        # Past the horizon: put it back (the heap pop
                        # order is a total order on (time, seq), so a
                        # re-push changes nothing observable).
                        heappush(queue, event)
                        now = until
                        return now
                    _, eseq, nid, value = event
                    events += 1
                    if events > max_events:
                        raise SimulationError(
                            f"event budget exceeded ({max_events}); "
                            f"oscillating feedback loop in "
                            f"{sim.netlist.name!r}?"
                        )
                    now = at
                    live = pending[nid]
                    if live:
                        if inertial and live != eseq:
                            continue  # superseded by a re-evaluation
                        if live == eseq:
                            pending[nid] = 0  # the in-flight event landed
                    if values[nid] == value:
                        continue
                    values[nid] = value
                    if watched[nid]:
                        trace.append(NetChange(at, net_names[nid], value))
                    # Push-time no-op filtering: a re-evaluation that
                    # confirms the target net's current value, with no
                    # in-flight event to supersede (pending == 0), would
                    # pop straight into the equal-value skip — don't
                    # schedule it at all.  More than half of a FANTOM
                    # machine's events are such confirmations.  Traces,
                    # values and timing are unchanged (surviving events
                    # keep their relative sequence order); only the
                    # processed-event count differs from the reference.
                    plan = plans[nid]
                    if plan is None:
                        # A net feeding some gate more than once: update
                        # every count fully, then evaluate (the fused
                        # single pass would see half-updated counts).
                        if value:
                            for g, mult in fan_counts[nid]:
                                counts[g] += mult
                        else:
                            for g, mult in fan_counts[nid]:
                                counts[g] -= mult
                        for g in fan_gates[nid]:
                            out_nid = gate_output[g]
                            out = tt[g] >> counts[g] & 1
                            if pending[out_nid] or out != values[out_nid]:
                                seq += 1
                                pending[out_nid] = seq
                                heappush(
                                    queue,
                                    (at + gate_delays[g], seq, out_nid, out),
                                )
                    elif value:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] + 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                seq += 1
                                pending[out_nid] = seq
                                heappush(
                                    queue, (at + delay, seq, out_nid, out)
                                )
                    else:
                        for g, out_nid, delay, table in plan:
                            ones = counts[g] - 1
                            counts[g] = ones
                            out = table >> ones & 1
                            if pending[out_nid] or out != values[out_nid]:
                                seq += 1
                                pending[out_nid] = seq
                                heappush(
                                    queue, (at + delay, seq, out_nid, out)
                                )
                    if value == 1:
                        # rising clock edges sample D now, drive Q later
                        for d_nid, q_nid, delay in dff_plans[nid]:
                            sampled = values[d_nid]
                            if pending[q_nid] or sampled != values[q_nid]:
                                seq += 1
                                pending[q_nid] = seq
                                heappush(
                                    queue, (at + delay, seq, q_nid, sampled)
                                )
                    if stop_nid >= 0 and values[stop_nid] == stop_value:
                        return now
                    if stop_when is not None:
                        # Sync state out (and the sequence back in) so a
                        # callback may inspect or even schedule safely.
                        sim.now = now
                        sim._sequence = seq
                        sim._events_processed = events
                        stop = stop_when(sim)
                        seq = sim._sequence
                        if stop:
                            return now
                if until is not None and until > now:
                    now = until
                return now
            finally:
                sim.now = now
                sim._events_processed = events
                sim._sequence = seq

        return run_events

    def run_until_quiet(self, timeout: float) -> float:
        """Run until no live events remain or ``timeout`` elapses.

        Raises when live events are still pending at the deadline — the
        caller expected stability and did not get it.
        """
        deadline = self.now + timeout
        if not self._queue:  # already quiet: just advance time
            self.now = deadline
            return deadline
        reached = self.run(until=deadline)
        if self.has_live_events():
            raise SimulationError(
                f"netlist {self.netlist.name!r} did not quiesce within "
                f"{timeout} time units"
            )
        return reached

    def has_live_events(self) -> bool:
        """True when the queue holds any non-superseded event."""
        pending = self._pending
        for _, seq, nid, _ in self._queue:
            if self.inertial:
                live = pending[nid]
                if live and live != seq:
                    continue
            return True
        return False

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def value(self, net: str) -> int:
        nid = self._ids.get(net)
        if nid is not None:
            return self._values[nid]
        try:
            return self._extra[net]
        except KeyError:
            raise SimulationError(f"unknown net {net!r}") from None

    def values_reader(self, nets):
        """A zero-argument callable snapshotting ``nets`` (in order).

        The harness reads the state and output banks once per hand-shake
        cycle; resolving the names to ids once beats a ``value()`` call
        per net per cycle.  Both kernels provide this.
        """
        ids = []
        for net in nets:
            nid = self._ids.get(net)
            if nid is None:
                raise SimulationError(f"unknown net {net!r}")
            ids.append(nid)
        values = self._values
        return lambda: tuple(values[nid] for nid in ids)

    def net_reader(self, net: str):
        """A zero-argument reader of one net's current value.

        The single-net analogue of :meth:`values_reader`: the harness
        polls ``VOM`` and the external pins every hand-shake phase, so
        resolving the name once removes a dict lookup from each of the
        campaign's hottest shared reads.  Both kernels provide this.
        """
        nid = self._ids.get(net)
        if nid is not None:
            values = self._values
            return lambda: values[nid]
        if net in self._extra:
            extra = self._extra
            return lambda: extra[net]
        raise SimulationError(f"unknown net {net!r}")

    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def trace_of(self, net: str) -> list[NetChange]:
        return [change for change in self.trace if change.net == net]
