"""The retained seed event kernel: the object-graph interpreter.

This is the original, dict-per-event implementation of the event-driven
simulator, kept verbatim (modulo the class name) as the pinned
behavioural reference for the compiled kernel in
:mod:`repro.sim.simulator` — the same pattern PR 3 used for the logic
engine (:mod:`repro.logic._reference`).  The Hypothesis equivalence
suite (``tests/sim/test_equivalence.py``) asserts identical
:class:`~repro.sim.simulator.NetChange` traces, values, and simulation
times between the two on random netlists and on the golden machines
(``events_processed`` intentionally differs — the compiled kernel
filters no-op re-evaluations at push time), and
``benchmarks/bench_sim.py`` measures the gap.

Semantics (shared by both kernels):

* combinational gates re-evaluate whenever an input net changes and
  schedule their (possibly glitchy) output after the gate's delay —
  **transport** semantics unless ``inertial`` filtering is on;
* positive edge-triggered flip-flops sample ``D`` at the instant their
  clock net goes 0 to 1 and drive ``Q`` after their clock-to-Q delay;
* combinational feedback loops are handled naturally — every gate has
  strictly positive delay, so loops iterate through time;
* an event budget guards against genuinely unstable logic.
"""

from __future__ import annotations

import heapq

from ..errors import SimulationError
from ..netlist.netlist import Netlist
from .delays import DelayModel, UnitDelay
from .simulator import NetChange


class ReferenceSimulator:
    """Event-driven simulation of one netlist instance (seed kernel)."""

    def __init__(
        self,
        netlist: Netlist,
        delays: DelayModel | None = None,
        initial_values: dict[str, int] | None = None,
        max_events: int = 200_000,
        inertial: bool = True,
    ):
        self.netlist = netlist
        self.delays = delays or UnitDelay()
        self.max_events = max_events
        self.inertial = inertial
        self.now = 0.0
        self._queue: list[tuple[float, int, str, int]] = []
        self._sequence = 0
        self._events_processed = 0
        self._pending: dict[str, int] = {}  # net -> live sequence number
        self.values: dict[str, int] = {}
        self.trace: list[NetChange] = []
        self._watched: set[str] = set()

        self._readers: dict[str, list] = {}
        for gate in netlist.gates:
            for net in gate.inputs:
                self._readers.setdefault(net, []).append(("gate", gate))
        for dff in netlist.dffs:
            self._readers.setdefault(dff.clock, []).append(("clock", dff))

        if initial_values:
            self.values.update(initial_values)
        for net in netlist.nets():
            self.values.setdefault(net, 0)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def watch(self, *nets: str) -> None:
        """Record every transition of the given nets into the trace."""
        self._watched.update(nets)

    def schedule(self, net: str, value: int, at: float) -> None:
        """Schedule an externally driven net change (primary inputs).

        External schedules are never cancelled by inertial semantics —
        the environment's waveform is what it is.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot schedule {net} at {at} before now ({self.now})"
            )
        self._push(at, net, value, cancellable=False)

    def _push(
        self, at: float, net: str, value: int, cancellable: bool = True
    ) -> None:
        self._sequence += 1
        if self.inertial and cancellable:
            # Inertial semantics: a gate output keeps at most one pending
            # transition; re-evaluation supersedes it.  Pulses shorter
            # than the gate delay are thereby filtered, as in physical
            # gates.  Lazy cancellation: stale heap entries are skipped
            # when popped.
            self._pending[net] = self._sequence
        heapq.heappush(self._queue, (at, self._sequence, net, value))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        stop_when: "callable | None" = None,
        stop_net: str | None = None,
        stop_value: int = 1,
    ) -> float:
        """Process events up to ``until`` (or until the queue drains).

        ``stop_when(sim)`` is evaluated after each processed event; when
        it returns True execution pauses (the queue keeps its remaining
        events).  ``stop_net``/``stop_value`` is the equivalent inline
        level wait the compiled kernel provides; it is implemented here
        too so either kernel is a drop-in for the other.  Returns the
        simulation time reached.
        """
        if stop_net is not None:
            if stop_net not in self.values:
                raise SimulationError(f"unknown net {stop_net!r}")
            if self.values[stop_net] == stop_value:
                return self.now
        while self._queue:
            at, _, net, value = self._queue[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            _, seq, _, _ = heapq.heappop(self._queue)
            self._events_processed += 1
            if self._events_processed > self.max_events:
                raise SimulationError(
                    f"event budget exceeded ({self.max_events}); "
                    f"oscillating feedback loop in {self.netlist.name!r}?"
                )
            self.now = at
            if (
                self.inertial
                and net in self._pending
                and self._pending[net] != seq
            ):
                continue  # superseded by a later re-evaluation
            if self.values.get(net) == value:
                continue
            self._apply(net, value)
            if (
                stop_net is not None
                and self.values[stop_net] == stop_value
            ):
                return self.now
            if stop_when is not None and stop_when(self):
                return self.now
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_quiet(self, timeout: float) -> float:
        """Run until no live events remain or ``timeout`` elapses.

        Raises when live events are still pending at the deadline — the
        caller expected stability and did not get it.
        """
        deadline = self.now + timeout
        if not self._queue:  # already quiet: just advance time
            self.now = deadline
            return deadline
        reached = self.run(until=deadline)
        if self.has_live_events():
            raise SimulationError(
                f"netlist {self.netlist.name!r} did not quiesce within "
                f"{timeout} time units"
            )
        return reached

    def has_live_events(self) -> bool:
        """True when the queue holds any non-superseded event."""
        for _, seq, net, _ in self._queue:
            if (
                self.inertial
                and net in self._pending
                and self._pending[net] != seq
            ):
                continue
            return True
        return False

    def _apply(self, net: str, value: int) -> None:
        self.values[net] = value
        if net in self._watched:
            self.trace.append(NetChange(self.now, net, value))
        for kind, element in self._readers.get(net, []):
            if kind == "gate":
                out = element.evaluate(self.values)
                delay = self.delays.gate_delay(element)
                self._push(self.now + delay, element.output, out)
            else:  # clock edge of a DFF
                if value == 1:  # rising edge: sample D now
                    sampled = self.values[element.d]
                    delay = self.delays.clk_to_q(element)
                    self._push(self.now + delay, element.q, sampled)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def value(self, net: str) -> int:
        try:
            return self.values[net]
        except KeyError:
            raise SimulationError(f"unknown net {net!r}") from None

    def values_reader(self, nets):
        """A zero-argument callable snapshotting ``nets`` (in order);
        the same surface the compiled kernel provides."""
        nets = tuple(nets)
        for net in nets:
            self.value(net)  # raises on unknown nets, as compiled does
        values = self.values
        return lambda: tuple(values[net] for net in nets)

    def net_reader(self, net: str):
        """Single-net reader; the same surface the compiled kernel
        provides."""
        self.value(net)  # raises on unknown nets, as compiled does
        values = self.values
        return lambda: values[net]

    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def trace_of(self, net: str) -> list[NetChange]:
        return [change for change in self.trace if change.net == net]
