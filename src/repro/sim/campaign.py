"""Monte-Carlo delay-sweep validation campaigns.

The paper's Section 4.2 claim — synthesized FANTOM machines are
hazard-free under the 4-phase environment — used to be smoke-tested by a
handful of random walks under one delay model.  A
:class:`ValidationCampaign` turns that into a scalable workload: it fans
**seeded random walks × delay models** over many machines, on the
compiled simulation kernel, and aggregates the per-cell
:class:`~repro.sim.monitors.ValidationSummary` streams deterministically
(cells are ordered table-major, then model, then seed — identical output
for identical input regardless of ``jobs``).

Delay models are named (:data:`DELAY_MODELS`) so a campaign is
reproducible from its textual configuration alone:

``unit``
    every gate one unit — the deterministic baseline;
``loop-safe``
    seeded random delays honouring the loop-delay assumption
    (:func:`~repro.sim.delays.loop_safe_random`);
``skewed`` / ``hostile``
    progressively wider input-skew windows (the hazard-ablation regime);
``corner``
    the deterministic worst-case boundary of the loop-safe region per
    Section 4.3 (:class:`~repro.sim.delays.CornerDelay`; the sweep seed
    flips the corner's polarity).

Walks depend only on (table, seed), so the campaign generates each walk
once and replays it under every delay model — fresh silicon per cell,
same stimulus.  Synthesis routes through the existing
:class:`~repro.pipeline.batch.BatchRunner` (ordered stream, shared
stage cache, ``jobs`` worker processes); with ``jobs > 1`` the
validation cells themselves fan out over a process pool as well.

Entry points: ``seance validate --sweep N --delay-model M --jobs J``,
:meth:`repro.api.Session.validate`, and the ``verify`` pipeline pass
(:mod:`repro.pipeline.passes`), which fails synthesis outright on a
dirty machine.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..netlist.fantom import FantomMachine, build_fantom
from .delays import (
    CornerDelay,
    UnitDelay,
    hostile_random,
    loop_safe_random,
    skewed_random,
)
from .harness import expected_walk, random_legal_walk, validate_walk
from .monitors import ValidationSummary
from .ring import RingSimulator
from .simulator import Simulator


def _unit_model(seed: int, machine: FantomMachine):
    return UnitDelay()


def _loop_safe_model(seed: int, machine: FantomMachine):
    return loop_safe_random(seed)


def _skewed_model(seed: int, machine: FantomMachine):
    return skewed_random(seed)


def _hostile_model(seed: int, machine: FantomMachine):
    return hostile_random(seed)


def _corner_model(seed: int, machine: FantomMachine):
    return CornerDelay(phase=seed)


#: Named delay-model factories: ``name -> f(seed, machine) -> DelayModel``.
#: Module-level functions (not lambdas) so cell tasks cross process
#: boundaries by name.
DELAY_MODELS = {
    "unit": _unit_model,
    "loop-safe": _loop_safe_model,
    "skewed": _skewed_model,
    "hostile": _hostile_model,
    "corner": _corner_model,
}

#: Simulation kernels a campaign can drive, by name (picklable).
ENGINES = {"compiled": Simulator, "ring": RingSimulator}


def _reference_engine():
    from ._reference import ReferenceSimulator

    return ReferenceSimulator


def default_engine() -> str:
    """The kernel used when no ``engine`` is given explicitly.

    ``$REPRO_SIM_ENGINE`` overrides (validated; ``compiled`` selects
    the heap kernel, useful for benchmarking baselines or to avoid the
    ring kernel's optional numpy import — the ring degrades to scalar
    front evaluation without numpy, so either works anywhere).
    Defaults to ``"ring"``: with the fractional-time tick grid and the
    calendar fallback, every built-in delay model now runs on the fast
    kernel, so the campaign bulk takes it by default.
    """
    import os

    name = os.environ.get("REPRO_SIM_ENGINE")
    if name:
        _resolve_engine(name)
        return name
    return "ring"


def delay_model(name: str, seed: int, machine: FantomMachine):
    """Instantiate the named delay model for one campaign cell."""
    try:
        factory = DELAY_MODELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown delay model {name!r}; available: "
            f"{', '.join(sorted(DELAY_MODELS))}"
        ) from None
    return factory(seed, machine)


def archive_failure_vcd(
    store, key, machine, walk, model: str, seed: int, engine: str
) -> None:
    """Archive a dirty cell's replayed waveform next to its envelope.

    Store-lifecycle satellite of the fleet story: a failing cell's
    evidence is a downloadable ``<kind>/<digest>.vcd`` blob, not a
    rerun on someone's laptop.  The replay is deterministic (same walk,
    same seed-derived silicon), so the archived waveform shows exactly
    the failing events the scoring run judged.
    """
    from .harness import export_walk_vcd

    vcd = export_walk_vcd(
        machine,
        walk,
        delays=delay_model(model, seed, machine),
        simulator_factory=_resolve_engine(engine),
    )
    store.put_artifact(key, "vcd", vcd.encode())


def _resolve_engine(engine: str):
    if engine == "reference":
        return _reference_engine()
    try:
        return ENGINES[engine]
    except KeyError:
        raise SimulationError(
            f"unknown simulation engine {engine!r}; available: "
            f"{', '.join(sorted((*ENGINES, 'reference')))}"
        ) from None


@dataclass(frozen=True)
class CampaignCell:
    """One (machine, delay model, seed) validation run.

    ``store_hit`` marks a cell replayed from a content-addressed
    :class:`~repro.store.ResultStore` instead of simulated.
    """

    table: str
    model: str
    seed: int
    summary: ValidationSummary
    seconds: float
    store_hit: bool = False

    @property
    def clean(self) -> bool:
        return self.summary.all_clean

    @property
    def engine_path(self) -> str | None:
        """Kernel-path provenance (``ring``/``ticks``/``calendar``/``heap``).

        Derived from the summary's kernel telemetry so cells
        reconstructed from a result store report exactly what the
        original run recorded; ``None`` when the cell predates
        telemetry or ran the reference kernel.
        """
        kernel = self.summary.kernel
        if not kernel:
            return None
        paths = kernel.get("paths")
        if not paths:
            return None
        return "+".join(sorted(paths))


@dataclass
class CampaignResult:
    """Deterministic aggregate of a whole campaign.

    ``cells`` is ordered table-major, then by delay model, then by seed
    — the same stream for the same configuration no matter how many
    worker processes ran it.  ``errors`` carries synthesis failures
    (a failing table never aborts the campaign).
    """

    models: tuple[str, ...]
    sweep: int
    steps: int
    cells: list[CampaignCell] = field(default_factory=list)
    errors: list[tuple[str, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(cell.summary.total for cell in self.cells)

    @property
    def failures(self) -> list[CampaignCell]:
        return [cell for cell in self.cells if not cell.clean]

    @property
    def all_clean(self) -> bool:
        return not self.failures and not self.errors

    @property
    def store_hits(self) -> int:
        """Cells replayed from a warm result store, not simulated."""
        return sum(1 for cell in self.cells if cell.store_hit)

    def merged(self) -> ValidationSummary:
        """Every cycle of every cell, in the deterministic cell order."""
        summary = ValidationSummary()
        for cell in self.cells:
            for report in cell.summary.cycles:
                summary.add(report)
        return summary

    def by_model(self) -> dict[str, ValidationSummary]:
        """Cell cycles aggregated per delay model (campaign order)."""
        grouped: dict[str, ValidationSummary] = {
            model: ValidationSummary() for model in self.models
        }
        for cell in self.cells:
            for report in cell.summary.cycles:
                grouped[cell.model].add(report)
        return grouped

    def kernel_paths(self) -> dict[str, int]:
        """Cells per kernel path (``?`` for cells without telemetry)."""
        paths: dict[str, int] = {}
        for cell in self.cells:
            path = cell.engine_path or "?"
            paths[path] = paths.get(path, 0) + 1
        return paths

    def describe(self) -> str:
        lines = [
            f"validation campaign: {len(self.cells)} cells "
            f"({self.sweep} seeds x {len(self.models)} models), "
            f"{self.total_cycles} cycles"
        ]
        if self.store_hits:
            lines[0] += (
                f" [{self.store_hits}/{len(self.cells)} cells from "
                f"warm store]"
            )
        if self.cells:
            paths = ", ".join(
                f"{path}:{count}"
                for path, count in sorted(self.kernel_paths().items())
            )
            lines.append(f"  kernel paths: {paths}")
        for model, summary in self.by_model().items():
            status = "clean" if summary.all_clean else "FAILED"
            lines.append(f"  {model:10s} {summary.describe()}  [{status}]")
        for table, error in self.errors:
            lines.append(f"  {table}: synthesis FAILED: {error}")
        if self.failures:
            first = self.failures[0]
            lines.append(
                f"  first failure: table {first.table!r}, model "
                f"{first.model!r}, seed {first.seed}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Worker-side cell execution
# ----------------------------------------------------------------------
#: Per-worker machine list, installed once by `_init_campaign_worker` so
#: machines cross the process boundary once, not per cell.
_WORKER_MACHINES: list[FantomMachine] | None = None


def _init_campaign_worker(machines: list[FantomMachine]) -> None:
    global _WORKER_MACHINES
    _WORKER_MACHINES = machines


def _run_cell(
    cell_index: int,
    machine_index: int,
    model: str,
    seed: int,
    walk: list[int],
    engine: str,
    expected=None,
) -> tuple[int, ValidationSummary, float]:
    """Validate one walk on fresh silicon; module-level for pickling."""
    machine = _WORKER_MACHINES[machine_index]
    start = time.perf_counter()
    summary = validate_walk(
        machine,
        walk,
        delays=delay_model(model, seed, machine),
        simulator_factory=_resolve_engine(engine),
        expected=expected,
    )
    return cell_index, summary, time.perf_counter() - start


class ValidationCampaign:
    """Fan seeded walks × delay models over synthesised machines.

    Parameters
    ----------
    sweep:
        Walks per (machine, delay model) — seeds ``base_seed ..
        base_seed + sweep - 1``.
    steps:
        Hand-shake cycles per walk.
    delay_models:
        Names from :data:`DELAY_MODELS`, validated eagerly.
    base_seed:
        First walk seed; a campaign is reproducible from
        ``(tables, spec, sweep, steps, delay_models, base_seed)``.
    use_fsv:
        ``False`` builds the unprotected machines (hazard ablation).
    jobs:
        Worker processes for synthesis *and* for the validation cells;
        1 runs everything serially in-process.
    spec:
        :class:`~repro.pipeline.spec.PipelineSpec` for the synthesis
        phase (pass variants, options, stage cache).
    engine:
        ``"ring"`` (the default, via :func:`default_engine` /
        ``$REPRO_SIM_ENGINE``) — the event-ring kernel of
        :mod:`repro.sim.ring`: fractional delays run on an exact
        fixed-point tick grid (or the calendar-queue fallback), with
        batched fronts and run-segment replay, so every built-in delay
        model stays on the fast path; ``"compiled"`` — the heap
        kernel; or ``"reference"`` — the retained seed kernel, for
        benchmarking and distrust.  All three are pinned
        trace-equivalent.
    store:
        A content-addressed :class:`~repro.store.ResultStore` (or a
        path/backend to open one over).  The synthesis phase routes
        through a store-backed :class:`~repro.pipeline.batch.BatchRunner`,
        and every cell whose ``(table, spec, model, seed, steps, engine,
        fsv)`` key is stored is replayed instead of simulated
        (``cell.store_hit``); fresh cells are written back.  Cell keys
        derive from each machine's *source* table and ``uses_fsv`` flag,
        so ``run_machines`` consumers must hand over machines built
        under this campaign's ``spec``.
    """

    def __init__(
        self,
        sweep: int = 3,
        steps: int = 30,
        delay_models: tuple[str, ...] = ("loop-safe",),
        base_seed: int = 0,
        use_fsv: bool = True,
        jobs: int = 1,
        spec=None,
        engine: str | None = None,
        store=None,
    ):
        if engine is None:
            engine = default_engine()
        if sweep < 1:
            raise SimulationError(f"sweep must be >= 1, got {sweep}")
        if steps < 1:
            raise SimulationError(f"steps must be >= 1, got {steps}")
        if not delay_models:
            raise SimulationError("a campaign needs at least one delay model")
        for model in delay_models:
            if model not in DELAY_MODELS:
                raise SimulationError(
                    f"unknown delay model {model!r}; available: "
                    f"{', '.join(sorted(DELAY_MODELS))}"
                )
        _resolve_engine(engine)
        self.sweep = sweep
        self.steps = steps
        self.delay_models = tuple(delay_models)
        self.base_seed = base_seed
        self.use_fsv = use_fsv
        self.jobs = jobs
        self.spec = spec
        self.engine = engine
        from ..store.store import open_store

        self.store = open_store(store)

    # ------------------------------------------------------------------
    @property
    def seeds(self) -> tuple[int, ...]:
        return tuple(range(self.base_seed, self.base_seed + self.sweep))

    def run(self, tables) -> CampaignResult:
        """Synthesise ``tables`` (through the BatchRunner), then sweep."""
        from ..pipeline.batch import BatchRunner

        runner = BatchRunner(
            spec=self.spec, jobs=self.jobs, store=self.store
        )
        result = CampaignResult(
            models=self.delay_models, sweep=self.sweep, steps=self.steps
        )
        machines = []
        for item in runner.run(list(tables)):
            if item.ok:
                machines.append(build_fantom(item.result, use_fsv=self.use_fsv))
            else:
                result.errors.append((item.name, item.error))
        return self._sweep_machines(machines, result)

    def run_names(self, names) -> CampaignResult:
        """Campaign over built-in benchmarks by name."""
        from ..bench.suite import benchmark

        return self.run([benchmark(name) for name in names])

    def run_machines(self, machines) -> CampaignResult:
        """Sweep machines that are already built (the ``verify`` pass)."""
        result = CampaignResult(
            models=self.delay_models, sweep=self.sweep, steps=self.steps
        )
        return self._sweep_machines(list(machines), result)

    # ------------------------------------------------------------------
    def _cells(self, machines):
        """The cell grid in deterministic order, walks computed once.

        Each (machine, seed) walk and its reference-interpreter step
        stream are computed once and shared across every delay model's
        cell — the interpreter never runs inside a timed cell.
        """
        cells = []
        for machine_index, machine in enumerate(machines):
            table = machine.result.table
            walks = {
                seed: random_legal_walk(table, self.steps, seed=seed)
                for seed in self.seeds
            }
            steps = {
                seed: expected_walk(table, walk)
                for seed, walk in walks.items()
            }
            for model in self.delay_models:
                for seed in self.seeds:
                    cells.append(
                        (machine_index, model, seed, walks[seed],
                         steps[seed])
                    )
        return cells

    def _cell_keys(self, machines, cells):
        """Store keys per cell (None when no store is attached).

        Keyed on each machine's *source* table and its ``uses_fsv``
        flag — properties of the machine actually simulated — plus this
        campaign's (spec, steps, engine) workload parameters.
        """
        if self.store is None:
            return [None] * len(cells)
        from ..pipeline.spec import PipelineSpec
        from ..store.keys import validation_key

        spec = self.spec if self.spec is not None else PipelineSpec()
        return [
            validation_key(
                machines[mi].result.source,
                spec,
                model=model,
                seed=seed,
                steps=self.steps,
                engine=self.engine,
                use_fsv=machines[mi].uses_fsv,
            )
            for mi, model, seed, _walk, _expected in cells
        ]

    def _sweep_machines(self, machines, result: CampaignResult):
        cells = self._cells(machines)
        keys = self._cell_keys(machines, cells)
        replayed: dict[int, ValidationSummary] = {}
        if self.store is not None:
            for i, key in enumerate(keys):
                summary = self.store.get_validation(key)
                if summary is not None:
                    replayed[i] = summary
        pending = [i for i in range(len(cells)) if i not in replayed]

        if self.jobs > 1 and len(pending) > 1:
            outcomes = self._sweep_parallel(
                machines, [cells[i] for i in pending]
            )
        else:
            # One delay model instance per (model, seed) for the whole
            # sweep: the built-in models draw by instance *name*, so a
            # shared instance assigns exactly the delays a fresh one
            # would, without re-deriving them per machine.
            models: dict[tuple[str, int], object] = {}
            outcomes = []
            for i in pending:
                mi, model, seed, walk, expected = cells[i]
                key = (model, seed)
                delays = models.get(key)
                if delays is None:
                    delays = models[key] = delay_model(
                        model, seed, machines[mi]
                    )
                start = time.perf_counter()
                summary = validate_walk(
                    machines[mi],
                    walk,
                    delays=delays,
                    simulator_factory=_resolve_engine(self.engine),
                    expected=expected,
                )
                outcomes.append(
                    (i, summary, time.perf_counter() - start)
                )
        computed = {
            cell_index: (summary, seconds)
            for cell_index, (_i, summary, seconds) in zip(
                pending, outcomes
            )
        }
        for i, (machine_index, model, seed, _walk, _expected) in enumerate(
            cells
        ):
            if i in replayed:
                summary, seconds, hit = replayed[i], 0.0, True
            else:
                summary, seconds = computed[i]
                hit = False
                if self.store is not None:
                    self.store.put_validation(keys[i], summary)
                    if not summary.all_clean:
                        archive_failure_vcd(
                            self.store,
                            keys[i],
                            machines[machine_index],
                            _walk,
                            model,
                            seed,
                            self.engine,
                        )
            result.cells.append(
                CampaignCell(
                    table=machines[machine_index].result.table.name,
                    model=model,
                    seed=seed,
                    summary=summary,
                    seconds=seconds,
                    store_hit=hit,
                )
            )
        return result

    def _sweep_parallel(self, machines, cells):
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_campaign_worker,
            initargs=(machines,),
        ) as pool:
            futures = [
                pool.submit(
                    _run_cell, i, mi, model, seed, walk, self.engine,
                    expected,
                )
                for i, (mi, model, seed, walk, expected) in enumerate(cells)
            ]
            # Input order, not completion order — the result stream is
            # deterministic no matter which worker finishes first.
            return [future.result() for future in futures]
