"""VCD (value-change-dump) export of simulation traces.

Watched-net traces from :class:`~repro.sim.simulator.Simulator` become a
standard VCD stream readable by GTKWave and friends — convenient for
inspecting the fsv hand-over and the VOM hand-shake visually, and the
format every EDA debug flow speaks.

Times are emitted in integer timestamp units: simulator time is scaled
by ``resolution`` (default 100 steps per unit delay) so fractional
random delays survive the integer quantisation of the format.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .simulator import NetChange

#: Printable VCD identifier alphabet.
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short printable identifier for variable ``index``."""
    if index < len(_ID_ALPHABET):
        return _ID_ALPHABET[index]
    head, tail = divmod(index, len(_ID_ALPHABET))
    return _identifier(head - 1) + _ID_ALPHABET[tail]


def trace_to_vcd(
    trace: Iterable[NetChange],
    nets: Iterable[str],
    initial_values: Mapping[str, int] | None = None,
    module: str = "fantom",
    timescale: str = "1ns",
    resolution: int = 100,
) -> str:
    """Render a trace as VCD text.

    Only changes on ``nets`` are emitted, in time order; simultaneous
    changes share a timestamp.  ``initial_values`` populates the
    ``$dumpvars`` section (nets without one start at 0).
    """
    nets = list(dict.fromkeys(nets))
    identifiers = {net: _identifier(i) for i, net in enumerate(nets)}
    initial = dict(initial_values or {})

    lines = [
        "$date repro simulation $end",
        "$version repro FANTOM simulator $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for net in nets:
        lines.append(f"$var wire 1 {identifiers[net]} {net} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for net in nets:
        lines.append(f"{initial.get(net, 0)}{identifiers[net]}")
    lines.append("$end")

    current_time: int | None = None
    for change in sorted(trace, key=lambda c: c.time):
        if change.net not in identifiers:
            continue
        stamp = round(change.time * resolution)
        if stamp != current_time:
            lines.append(f"#{stamp}")
            current_time = stamp
        lines.append(f"{change.value}{identifiers[change.net]}")
    return "\n".join(lines) + "\n"


def parse_vcd(text: str) -> dict[str, list[tuple[int, int]]]:
    """Parse VCD text back into per-net ``(timestamp, value)`` streams.

    Inverse of :func:`trace_to_vcd` for the single-bit subset this
    library emits: identifier codes are resolved to net names and the
    ``$dumpvars`` section contributes the t=0 initial values.  Scope
    nesting, wide vectors and real variables are out of scope — a
    malformed or non-scalar document raises :class:`ValueError`.
    """
    names: dict[str, str] = {}
    streams: dict[str, list[tuple[int, int]]] = {}
    time = 0
    in_definitions = True
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_definitions:
            if line.startswith("$var"):
                parts = line.split()
                # $var wire 1 <id> <net> $end
                if len(parts) < 6 or parts[2] != "1":
                    raise ValueError(f"unsupported VCD variable: {line}")
                names[parts[3]] = parts[4]
                streams[parts[4]] = []
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            time = int(line[1:])
            continue
        if line.startswith("$"):  # $dumpvars / $end markers
            continue
        value, code = line[0], line[1:]
        if value not in "01" or code not in names:
            raise ValueError(f"unsupported VCD change: {line}")
        streams[names[code]].append((time, int(value)))
    return streams


def _dedupe_stream(
    stream: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Collapse a change stream to its observable value sequence.

    Repeated writes of the same value (an initial 0 followed by a #0
    re-dump, say) carry no information; equivalence must not depend on
    them.
    """
    out: list[tuple[int, int]] = []
    for time, value in stream:
        if out and out[-1][1] == value:
            continue
        out.append((time, value))
    return out


def vcd_diff(a: str, b: str, limit: int = 20) -> str:
    """Line-oriented report of where two VCD documents diverge.

    Returns the empty string when the documents are *observably*
    equivalent: same nets, and per net the same deduplicated
    ``(timestamp, value)`` change stream.  Otherwise one line per
    divergent net — the first differing change and the two stream
    lengths — capped at ``limit`` nets.  Built for
    ``seance vcd diff`` and for attaching to minimised fuzz fixtures.
    """
    streams_a = {k: _dedupe_stream(v) for k, v in parse_vcd(a).items()}
    streams_b = {k: _dedupe_stream(v) for k, v in parse_vcd(b).items()}
    lines: list[str] = []
    for net in sorted(set(streams_a) | set(streams_b)):
        if len(lines) >= limit:
            lines.append("... (further nets elided)")
            break
        if net not in streams_a:
            lines.append(f"{net}: only in B ({len(streams_b[net])} changes)")
            continue
        if net not in streams_b:
            lines.append(f"{net}: only in A ({len(streams_a[net])} changes)")
            continue
        sa, sb = streams_a[net], streams_b[net]
        if sa == sb:
            continue
        for (ta, va), (tb, vb) in zip(sa, sb):
            if (ta, va) != (tb, vb):
                lines.append(
                    f"{net}: A has {va}@#{ta}, B has {vb}@#{tb} "
                    f"({len(sa)} vs {len(sb)} changes)"
                )
                break
        else:
            lines.append(
                f"{net}: streams agree for {min(len(sa), len(sb))} "
                f"changes, then lengths differ ({len(sa)} vs {len(sb)})"
            )
    return "\n".join(lines)


def write_vcd(
    path,
    trace: Iterable[NetChange],
    nets: Iterable[str],
    initial_values: Mapping[str, int] | None = None,
    **kwargs,
) -> None:
    """Write a trace to ``path`` as VCD."""
    text = trace_to_vcd(trace, nets, initial_values, **kwargs)
    with open(path, "w") as handle:
        handle.write(text)
