"""VCD (value-change-dump) export of simulation traces.

Watched-net traces from :class:`~repro.sim.simulator.Simulator` become a
standard VCD stream readable by GTKWave and friends — convenient for
inspecting the fsv hand-over and the VOM hand-shake visually, and the
format every EDA debug flow speaks.

Times are emitted in integer timestamp units: simulator time is scaled
by ``resolution`` (default 100 steps per unit delay) so fractional
random delays survive the integer quantisation of the format.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from .simulator import NetChange

#: Printable VCD identifier alphabet.
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short printable identifier for variable ``index``."""
    if index < len(_ID_ALPHABET):
        return _ID_ALPHABET[index]
    head, tail = divmod(index, len(_ID_ALPHABET))
    return _identifier(head - 1) + _ID_ALPHABET[tail]


def trace_to_vcd(
    trace: Iterable[NetChange],
    nets: Iterable[str],
    initial_values: Mapping[str, int] | None = None,
    module: str = "fantom",
    timescale: str = "1ns",
    resolution: int = 100,
) -> str:
    """Render a trace as VCD text.

    Only changes on ``nets`` are emitted, in time order; simultaneous
    changes share a timestamp.  ``initial_values`` populates the
    ``$dumpvars`` section (nets without one start at 0).
    """
    nets = list(dict.fromkeys(nets))
    identifiers = {net: _identifier(i) for i, net in enumerate(nets)}
    initial = dict(initial_values or {})

    lines = [
        "$date repro simulation $end",
        "$version repro FANTOM simulator $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for net in nets:
        lines.append(f"$var wire 1 {identifiers[net]} {net} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    lines.append("$dumpvars")
    for net in nets:
        lines.append(f"{initial.get(net, 0)}{identifiers[net]}")
    lines.append("$end")

    current_time: int | None = None
    for change in sorted(trace, key=lambda c: c.time):
        if change.net not in identifiers:
            continue
        stamp = round(change.time * resolution)
        if stamp != current_time:
            lines.append(f"#{stamp}")
            current_time = stamp
        lines.append(f"{change.value}{identifiers[change.net]}")
    return "\n".join(lines) + "\n"


def write_vcd(
    path,
    trace: Iterable[NetChange],
    nets: Iterable[str],
    initial_values: Mapping[str, int] | None = None,
    **kwargs,
) -> None:
    """Write a trace to ``path`` as VCD."""
    text = trace_to_vcd(trace, nets, initial_values, **kwargs)
    with open(path, "w") as handle:
        handle.write(text)
