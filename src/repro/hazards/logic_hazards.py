"""Logic (cover-induced) hazards of two-level AND-OR implementations.

A *logic* hazard is a glitch an implementation may produce even though the
function itself is hazard-free for the transition.  For a sum-of-products
cover:

* a **static-1 hazard** for a single-bit change between two covered
  minterms exists iff no single product term covers both (the OR gate's
  holding term is missing) — the hazard the paper removes from ``fsv``
  by keeping *all* prime implicants;
* **static-0 hazards** cannot occur in AND-OR covers that never cover an
  off-set minterm and contain no term with complementary literals (both
  enforced by construction here);
* for a **multiple-input change** whose whole transition subcube lies in
  the on-set, the implementation is glitch-free iff one term covers the
  entire subcube (Eichelberger's condition).

These predicates power both the unit tests and the ablation benchmarks
that contrast essential-SOP covers (Z, SSD — allowed to glitch) with
all-primes covers (fsv — required not to).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..logic.cube import Cube
from ..logic.function import BooleanFunction
from .function_hazards import transition_vertices


@dataclass(frozen=True)
class StaticHazard:
    """A static-1 hazard: adjacent covered minterms with no shared term."""

    minterm_a: int
    minterm_b: int
    variable: int


def static_one_hazards(
    cubes: Sequence[Cube], width: int
) -> list[StaticHazard]:
    """All single-bit static-1 hazards of a cover.

    Reported once per unordered pair (``minterm_a < minterm_b``).
    """
    covered = sorted({m for cube in cubes for m in cube.minterms()})
    covered_set = set(covered)
    hazards = []
    for m in covered:
        for bit in range(width):
            other = m ^ (1 << bit)
            if other <= m or other not in covered_set:
                continue
            if not any(c.contains(m) and c.contains(other) for c in cubes):
                hazards.append(StaticHazard(m, other, bit))
    return hazards


def is_sic_hazard_free(cubes: Sequence[Cube], width: int) -> bool:
    """True when the cover has no single-input-change logic hazard.

    For two-level AND-OR networks, freedom from static-1 hazards implies
    freedom from all single-input-change hazards (static-0 hazards need a
    term with complementary literals, which :class:`Cube` cannot express;
    dynamic hazards in AND-OR need three changes of a gate output, which a
    single input change cannot produce through two levels).
    """
    return not static_one_hazards(cubes, width)


def mic_static_one_hazard(
    cubes: Sequence[Cube], a: int, b: int
) -> bool:
    """Static-1 hazard check for a multiple-input change ``a -> b``.

    Assumes every vertex of the transition subcube is covered (a "1-1"
    transition); the implementation is glitch-free for every bit ordering
    iff some single term covers the whole subcube.
    """
    if not cubes:
        return True
    width = cubes[0].width
    span = Cube.from_minterm(a, width).supercube(Cube.from_minterm(b, width))
    vertices = transition_vertices(a, b)
    if not all(
        any(c.contains(v) for c in cubes) for v in vertices
    ):
        raise ValueError(
            "mic_static_one_hazard expects a fully covered transition cube"
        )
    return not any(cube.contains_cube(span) for cube in cubes)


def cover_hazard_report(
    function: BooleanFunction, cubes: Sequence[Cube]
) -> dict[str, int]:
    """Summary counts used by the cover-ablation benchmark.

    Returns the number of terms, literals, and single-input-change
    static-1 hazards of the cover.
    """
    return {
        "terms": len(cubes),
        "literals": sum(c.num_literals for c in cubes),
        "static_one_hazards": len(
            static_one_hazards(list(cubes), function.width)
        ),
    }
