"""Logic (cover-induced) hazards of two-level AND-OR implementations.

A *logic* hazard is a glitch an implementation may produce even though the
function itself is hazard-free for the transition.  For a sum-of-products
cover:

* a **static-1 hazard** for a single-bit change between two covered
  minterms exists iff no single product term covers both (the OR gate's
  holding term is missing) — the hazard the paper removes from ``fsv``
  by keeping *all* prime implicants;
* **static-0 hazards** cannot occur in AND-OR covers that never cover an
  off-set minterm and contain no term with complementary literals (both
  enforced by construction here);
* for a **multiple-input change** whose whole transition subcube lies in
  the on-set, the implementation is glitch-free iff one term covers the
  entire subcube (Eichelberger's condition).

These predicates power both the unit tests and the ablation benchmarks
that contrast essential-SOP covers (Z, SSD — allowed to glitch) with
all-primes covers (fsv — required not to).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..logic.bitset import (
    CHUNK_BITS,
    DENSE_WIDTH_LIMIT,
    ChunkedMask,
    half_space,
    iter_bits,
)
from ..logic.cube import Cube
from ..logic.function import BooleanFunction


@dataclass(frozen=True)
class StaticHazard:
    """A static-1 hazard: adjacent covered minterms with no shared term."""

    minterm_a: int
    minterm_b: int
    variable: int


def static_one_hazards(
    cubes: Sequence[Cube], width: int
) -> list[StaticHazard]:
    """All single-bit static-1 hazards of a cover.

    Reported once per unordered pair (``minterm_a < minterm_b``).

    Runs on packed coverage bitsets: for each variable ``v``, the minterms
    whose ``v``-neighbour is also covered are ``covered & (covered >> 2**v)``
    (restricted to the half-space where bit ``v`` is 0 so the shift is a
    genuine single-bit flip), and the pairs held by a single term are the
    same expression per cube.  The difference of those two masks is
    exactly the hazard set for ``v`` — no per-minterm scanning.  Above
    :data:`~repro.logic.bitset.DENSE_WIDTH_LIMIT` variables the same
    pair-shift runs per chunk on sparse
    :class:`~repro.logic.bitset.ChunkedMask` coverages
    (:meth:`~repro.logic.bitset.ChunkedMask.adjacent_pairs`).
    """
    if width > DENSE_WIDTH_LIMIT:
        return _static_one_hazards_wide(cubes, width)
    coverages = [cube.coverage_mask() for cube in cubes]
    covered = 0
    for cov in coverages:
        covered |= cov
    found: list[tuple[int, int, int]] = []
    for bit in range(width):
        shift = 1 << bit
        low_half = half_space(width, bit)
        pairs = covered & (covered >> shift) & low_half
        if not pairs:
            continue
        held = 0
        for cov in coverages:
            held |= cov & (cov >> shift)
        for m in iter_bits(pairs & ~held):
            found.append((m, m ^ shift, bit))
    found.sort()
    return [StaticHazard(a, b, bit) for a, b, bit in found]


def _static_one_hazards_wide(
    cubes: Sequence[Cube], width: int
) -> list[StaticHazard]:
    """Chunked-mask variant of :func:`static_one_hazards`."""
    coverages = [cube.chunked_coverage() for cube in cubes]
    covered = ChunkedMask.empty(CHUNK_BITS)
    for cov in coverages:
        covered = covered | cov
    found: list[tuple[int, int, int]] = []
    for bit in range(width):
        pairs = covered.adjacent_pairs(bit)
        if not pairs:
            continue
        held = ChunkedMask.empty(CHUNK_BITS)
        for cov in coverages:
            held = held | cov.adjacent_pairs(bit)
        for m in pairs.andnot(held).members():
            found.append((m, m ^ (1 << bit), bit))
    found.sort()
    return [StaticHazard(a, b, bit) for a, b, bit in found]


def is_sic_hazard_free(cubes: Sequence[Cube], width: int) -> bool:
    """True when the cover has no single-input-change logic hazard.

    For two-level AND-OR networks, freedom from static-1 hazards implies
    freedom from all single-input-change hazards (static-0 hazards need a
    term with complementary literals, which :class:`Cube` cannot express;
    dynamic hazards in AND-OR need three changes of a gate output, which a
    single input change cannot produce through two levels).
    """
    return not static_one_hazards(cubes, width)


def mic_static_one_hazard(
    cubes: Sequence[Cube], a: int, b: int
) -> bool:
    """Static-1 hazard check for a multiple-input change ``a -> b``.

    Assumes every vertex of the transition subcube is covered (a "1-1"
    transition); the implementation is glitch-free for every bit ordering
    iff some single term covers the whole subcube.
    """
    if not cubes:
        return True
    width = cubes[0].width
    span = Cube.from_minterm(a, width).supercube(Cube.from_minterm(b, width))
    # The transition subcube's minterms are exactly the span's coverage.
    if width > DENSE_WIDTH_LIMIT:
        covered = ChunkedMask.empty(CHUNK_BITS)
        for cube in cubes:
            covered = covered | cube.chunked_coverage()
        uncovered = not span.chunked_coverage().is_subset(covered)
    else:
        covered = 0
        for cube in cubes:
            covered |= cube.coverage_mask()
        uncovered = bool(span.coverage_mask() & ~covered)
    if uncovered:
        raise ValueError(
            "mic_static_one_hazard expects a fully covered transition cube"
        )
    return not any(cube.contains_cube(span) for cube in cubes)


def cover_hazard_report(
    function: BooleanFunction, cubes: Sequence[Cube]
) -> dict[str, int]:
    """Summary counts used by the cover-ablation benchmark.

    Returns the number of terms, literals, and single-input-change
    static-1 hazards of the cover.
    """
    return {
        "terms": len(cubes),
        "literals": sum(c.num_literals for c in cubes),
        "static_one_hazards": len(
            static_one_hazards(list(cubes), function.width)
        ),
    }
