"""Function hazards of Boolean functions under input transitions.

Paper Section 2.1 distinguishes *logic* hazards (an artifact of the chosen
cover, removable by adding gates) from *function* hazards, which are
"inherent in the flow-table representation, and cannot be eliminated using
circuit additions".  A function hazard belongs to the function itself:

* **static function hazard** for a transition ``a -> b`` with
  ``f(a) == f(b)``: some vertex strictly inside the transition subcube
  takes the opposite value, so some ordering of the input bit changes
  makes any correct implementation glitch;
* **dynamic function hazard** for ``f(a) != f(b)``: some ordering of the
  bit changes makes the value change more than once.

Both are decided here by enumerating monotone paths through the
transition subcube (bit counts are tiny in flow-table work).  Don't-care
vertices are treated as benign — the synthesiser may pin them to the
hazard-free value, which is exactly what SEANCE does with intermediate
don't-cares.
"""

from __future__ import annotations

from itertools import permutations

from ..logic.function import BooleanFunction


def changing_bits(a: int, b: int) -> list[int]:
    """Indices of the variables that differ between two minterms."""
    diff = a ^ b
    return [i for i in range(diff.bit_length()) if diff >> i & 1]


def transition_vertices(a: int, b: int) -> list[int]:
    """Every vertex of the transition subcube spanned by ``a`` and ``b``."""
    bits = changing_bits(a, b)
    vertices = []
    for combo in range(1 << len(bits)):
        vertex = a
        for j, bit in enumerate(bits):
            if combo >> j & 1:
                vertex ^= 1 << bit
        vertices.append(vertex)
    return vertices


def max_value_changes(f: BooleanFunction, a: int, b: int) -> int:
    """Worst-case number of output changes over all bit-change orderings.

    Each ordering of the changing bits is a monotone path ``a -> b``; the
    path's change count treats don't-care vertices as holding the previous
    value (the most favourable resolution — a don't-care can always be
    pinned that way).
    """
    bits = changing_bits(a, b)
    worst = 0
    for order in permutations(bits):
        changes = 0
        previous = f.value(a)
        vertex = a
        for bit in order:
            vertex ^= 1 << bit
            value = f.value(vertex)
            if value is None or previous is None:
                # benign: resolve the dc to the running value
                value = previous if value is None else value
            elif value != previous:
                changes += 1
            previous = value if value is not None else previous
        worst = max(worst, changes)
    return worst


def has_static_function_hazard(
    f: BooleanFunction, a: int, b: int
) -> bool:
    """True when ``f(a) == f(b)`` but some ordering glitches the output."""
    va, vb = f.value(a), f.value(b)
    if va is None or vb is None or va != vb:
        return False
    return max_value_changes(f, a, b) > 0


def has_dynamic_function_hazard(
    f: BooleanFunction, a: int, b: int
) -> bool:
    """True when ``f(a) != f(b)`` and some ordering changes output twice+."""
    va, vb = f.value(a), f.value(b)
    if va is None or vb is None or va == vb:
        return False
    return max_value_changes(f, a, b) > 1


def has_function_hazard(f: BooleanFunction, a: int, b: int) -> bool:
    """Static or dynamic function hazard for the transition ``a -> b``."""
    return has_static_function_hazard(f, a, b) or has_dynamic_function_hazard(
        f, a, b
    )


def function_hazard_transitions(
    f: BooleanFunction, min_distance: int = 2
) -> list[tuple[int, int]]:
    """All care-to-care transitions of Hamming distance >= ``min_distance``
    exhibiting a function hazard.  Pairs are reported once, ``a < b``."""
    hazards = []
    care = sorted(f.on | f.off)
    for i, a in enumerate(care):
        for b in care[i + 1 :]:
            if (a ^ b).bit_count() < min_distance:
                continue
            if has_function_hazard(f, a, b):
                hazards.append((a, b))
    return hazards
