"""Hazard theory: function, logic, essential hazards and races.

Reference predicates for every hazard class the paper enumerates in
Section 2; used by the synthesis pipeline, the test suite, and the
ablation benchmarks.
"""

from .essential import EssentialHazard, essential_hazards, has_essential_hazards
from .function_hazards import (
    changing_bits,
    function_hazard_transitions,
    has_dynamic_function_hazard,
    has_function_hazard,
    has_static_function_hazard,
    max_value_changes,
    transition_vertices,
)
from .logic_hazards import (
    StaticHazard,
    cover_hazard_report,
    is_sic_hazard_free,
    mic_static_one_hazard,
    static_one_hazards,
)
from .races import Race, critical_races, find_races, is_critical_race_free

__all__ = [
    "EssentialHazard",
    "Race",
    "StaticHazard",
    "changing_bits",
    "cover_hazard_report",
    "critical_races",
    "essential_hazards",
    "find_races",
    "function_hazard_transitions",
    "has_dynamic_function_hazard",
    "has_essential_hazards",
    "has_function_hazard",
    "has_static_function_hazard",
    "is_critical_race_free",
    "is_sic_hazard_free",
    "max_value_changes",
    "mic_static_one_hazard",
    "static_one_hazards",
    "transition_vertices",
]
