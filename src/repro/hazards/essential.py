"""Essential hazards of flow tables (Unger's d-trio test).

An *essential* hazard (paper Section 2.2) is inherent to the sequential
behaviour: it exists at a stable state ``s`` for input variable ``x``
when one change of ``x`` and three successive changes of ``x`` leave the
machine in different states.  If a gate sees the input change after a
state variable has already responded, the circuit can take the
three-change path even though only one change occurred.

FANTOM neutralises essential hazards with the loop-delay assumption (the
inputs reach every gate before any state variable changes) plus
hazard-factored first-level logic; detecting them is still useful for
reporting and for validating that the benchmark machines genuinely
contain the hazards the architecture claims to survive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flowtable.table import FlowTable


@dataclass(frozen=True)
class EssentialHazard:
    """A d-trio: stable state, starting column, and the toggled input."""

    state: str
    column: int
    input_index: int

    def describe(self, table: FlowTable) -> str:
        return (
            f"essential hazard at ({self.state}, "
            f"{table.column_string(self.column)}) on input "
            f"{table.inputs[self.input_index]}"
        )


def _settle(table: FlowTable, state: str, column: int) -> str | None:
    """Stable state reached from ``state`` under ``column`` (normal mode:
    at most one hop; tolerate chains for robustness, bail on cycles)."""
    seen = {state}
    current = state
    while True:
        nxt = table.next_state(current, column)
        if nxt is None:
            return None
        if nxt == current:
            return current
        if nxt in seen:
            return None  # oscillation: not a settling column
        seen.add(nxt)
        current = nxt


def essential_hazards(table: FlowTable) -> list[EssentialHazard]:
    """All essential hazards of the table, one per (state, column, input).

    For each stable point ``(s, c)`` and input bit ``i``: let ``s1`` be
    the stable state after toggling ``i`` once, ``s2`` after toggling it
    back, ``s3`` after toggling a third time.  The trio is an essential
    hazard iff every step is specified and ``s3 != s1``.
    """
    hazards = []
    for state, column in table.stable_points():
        for i in range(table.num_inputs):
            toggled = column ^ (1 << i)
            s1 = _settle(table, state, toggled)
            if s1 is None:
                continue
            s2 = _settle(table, s1, column)
            if s2 is None:
                continue
            s3 = _settle(table, s2, toggled)
            if s3 is None:
                continue
            if s3 != s1:
                hazards.append(EssentialHazard(state, column, i))
    return hazards


def has_essential_hazards(table: FlowTable) -> bool:
    """True when the table contains at least one essential hazard."""
    return bool(essential_hazards(table))
