"""Race analysis of encoded flow tables.

When a state transition changes several state variables, their physical
order of change is arbitrary — a *race*.  The race is **critical** when
some intermediate code is the code of another state whose entry in the
current column leads somewhere else: the machine's destination then
depends on the order (paper Section 2.2, steady-state hazards).

A valid USTT assignment has no critical races (its transition subcubes
are pairwise disjoint per column); :func:`find_races` verifies that from
first principles and also reports benign exposures for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..assign.encoding import StateEncoding
from ..flowtable.table import FlowTable


@dataclass(frozen=True)
class Race:
    """One intermediate-code exposure during an encoded transition."""

    state: str
    dest: str
    column: int
    intermediate_code: int
    intermediate_state: str | None
    critical: bool


def find_races(
    table: FlowTable, encoding: StateEncoding
) -> list[Race]:
    """All races of every specified transition, critical ones flagged.

    For transition ``s -> t`` in column ``c`` with code distance >= 2,
    every strict intermediate code is examined:

    * it decodes to a state ``u`` whose entry at ``c`` settles somewhere
      other than ``t`` -> **critical** race;
    * it decodes to a state settling at ``t`` (or to ``t`` itself), or to
      no state at all -> benign exposure (reported, not critical).
    """
    races: list[Race] = []
    for state in table.states:
        for column in table.columns:
            dest = table.next_state(state, column)
            if dest is None or dest == state:
                continue
            code_s = encoding.code(state)
            code_t = encoding.code(dest)
            diff = code_s ^ code_t
            bits = [i for i in range(diff.bit_length()) if diff >> i & 1]
            if len(bits) < 2:
                continue
            for combo in range(1, (1 << len(bits)) - 1):
                code_m = code_s
                for j, bit in enumerate(bits):
                    if combo >> j & 1:
                        code_m ^= 1 << bit
                hit = encoding.state_of(code_m)
                critical = False
                if hit is not None and hit not in (state, dest):
                    settled = table.next_state(hit, column)
                    # normal mode: one hop settles; anything other than
                    # continuing toward `dest` is order-dependent.
                    critical = settled != dest
                races.append(
                    Race(
                        state=state,
                        dest=dest,
                        column=column,
                        intermediate_code=code_m,
                        intermediate_state=hit,
                        critical=critical,
                    )
                )
    return races


def critical_races(
    table: FlowTable, encoding: StateEncoding
) -> list[Race]:
    """Just the critical races (empty for a valid USTT assignment)."""
    return [race for race in find_races(table, encoding) if race.critical]


def is_critical_race_free(
    table: FlowTable, encoding: StateEncoding
) -> bool:
    return not critical_races(table, encoding)
